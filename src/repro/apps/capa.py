"""CAPA — the Context Aware Printing Application (Section 5, Figure 7).

The application side of the paper's walk-through: CAPA queues print requests
while its user is out of range, submits them on (re)connection, receives the
infrastructure's printer selection and then talks to the chosen printer's
Context Entity directly through its Advertisement interface.

:func:`build_capa_scenario` constructs the full two-range deployment of
Section 5 — lift lobby (W-LAN bounded) and Level 10 — with printers P1..P4
in the states the paper prescribes, ready for examples, tests and the
Figure-7 benchmark to drive.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.api import SCI, SCIConfig
from repro.core.ids import GUID
from repro.entities.entity import ContextAwareApplication
from repro.net.message import Message
from repro.query.model import Query, QueryBuilder

logger = logging.getLogger(__name__)


@dataclass
class PrintRequest:
    """One document the user wants printed."""

    document: str
    pages: int
    query: Query
    submitted: bool = False
    selected_printer: Optional[str] = None
    outcome: Optional[Dict[str, Any]] = None


class CAPAApp(ContextAwareApplication):
    """The CAPA Context Aware Application."""

    def __init__(self, profile, host_id, network, user: str = ""):
        super().__init__(profile, host_id, network)
        self.user = user or profile.attributes.get("owner", profile.name)
        self._requests: Dict[str, PrintRequest] = {}

    # -- user actions -------------------------------------------------------------

    def request_print(self, document: str, pages: int = 1,
                      where: str = "anywhere",
                      when: str = "now",
                      which: str = "reachable; available; closest-to(me)") -> PrintRequest:
        """Queue a print request (works offline, per the train scenario)."""
        query = (QueryBuilder(self.user)
                 .advertisement("printer")
                 .where(where)
                 .when(when)
                 .which(which)
                 .build())
        request = PrintRequest(document=document, pages=pages, query=query)
        self._requests[query.query_id] = request
        self.queue_query(query)   # submits now if registered, else at next range
        request.submitted = self.registered
        return request

    def print_requests(self) -> List[PrintRequest]:
        return list(self._requests.values())

    def print_request(self, query_id: str) -> Optional[PrintRequest]:
        return self._requests.get(query_id)

    # -- infrastructure responses ------------------------------------------------------

    def on_query_result(self, query_id: str, payload: Dict[str, Any]) -> None:
        request = self._requests.get(query_id)
        if request is None:
            return
        if not payload.get("ok"):
            request.outcome = {"accepted": False,
                               "reason": payload.get("error", "no printer")}
            logger.warning("CAPA(%s): %s failed: %s", self.user, query_id,
                           request.outcome["reason"])
            return
        selected = payload.get("selected", {})
        request.selected_printer = selected.get("name")
        printer_hex = selected.get("entity")
        if printer_hex is None:
            request.outcome = {"accepted": False, "reason": "no candidate"}
            return
        logger.info("CAPA(%s): infrastructure selected %s for %r",
                    self.user, request.selected_printer, request.document)
        # Advertisement interface: send the document to the printer CE.
        self._send_job(GUID.from_hex(printer_hex), request)

    def _send_job(self, printer: GUID, request: PrintRequest) -> None:
        def on_reply(reply: Message) -> None:
            result = reply.payload.get("result", {})
            request.outcome = result
            logger.info("CAPA(%s): %r -> %s: %s", self.user, request.document,
                        request.selected_printer, result)

        self.requests.request(
            printer, "service-invoke",
            {"operation": "print",
             "args": {"document": request.document,
                      "pages": request.pages,
                      "owner": self.user}},
            on_reply=on_reply,
        )


@dataclass
class CAPAScenario:
    """Everything :func:`build_capa_scenario` assembled."""

    sci: SCI
    lobby_cs: object
    level10_cs: object
    bob_capa: CAPAApp
    john_capa: CAPAApp
    printers: Dict[str, object]
    locked_door_id: str = "door:corridor--L10.05"


def build_capa_scenario(seed: int = 0,
                        config: Optional[SCIConfig] = None) -> CAPAScenario:
    """The Section-5 deployment, poised at the start of the story.

    * Two ranges: ``lobby`` (bounded by the lift-lobby base station) and
      ``level10`` (the floor's rooms), joined through the SCINET.
    * Printers P1, P2 in the print room L10.03; P4 in the open area; P3 in
      the store room L10.05 behind a door locked to facilities staff only.
    * Bob: outside with a PDA (host ``bob-pda``), CAPA loaded and offline.
    * John: in his office L10.02 with a desktop (host ``john-pc``) in the
      Level-10 jurisdiction; his CAPA registers immediately.

    P2's paper tray and P1's job queue are left for the caller to script —
    the paper's states arise during the scenario, not before it.
    """
    sci = SCI(config=config or SCIConfig(seed=seed))

    lobby_cs = sci.create_range("lobby", places=["lobby"],
                                stations=["ap-lobby"])
    level10_cs = sci.create_range(
        "level10",
        places=["L10"],
        hosts=["john-pc"],
    )
    # Level 10 instruments every door touching its rooms, including the
    # lobby/corridor boundary door, so arrivals from the lobby are seen.
    sci.add_door_sensors("level10",
                         rooms=level10_cs.definition.rooms(sci.building) + ["lobby"])
    printers = sci.add_printers("level10", {
        "P1": "L10.03",
        "P2": "L10.03",
        "P3": "L10.05",
        "P4": "open-area",
    })
    # P3 sits behind a locked door (the paper: John has no access).
    sci.building.topology.door("door:corridor--L10.05").lock({"facilities"})

    sci.add_person("bob", room=None, device_host="bob-pda")
    sci.add_person("john", room="corridor", device_host=None)

    bob_capa = sci.create_application("capa:bob", host="bob-pda",
                                      app_class=CAPAApp, owner="bob",
                                      user="bob")
    john_capa = sci.create_application("capa:john", host="john-pc",
                                       app_class=CAPAApp, owner="john",
                                       user="john")
    sci.start_boundary_monitor()
    # Let Level 10's fixed infrastructure register; Bob stays offline.
    sci.run(5)
    # John walks into his office so the range knows where he is.
    sci.walk("john", "L10.02")
    sci.run(15)
    return CAPAScenario(
        sci=sci,
        lobby_cs=lobby_cs,
        level10_cs=level10_cs,
        bob_capa=bob_capa,
        john_capa=john_capa,
        printers=printers,
    )

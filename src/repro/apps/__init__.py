"""Applications built on the SCI public API.

:mod:`repro.apps.capa` is the paper's own example (Section 5): CAPA, the
Context Aware Printing Application, plus a scripted builder for the full
Bob/John scenario of Figure 7. :mod:`repro.apps.pathfinder` is the Figure-3
floor-map application that displays the live path between two people.
:mod:`repro.apps.workload` is the open-loop traffic generator the scale
benchmarks drive the (sharded) Context Server internals with.
"""

from repro.apps.capa import CAPAApp, CAPAScenario, build_capa_scenario
from repro.apps.pathfinder import PathDisplayApp
from repro.apps.workload import (
    OpenLoopWorkload,
    ProviderFeed,
    WorkloadConfig,
    ZipfSampler,
)

__all__ = ["CAPAApp", "CAPAScenario", "build_capa_scenario", "PathDisplayApp",
           "OpenLoopWorkload", "ProviderFeed", "WorkloadConfig",
           "ZipfSampler"]

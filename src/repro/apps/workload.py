"""Open-loop workload generator for Context Server scale benchmarks.

The figure benchmarks replay small scripted scenarios; this module generates
*open-loop* traffic — arrivals fire on their own clock regardless of how
fast the middleware drains them, which is what exposes queueing collapse at
scale. The shape is configurable and everything is seeded:

* **arrival process** — Poisson (exponential inter-arrival) or jittered
  uniform, split across N publisher processes so partitioned runs keep
  each publisher's stream on its own lane; an optional **diurnal profile**
  (``rate_profile``) modulates the Poisson rate piecewise-constantly over
  equal slices of the arrival window (morning ramp, midday peak, night
  trough), sampled exactly by unit-exponential area integration;
* **heavy-tailed popularity** — publish subjects are drawn from a Zipf
  distribution over the entity population (a few entities are hot, the
  long tail is cold), matching how context interest concentrates; the
  resolver query mix can be skewed the same way (``query_mix="zipf"``)
  instead of uniform over types;
* **subscription table** — a majority of exact ``(type, subject)``
  trackers over Zipf-sampled entities plus a few type-level monitors
  (the residual/routed shapes), sized independently of the population;
  with ``tracker_templates > 0`` trackers instead draw from a small pool
  of look-alike ``And(type, floor == k)`` templates with Zipf-skewed
  popularity — the shape the operator-graph engine deduplicates, and the
  worst case for per-subscription dispatch;
* **churn** — subscription churn and registration/lease churn (profile
  arrivals/departures driving the resolver's delta protocol) scheduled at
  seeded times on the control lane, where shared-structure mutation is
  legal under the sharding concurrency contract;
* **queries** — resolver resolutions over the provider population, mixed
  into the run at seeded times.

Publishers address the owner shard directly when the mediator exposes
``shard_guid_for`` (ownership is a pure function of the key, so any client
can compute it — that is the point of consistent hashing); otherwise all
publishes go to the single mediator. Message counts per delivered event are
identical either way, which keeps classic-vs-sharded comparisons fair.

Latency is measured in *simulated* time from ``ContextEvent.timestamp`` to
sink arrival; throughput is measured in *wall-clock* time by the caller
around :meth:`OpenLoopWorkload.run`.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Tuple

from repro.core.ids import GUID, GuidFactory
from repro.core.types import TypeRegistry, TypeSpec
from repro.composition.resolver import QueryResolver
from repro.composition.templates import TemplateRegistry
from repro.entities.profile import EntityClass, Profile
from repro.events.event import ContextEvent
from repro.events.filters import (
    AndFilter,
    AttributeFilter,
    SubjectFilter,
    TypeFilter,
)
from repro.net.message import Message
from repro.net.transport import Network, Process


@dataclass
class WorkloadConfig:
    """Knobs for one open-loop run. Everything derives from ``seed``."""

    entities: int = 10_000        # population of publishable subjects
    duration: float = 200.0       # sim-time length of the arrival window
    publish_rate: float = 50.0    # aggregate publishes per sim-time unit
    arrival: str = "poisson"      # "poisson" | "uniform"
    zipf_s: float = 1.1           # subject-popularity skew (s > 1 = heavy)
    trackers: int = 2_000         # exact (type, subject) subscriptions
    tracker_cap: int = 2          # max trackers per entity (fan-out bound)
    monitors: int = 4             # type-level (routed) subscriptions
    publishers: int = 4           # open-loop source processes
    types: int = 16               # distinct event type names
    churn_ops: int = 50           # subscription + registration churn ops
    query_ops: int = 50           # resolver queries mixed into the run
    profile_cap: int = 20_000     # resolver provider population cap
    seed: int = 1
    #: distinct "floor" attribute values stamped on every event; decorrelated
    #: from the type axis so (type, floor) combinations spread evenly
    floors: int = 8
    #: > 0 switches trackers to template mode: each tracker is one of this
    #: many look-alike ``And(type, floor == k)`` shapes, Zipf-popular
    tracker_templates: int = 0
    template_zipf_s: float = 1.1  # template-popularity skew
    #: diurnal arrival modulation: piecewise-constant positive multipliers
    #: over equal slices of the arrival window; empty = flat rate
    rate_profile: Tuple[float, ...] = field(default_factory=tuple)
    query_mix: str = "uniform"    # resolver query types: "uniform" | "zipf"
    query_zipf_s: float = 1.2     # type-popularity skew for query_mix="zipf"

    def type_of(self, entity: int) -> str:
        return f"wl-type-{entity % self.types}"

    def subject_of(self, entity: int) -> str:
        return f"e{entity}"

    def floor_of(self, entity: int) -> int:
        # integer-divide by the type count first so floor varies within a
        # type's population instead of aliasing the type axis
        return (entity // self.types) % self.floors

    def template_combo(self, template: int) -> Tuple[str, int]:
        """(type name, floor) for one template rank.

        Publish traffic concentrates on low ``(type, floor)`` combinations
        (the Zipf-hot entities), so the mapping scatters template ranks with
        a coprime stride *and reverses the axis*: popular subscription
        shapes watch quiet combinations — the monitoring pattern, where
        interest concentrates on things that rarely happen. This keeps
        delivered volume bounded as the look-alike count grows; without it,
        hot-template × hot-traffic alignment makes fan-out, not matching,
        the dominant cost for every engine.
        """
        combos = self.types * self.floors
        combo = combos - 1 - ((template * 37) % combos)
        return f"wl-type-{combo % self.types}", combo // self.types


class ZipfSampler:
    """Seeded Zipf(s) sampling over ``0..n-1`` via a precomputed CDF."""

    def __init__(self, n: int, s: float):
        total = 0.0
        cdf: List[float] = []
        for rank in range(1, n + 1):
            total += rank ** -s
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def sample(self, rng: Random) -> int:
        return bisect_left(self._cdf, rng.random() * self._total)


class ProviderFeed:
    """A registrar-shaped profile feed for resolver churn.

    Mimics exactly what the Registrar does to the resolver: a profile list,
    a registrations counter bumped once per arrival/departure, and the
    ``(registrations, templates)`` feed-version pair.
    """

    def __init__(self, registry: TypeRegistry, config: WorkloadConfig,
                 guid_seed: int = 97):
        self.registry = registry
        self.config = config
        self.templates = TemplateRegistry()
        self.guids = GuidFactory(seed=guid_seed)
        self._serial = itertools.count(1)
        self.registrations = 0
        count = min(config.entities, config.profile_cap)
        for index in range(config.types):
            if not registry.known(self.sense_type(index)):
                registry.define(self.sense_type(index))
        self.profiles: List[Profile] = [self._mint_profile(index)
                                        for index in range(count)]
        self.registrations = count

    def sense_type(self, index: int) -> str:
        return f"wl-sense-{index % self.config.types}"

    def _mint_profile(self, index: int) -> Profile:
        serial = next(self._serial)
        return Profile(
            self.guids.mint(), f"wl-src-{serial}", EntityClass.DEVICE,
            outputs=[TypeSpec(self.sense_type(index), "raw",
                              self.config.subject_of(index))])

    def version(self):
        return (self.registrations, self.templates.version)

    def register(self, index: int) -> Profile:
        profile = self._mint_profile(index)
        self.profiles.append(profile)
        self.registrations += 1
        return profile

    def deregister(self, position: int) -> Profile:
        profile = self.profiles.pop(position % len(self.profiles))
        self.registrations += 1
        return profile

    def resolver(self, shards: int = 1, metrics=None,
                 range_name: str = "workload") -> QueryResolver:
        return QueryResolver(
            self.registry,
            live_profiles=lambda: list(self.profiles),
            templates=self.templates,
            feed_version=self.version,
            shards=shards,
            metrics=metrics,
            range_name=range_name)


class _Publisher(Process):
    """One open-loop source: self-clocked arrivals on its own lane."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 workload: "OpenLoopWorkload", index: int):
        super().__init__(guid, host_id, network, name=f"wl-pub-{index}")
        self.workload = workload
        self.rng = Random(f"{workload.config.seed}:pub:{index}")
        self.published = 0

    def on_message(self, message) -> None:
        if message.kind == "wl-start":
            self._fire()
        # publish-acks are ignored: open-loop sources never wait

    def _fire(self) -> None:
        workload = self.workload
        if self.now >= workload.deadline:
            return
        entity = workload.sampler.sample(self.rng)
        config = workload.config
        event = ContextEvent(
            TypeSpec(config.type_of(entity), "raw",
                     config.subject_of(entity)),
            self.published, self.guid, self.now,
            {"floor": config.floor_of(entity)})
        target = workload.route(config.type_of(entity),
                                config.subject_of(entity))
        self.send(target, "publish", {"event": event.to_wire(), "ack": False})
        self.published += 1
        self.scheduler.schedule(workload.interarrival(self.rng, self.now),
                                self._fire)


class _Sink(Process):
    """A subscriber endpoint recording sim-time delivery latency."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 index: int):
        super().__init__(guid, host_id, network, name=f"wl-sink-{index}")
        self.latencies: List[float] = []

    def on_message(self, message) -> None:
        if message.kind == "event":
            wire = message.payload["event"]
            self.latencies.append(self.now - wire["timestamp"])


class OpenLoopWorkload:
    """Drive one mediator (+ optional resolver) with open-loop traffic.

    ``install()`` builds sinks, the subscription table and the publishers
    and pre-schedules churn/query operations; ``run()`` drains the run and
    returns wall-clock seconds; ``report()`` summarises.
    """

    def __init__(self, network: Network, mediator, config: WorkloadConfig,
                 resolver: Optional[QueryResolver] = None,
                 feed: Optional[ProviderFeed] = None,
                 hosts: Optional[List[str]] = None,
                 guid_seed: int = 71):
        self.network = network
        self.mediator = mediator
        self.config = config
        self.resolver = resolver
        self.feed = feed
        self.hosts = list(hosts) if hosts else [mediator.host_id]
        self.guids = GuidFactory(seed=guid_seed)
        self.sampler = ZipfSampler(config.entities, config.zipf_s)
        shard_route = getattr(mediator, "shard_guid_for", None)
        self.route = (shard_route if shard_route is not None
                      else lambda _type, _subject: mediator.guid)
        self.publishers: List[_Publisher] = []
        self.sinks: List[_Sink] = []
        self.start = 0.0
        self.deadline = 0.0
        if config.rate_profile and min(config.rate_profile) <= 0:
            raise ValueError("rate_profile multipliers must be > 0")
        self._template_sampler = (
            ZipfSampler(config.tracker_templates, config.template_zipf_s)
            if config.tracker_templates > 0 else None)
        if config.query_mix == "zipf":
            self._query_type_sampler: Optional[ZipfSampler] = \
                ZipfSampler(config.types, config.query_zipf_s)
        elif config.query_mix == "uniform":
            self._query_type_sampler = None
        else:
            raise ValueError(f"unknown query mix {config.query_mix!r}")
        self.queries_ok = 0
        self.queries_failed = 0
        self.churned_subs = 0
        self.churned_profiles = 0
        self._tracker_subs: List[int] = []
        self._tracked: Dict[int, int] = {}      # entity -> tracker count
        self._sub_entity: Dict[int, int] = {}   # sub_id -> entity
        self._churn_rng = Random(f"{config.seed}:churn")
        self._query_rng = Random(f"{config.seed}:query")
        self._install_rng = Random(f"{config.seed}:install")

    # -- arrival process ------------------------------------------------------

    def interarrival(self, rng: Random, now: float) -> float:
        per_publisher = self.config.publish_rate / self.config.publishers
        if self.config.rate_profile and self.config.arrival == "poisson":
            return self._profiled_gap(rng, now, per_publisher)
        mean = 1.0 / per_publisher
        if self.config.arrival == "poisson":
            return rng.expovariate(per_publisher)
        if self.config.arrival == "uniform":
            return rng.uniform(0.5 * mean, 1.5 * mean)
        raise ValueError(f"unknown arrival process {self.config.arrival!r}")

    def _profiled_gap(self, rng: Random, now: float, base_rate: float) -> float:
        """Next arrival under the diurnal piecewise-constant Poisson rate.

        Exact sampling by area integration: draw a unit-rate exponential
        and consume it against ``rate(t) dt`` slice by slice — the standard
        inversion for inhomogeneous Poisson processes with step rates, so
        the realised process is Poisson with exactly the profiled rate (no
        thinning, no approximation at slice boundaries). Past the arrival
        window the last slice's rate extends (publishers stop at the
        deadline anyway).
        """
        profile = self.config.rate_profile
        width = self.config.duration / len(profile)
        area = rng.expovariate(1.0)
        t = max(0.0, now - self.start)
        while True:
            index = int(t // width)
            if index >= len(profile) - 1:
                rate = base_rate * profile[-1]
                t = max(t, (len(profile) - 1) * width) + area / rate
                break
            rate = base_rate * profile[index]
            boundary = (index + 1) * width
            capacity = rate * (boundary - t)
            if area <= capacity:
                t += area / rate
                break
            area -= capacity
            t = boundary
        return (self.start + t) - now

    # -- setup ----------------------------------------------------------------

    def install(self) -> None:
        config = self.config
        if (self._template_sampler is None
                and config.trackers > config.entities * config.tracker_cap):
            raise ValueError(
                f"{config.trackers} trackers cannot fit "
                f"{config.entities} entities at cap {config.tracker_cap}")
        for host in self.hosts:
            self.network.ensure_host(host)
        for index, host in enumerate(self.hosts):
            self.sinks.append(_Sink(self.guids.mint(), host,
                                    self.network, index))
        for index in range(config.trackers):
            if self._template_sampler is not None:
                self._add_template_tracker(self._install_rng, index)
            else:
                self._add_tracker(
                    self._pick_tracked_entity(self._install_rng), index)
        for index in range(config.monitors):
            sink = self.sinks[index % len(self.sinks)]
            self.mediator.add_subscription(
                sink.guid, TypeFilter(f"wl-type-{index % config.types}"),
                owner="wl-monitor")
        for index in range(config.publishers):
            host = self.hosts[index % len(self.hosts)]
            self.publishers.append(_Publisher(self.guids.mint(), host,
                                              self.network, self, index))
        start = self.network.scheduler.now
        self.start = start
        self.deadline = start + config.duration
        # churn and queries run on the control lane (scheduled from external
        # context), where mutating shared mediator/resolver structures is
        # legal under the sharding concurrency contract
        for when in self._op_times(self._churn_rng, config.churn_ops):
            self.network.scheduler.schedule_at(start + when, self._churn_op)
        if self.resolver is not None:
            for when in self._op_times(self._query_rng, config.query_ops):
                self.network.scheduler.schedule_at(start + when,
                                                   self._query_op)

    def _op_times(self, rng: Random, count: int) -> List[float]:
        return sorted(rng.uniform(1.0, self.config.duration)
                      for _ in range(count))

    def _pick_tracked_entity(self, rng: Random) -> int:
        """A Zipf draw, spilling to the uniform tail when the draw is full.

        Without the per-entity cap the hottest subjects collect O(trackers)
        subscriptions AND O(publishes) events, making delivery volume
        quadratic in the skew — no real deployment attaches thousands of
        trackers to one entity.
        """
        entity = self.sampler.sample(rng)
        while self._tracked.get(entity, 0) >= self.config.tracker_cap:
            entity = rng.randrange(self.config.entities)
        return entity

    def _add_tracker(self, entity: int, index: int) -> None:
        config = self.config
        sink = self.sinks[index % len(self.sinks)]
        # no retained replay: trackers follow fresh updates. (Replay sets
        # also stop being count-comparable across configurations once the
        # retained cap evicts — global oldest-first vs per-shard
        # oldest-first keep different survivors.)
        subscription = self.mediator.add_subscription(
            sink.guid,
            AndFilter([TypeFilter(config.type_of(entity)),
                       SubjectFilter(config.subject_of(entity))]),
            owner="wl-tracker", replay_retained=False)
        self._tracker_subs.append(subscription.sub_id)
        self._sub_entity[subscription.sub_id] = entity
        self._tracked[entity] = self._tracked.get(entity, 0) + 1

    def _add_template_tracker(self, rng: Random, index: int) -> None:
        """One look-alike tracker drawn from the Zipf-popular template pool."""
        type_name, floor = self.config.template_combo(
            self._template_sampler.sample(rng))
        sink = self.sinks[index % len(self.sinks)]
        subscription = self.mediator.add_subscription(
            sink.guid,
            AndFilter([TypeFilter(type_name),
                       AttributeFilter("floor", "==", floor)]),
            owner="wl-tracker", replay_retained=False)
        self._tracker_subs.append(subscription.sub_id)

    # -- control-lane operations ----------------------------------------------

    def _churn_op(self) -> None:
        """One churn step: rotate a tracker and (if fed) a registration."""
        rng = self._churn_rng
        if self._tracker_subs:
            victim = self._tracker_subs.pop(
                rng.randrange(len(self._tracker_subs)))
            self.mediator.remove_subscription(victim)
            if self._template_sampler is not None:
                self._add_template_tracker(rng, len(self._tracker_subs))
            else:
                was_tracking = self._sub_entity.pop(victim)
                self._tracked[was_tracking] -= 1
                self._add_tracker(self._pick_tracked_entity(rng),
                                  len(self._tracker_subs))
            self.churned_subs += 1
        if self.feed is not None and self.resolver is not None:
            departed = self.feed.deregister(rng.randrange(10**9))
            self.resolver.note_profile_removed(departed.entity_id.hex)
            arrived = self.feed.register(rng.randrange(self.config.entities))
            self.resolver.note_profile_added(arrived)
            self.churned_profiles += 1

    def _query_op(self) -> None:
        from repro.core.errors import SCIError
        if self._query_type_sampler is not None:
            type_index = self._query_type_sampler.sample(self._query_rng)
        else:
            type_index = self._query_rng.randrange(self.config.types)
        wanted = TypeSpec(
            self.feed.sense_type(type_index) if self.feed is not None
            else f"wl-sense-{type_index}",
            "raw")
        try:
            self.resolver.resolve(wanted)
            self.queries_ok += 1
        except SCIError:
            self.queries_failed += 1

    # -- run ------------------------------------------------------------------

    def run(self) -> None:
        """Kick the publishers and drain the run. Callers that want
        wall-clock throughput time this call themselves (wall-clock reads
        belong in benchmark harnesses, not simulated code).

        The kick is a self-addressed message sent from external context: it
        lands on the publisher's own lane, so the publisher's entire arrival
        stream self-schedules there instead of on the control lane.
        """
        for publisher in self.publishers:
            self.network.send(Message(sender=publisher.guid,
                                      recipient=publisher.guid,
                                      kind="wl-start"))
        self.network.scheduler.run_until_idle()  # sci: allow(determinism.wall-clock)

    # -- reporting ------------------------------------------------------------

    def published(self) -> int:
        return sum(publisher.published for publisher in self.publishers)

    def latencies(self) -> List[float]:
        merged: List[float] = []
        for sink in self.sinks:
            merged.extend(sink.latencies)
        merged.sort()
        return merged

    def report(self, wall_s: float) -> Dict[str, object]:
        latencies = self.latencies()
        delivered = len(latencies)
        published = self.published()
        metrics = self.network.obs.metrics
        metrics.counter(
            "workload.ops.generated",
            "open-loop operations generated, by kind",
            labels=("kind",)).inc(published, kind="publish")
        metrics.counter(
            "workload.ops.generated",
            "open-loop operations generated, by kind",
            labels=("kind",)).inc(self.churned_subs, kind="churn")
        metrics.counter(
            "workload.ops.generated",
            "open-loop operations generated, by kind",
            labels=("kind",)).inc(self.queries_ok + self.queries_failed,
                                  kind="query")
        metrics.counter(
            "workload.events.delivered",
            "events received by workload sinks").inc(delivered)
        histogram = metrics.histogram(
            "workload.delivery.latency",
            "sim-time publish-to-delivery latency at workload sinks")
        for latency in latencies:
            histogram.observe(latency)
        return {
            "entities": self.config.entities,
            "published": published,
            "delivered": delivered,
            "queries": self.queries_ok + self.queries_failed,
            "churn_subs": self.churned_subs,
            "churn_profiles": self.churned_profiles,
            "latency_p50": _percentile(latencies, 0.50),
            "latency_p99": _percentile(latencies, 0.99),
            "wall_s": wall_s,
            "published_per_s": published / wall_s if wall_s else 0.0,
            "delivered_per_s": delivered / wall_s if wall_s else 0.0,
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = int(q * (len(sorted_values) - 1))
    return sorted_values[index]



"""The Figure-3 floor-map application: live path display between entities.

"Consider a CAA on a mobile device that displays a building floor map and
can visually represent the path from one location to another ... a user,
Bob, wishes to display the path between himself and his colleague John."

The app submits one subscription query for ``path[rooms]@<from>-><to>``; the
infrastructure composes doorSensor -> objLocation -> path (Figure 3) and the
display updates on every event. ``render()`` returns the ASCII rendering an
actual device would draw.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, List, Optional

from repro.entities.entity import ContextAwareApplication
from repro.events.event import ContextEvent
from repro.query.model import Query, QueryBuilder

logger = logging.getLogger(__name__)


class PathDisplayApp(ContextAwareApplication):
    """Displays the live path between two tracked entities."""

    def __init__(self, profile, host_id, network,
                 from_entity: str = "", to_entity: str = ""):
        super().__init__(profile, host_id, network)
        self.from_entity = from_entity
        self.to_entity = to_entity
        self.current_path: Optional[Dict[str, Any]] = None
        self.path_history: List[Dict[str, Any]] = []
        self.query: Optional[Query] = None

    def track(self, from_entity: Optional[str] = None,
              to_entity: Optional[str] = None) -> Query:
        """(Re)start tracking; queues the query if currently out of range."""
        if from_entity:
            self.from_entity = from_entity
        if to_entity:
            self.to_entity = to_entity
        if not self.from_entity or not self.to_entity:
            raise ValueError("track() needs both endpoints")
        if self.query is not None:
            self.cancel_query(self.query.query_id)
        self.query = (QueryBuilder(self.from_entity)
                      .subscribe("path", "rooms",
                                 subject=f"{self.from_entity}->{self.to_entity}")
                      .build())
        self.queue_query(self.query)
        return self.query

    def on_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        if event.type_name != "path":
            return
        self.current_path = dict(event.value)
        self.path_history.append(self.current_path)
        logger.info("%s: path now %s (%.1fm)", self.name,
                    " -> ".join(self.current_path["rooms"]),
                    self.current_path["cost"])

    # -- display -----------------------------------------------------------------

    def render(self) -> str:
        """What the device screen shows."""
        if self.current_path is None:
            return f"[{self.name}] locating {self.from_entity} and {self.to_entity}..."
        rooms = " -> ".join(self.current_path["rooms"])
        return (f"[{self.name}] {self.from_entity} to {self.to_entity}: "
                f"{rooms}  ({self.current_path['cost']:.1f} m)")

    def updates_seen(self) -> int:
        return len(self.path_history)

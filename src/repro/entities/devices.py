"""Device Context Entities — printers for the CAPA scenario.

Section 5 needs printers that can be busy (P1, serving Bob), out of paper
(P2), behind a locked door (P3 — access is a property of the door in the
topology model, not of the printer) and free (P4). A printer publishes
``printer-status`` events on every state change and advertises a
``print-service`` whose operations CAAs invoke with service messages.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from repro.core.ids import GUID
from repro.core.types import TypeSpec
from repro.entities.advertisement import Advertisement
from repro.entities.entity import ContextEntity
from repro.entities.profile import EntityClass, Profile
from repro.net.transport import Network


class PrinterState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    OUT_OF_PAPER = "out-of-paper"


class PrinterCE(ContextEntity):
    """A networked printer with a job queue and live status events."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 printer_name: str, room: str,
                 seconds_per_page: float = 2.0,
                 paper_capacity: int = 500):
        if seconds_per_page <= 0:
            raise ValueError(f"non-positive page time: {seconds_per_page}")
        profile = Profile(
            entity_id=guid,
            name=printer_name,
            entity_class=EntityClass.DEVICE,
            outputs=[TypeSpec("printer-status", "record")],
            attributes={"room": room, "device": "printer"},
        )
        advertisement = Advertisement(
            service_name="print-service",
            operations=["print", "status"],
            attributes={"room": room},
        )
        super().__init__(profile, host_id, network, advertisements=[advertisement])
        self.printer_name = printer_name
        self.room = room
        self.seconds_per_page = seconds_per_page
        self.paper_remaining = paper_capacity
        self.state = PrinterState.IDLE
        self._queue: List[Dict[str, Any]] = []
        self._active_job: Optional[Dict[str, Any]] = None
        self.jobs_completed: List[Dict[str, Any]] = []

    # -- status ---------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Jobs waiting or printing."""
        return len(self._queue) + (1 if self._active_job else 0)

    def status_record(self) -> Dict[str, Any]:
        return {
            "printer": self.printer_name,
            "room": self.room,
            "state": self.state.value,
            "queue_length": self.queue_length,
            "paper_remaining": self.paper_remaining,
        }

    def publish_status(self) -> None:
        self.publish(
            TypeSpec("printer-status", "record", self.printer_name),
            self.status_record(),
        )

    def on_registered(self) -> None:
        self.publish_status()  # announce initial availability

    # -- scenario control -------------------------------------------------------

    def set_out_of_paper(self) -> None:
        self.paper_remaining = 0
        if self.state != PrinterState.BUSY:
            self.state = PrinterState.OUT_OF_PAPER
        self.publish_status()

    def refill_paper(self, sheets: int = 500) -> None:
        if sheets <= 0:
            raise ValueError(f"non-positive refill: {sheets}")
        self.paper_remaining += sheets
        if self.state == PrinterState.OUT_OF_PAPER:
            self.state = PrinterState.IDLE
            self._start_next_job()
        self.publish_status()

    # -- service interface --------------------------------------------------------

    def handle_service(self, operation: str, args: Dict[str, Any]) -> Any:
        if operation == "status":
            return self.status_record()
        if operation == "print":
            return self._accept_job(args)
        raise AssertionError(f"unadvertised operation {operation!r}")  # pragma: no cover

    def _accept_job(self, args: Dict[str, Any]) -> Dict[str, Any]:
        pages = int(args.get("pages", 1))
        if pages < 1:
            return {"accepted": False, "reason": "empty document"}
        if self.paper_remaining < pages:
            return {"accepted": False, "reason": "out of paper"}
        job = {
            "document": args.get("document", "untitled"),
            "pages": pages,
            "owner": args.get("owner", "unknown"),
            "submitted_at": self.now,
        }
        self._queue.append(job)
        self._start_next_job()
        self.publish_status()
        return {"accepted": True, "position": self.queue_length}

    def _start_next_job(self) -> None:
        if self._active_job is not None or not self._queue:
            return
        if self.paper_remaining <= 0:
            self.state = PrinterState.OUT_OF_PAPER
            return
        self._active_job = self._queue.pop(0)
        self.state = PrinterState.BUSY
        duration = self._active_job["pages"] * self.seconds_per_page
        self.scheduler.schedule(duration, self._finish_job)

    def _finish_job(self) -> None:
        if self._active_job is None:  # crashed/stopped mid-job
            return
        job = self._active_job
        self._active_job = None
        self.paper_remaining = max(0, self.paper_remaining - job["pages"])
        job["completed_at"] = self.now
        self.jobs_completed.append(job)
        if self.paper_remaining <= 0:
            self.state = PrinterState.OUT_OF_PAPER
        else:
            self.state = PrinterState.IDLE
            self._start_next_job()
        self.publish_status()

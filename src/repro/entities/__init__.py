"""Context Entities, Context Aware Applications and their metadata.

Section 3.1: "A Context Entity (CE) is a lightweight software component for
representing an entity within the infrastructure ... A CE maintains a Profile
for its entity that contains meta-data describing the entity. For entities
that provide a service, the CE may also maintain an Advertisement."

The class split follows Figure 4: shared registration behaviour
(RegisterInterface) in :class:`BaseComponent`, the event-consuming side
(ConsumeInterface) in :class:`ContextAwareApplication`, and the service side
(ServiceInterface) in :class:`ContextEntity`. Concrete sensor, derived and
device entities live in their own modules.
"""

from repro.entities.profile import EntityClass, Profile
from repro.entities.advertisement import Advertisement
from repro.entities.entity import (
    BaseComponent,
    ContextEntity,
    ContextAwareApplication,
)
from repro.entities.sensors import (
    DoorSensorCE,
    WLANDetectorCE,
    TemperatureSensorCE,
)
from repro.entities.derived import (
    ObjectLocationCE,
    PathCE,
    ConverterCE,
    OccupancyCE,
    WindowAggregatorCE,
)
from repro.entities.devices import PrinterCE, PrinterState

__all__ = [
    "EntityClass",
    "Profile",
    "Advertisement",
    "BaseComponent",
    "ContextEntity",
    "ContextAwareApplication",
    "DoorSensorCE",
    "WLANDetectorCE",
    "TemperatureSensorCE",
    "ObjectLocationCE",
    "PathCE",
    "ConverterCE",
    "OccupancyCE",
    "WindowAggregatorCE",
    "PrinterCE",
    "PrinterState",
]

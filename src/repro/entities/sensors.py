"""Sensor-level Context Entities — the data sources of every configuration.

These stand in for the paper's physical instrumentation (DESIGN.md
substitution table): door sensors reading electronic ID badges, W-LAN base
stations detecting devices, and ambient temperature probes. Each is a plain
:class:`~repro.entities.entity.ContextEntity` whose profile declares outputs
but no event inputs, which is what makes it a leaf for the Query Resolver's
backward chaining.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.core.ids import GUID
from repro.core.types import TypeSpec
from repro.entities.entity import ContextEntity
from repro.entities.profile import EntityClass, Profile
from repro.location.geometry import Point
from repro.location.signalmap import SignalMap
from repro.net.sim import Timer
from repro.net.transport import Network


class DoorSensorCE(ContextEntity):
    """A sensor on one door that reads ID tags passing through.

    Figure 3: "The doorSensor CEs produce events indicating when an object
    (equipped with ID tag) passes through them". The simulated world calls
    :meth:`detect` when a tagged entity crosses the door; the sensor
    publishes a ``presence`` event recording who moved between which rooms.

    ``miss_rate`` models unreliable reads (a real badge reader misses some
    swipes); missed detections are the adaptivity benchmark's background
    noise.
    """

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 door_id: str, room_a: str, room_b: str,
                 miss_rate: float = 0.0, seed: int = 0):
        if not 0.0 <= miss_rate < 1.0:
            raise ValueError(f"miss_rate out of range: {miss_rate}")
        profile = Profile(
            entity_id=guid,
            name=f"door-sensor:{door_id}",
            entity_class=EntityClass.DEVICE,
            outputs=[TypeSpec.of("presence", "tag-read",
                                 quality={"accuracy": 1.0 - miss_rate})],
            attributes={"door": door_id, "rooms": [room_a, room_b]},
        )
        super().__init__(profile, host_id, network)
        self.door_id = door_id
        self.room_a = room_a
        self.room_b = room_b
        self.miss_rate = miss_rate
        self._rng = random.Random(seed)
        self.detections = 0
        self.misses = 0

    def detect(self, entity_key: str, from_room: str, to_room: str) -> bool:
        """Report a tagged entity crossing; returns False on a missed read."""
        if self.miss_rate and self._rng.random() < self.miss_rate:
            self.misses += 1
            return False
        self.detections += 1
        self.publish(
            TypeSpec("presence", "tag-read", entity_key),
            {
                "entity": entity_key,
                "door": self.door_id,
                "from": from_room,
                "to": to_room,
            },
        )
        return True


class WLANDetectorCE(ContextEntity):
    """A W-LAN location source: estimates device positions from RSSI.

    Section 3.4's second detection mechanism. On a fixed scan interval the
    detector asks the world for current device positions (that callback is
    the simulation stand-in for the radio layer), runs them through the
    :class:`~repro.location.signalmap.SignalMap` forward+inverse models and
    publishes a ``location[geometric]`` event per covered device — the
    semantically-equivalent-but-syntactically-different source the paper's
    iQueue critique turns on.
    """

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 signal_map: SignalMap,
                 device_positions: Callable[[], Dict[str, Point]],
                 scan_interval: float = 5.0):
        if scan_interval <= 0:
            raise ValueError(f"non-positive scan interval: {scan_interval}")
        profile = Profile(
            entity_id=guid,
            name="wlan-detector",
            entity_class=EntityClass.DEVICE,
            outputs=[TypeSpec.of("location", "geometric",
                                 quality={"accuracy": 5.0})],
            attributes={"stations": [s.station_id for s in signal_map.stations()]},
        )
        super().__init__(profile, host_id, network)
        self.signal_map = signal_map
        self.device_positions = device_positions
        self.scan_interval = scan_interval
        self._scan_timer: Optional[Timer] = None
        self.scans = 0

    def on_registered(self) -> None:
        self._scan_timer = self.scheduler.schedule_periodic(
            self.scan_interval, self.scan)

    def stop(self) -> None:
        if self._scan_timer is not None:
            self._scan_timer.cancel()
        super().stop()

    def crash(self) -> None:
        if self._scan_timer is not None:
            self._scan_timer.cancel()
        super().crash()

    def scan(self) -> int:
        """One sweep: publish an estimate for every covered device."""
        self.scans += 1
        published = 0
        for entity_key, position in sorted(self.device_positions().items()):
            observations = self.signal_map.observe(position)
            if not observations:
                continue
            estimate = self.signal_map.estimate_position(observations)
            error = self.signal_map.estimate_error_bound(observations)
            self.publish(
                TypeSpec("location", "geometric", entity_key),
                (estimate.x, estimate.y),
                attributes={"accuracy": error, "stations_heard": len(observations)},
            )
            published += 1
        return published


class TemperatureSensorCE(ContextEntity):
    """An ambient temperature probe publishing periodic readings.

    ``representation`` is configurable ("celsius" / "fahrenheit") so tests
    and benches can exercise converter insertion on a type other than
    location. Readings follow a bounded random walk around ``baseline``.
    """

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 room: str, baseline: float = 21.0,
                 representation: str = "celsius",
                 interval: float = 10.0, seed: int = 0):
        if interval <= 0:
            raise ValueError(f"non-positive interval: {interval}")
        profile = Profile(
            entity_id=guid,
            name=f"thermometer:{room}",
            entity_class=EntityClass.DEVICE,
            outputs=[TypeSpec.of("temperature", representation,
                                 quality={"accuracy": 0.5})],
            attributes={"room": room},
        )
        super().__init__(profile, host_id, network)
        self.room = room
        self.representation = representation
        self.baseline = baseline
        self.current = baseline
        self.interval = interval
        self._rng = random.Random(seed)
        self._timer: Optional[Timer] = None
        self.readings = 0

    def on_registered(self) -> None:
        self._timer = self.scheduler.schedule_periodic(self.interval, self.read)
        self.read()  # initial reading so configurations get a first value

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        super().stop()

    def crash(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        super().crash()

    def read(self) -> float:
        """Take and publish one reading."""
        drift = self._rng.uniform(-0.3, 0.3)
        # pull gently back toward the baseline so the walk stays bounded
        self.current += drift + 0.1 * (self.baseline - self.current)
        self.readings += 1
        self.publish(
            TypeSpec("temperature", self.representation, self.room),
            round(self.current, 2),
            attributes={"room": self.room},
        )
        return self.current

"""CE and CAA base classes — the architectural design of Figure 4.

"Both entities share the RegisterInterface in order to facilitate
communication with a Range Service, while CAAs include the ConsumeInterface
for dealing with events. The ServiceInterface, implemented by the CE,
represents the 'well known' Advertisement interface. At the Concrete level,
CE or CAA developers need only to deal with the service they provide or the
events they receive."

The registration handshake implements Figure 5:

1. the component starts and announces itself on its machine
   (``component-up``, link-local broadcast);
2. the machine's Range Service replies ``range-offer`` naming the Registrar;
3. the component registers its profile with the Registrar;
4. the ``register-ack`` returns the Context Server address (CAAs submit
   queries there) and the Event Mediator address (CEs publish there), plus a
   lease the component keeps alive with heartbeats.

Concrete subclasses override the hooks at the bottom of each class
(:meth:`ContextEntity.on_event`, :meth:`ContextEntity.handle_service`,
:meth:`ContextAwareApplication.on_event`, ...) and never touch the protocol.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, List, Optional

from repro.core.errors import RegistrationError
from repro.core.ids import GUID
from repro.core.types import TypeSpec
from repro.entities.advertisement import Advertisement
from repro.entities.profile import Profile
from repro.events.event import ContextEvent
from repro.events.stream import StreamReassembler
from repro.net.message import BROADCAST, Message
from repro.net.rpc import RequestManager
from repro.net.sim import Timer
from repro.net.transport import Network, Process

logger = logging.getLogger(__name__)

#: retransmission budgets for the component-side RPCs that must survive a
#: lossy network: the Figure-5 registration and the lease heartbeats
REGISTER_RETRIES = 2
HEARTBEAT_RETRIES = 1
RESYNC_RETRIES = 2
PUBLISH_RETRIES = 4
PUBLISH_ACK_TIMEOUT = 5.0


class BaseComponent(Process):
    """Shared RegisterInterface behaviour for CEs and CAAs."""

    #: overridden by subclasses; sent in the announce so the Registrar knows
    #: which addresses to return.
    component_kind = "component"

    def __init__(self, profile: Profile, host_id: str, network: Network):
        super().__init__(profile.entity_id, host_id, network, name=profile.name)
        self.profile = profile
        self.advertisements: List[Advertisement] = []
        self.requests = RequestManager(self)
        self.registered = False
        self.registrar: Optional[GUID] = None
        self.context_server: Optional[GUID] = None
        self.event_mediator: Optional[GUID] = None
        self.range_name: Optional[str] = None
        self.lease_duration: Optional[float] = None
        self._heartbeat_timer: Optional[Timer] = None
        self._params: Dict[str, Any] = {}
        #: restores publish order over sequenced (reliable-mediator) streams;
        #: unsequenced deliveries pass straight through
        self.streams = StreamReassembler(
            self.scheduler, self._deliver_event,
            request_resync=self._request_resync,
            metrics=network.obs.metrics)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Announce presence on this machine (Figure 5, step 1)."""
        self.send(BROADCAST, "component-up", {"kind": self.component_kind})

    def stop(self) -> None:
        """Deregister (if registered) and leave the network."""
        if self.registered and self.registrar is not None:
            self.send(self.registrar, "deregister", {"entity": self.guid.hex})
        self._teardown_registration()
        self.requests.cancel_all()
        self.detach()

    def crash(self) -> None:
        """Vanish without deregistering — the failure-injection path."""
        self.registered = False
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        self.streams.reset()
        self.requests.cancel_all()
        self.detach()

    def attach_to_range(self, registrar: GUID, context_server: GUID,
                        event_mediator: GUID, range_name: str) -> None:
        """Join a range without the Figure-5 handshake.

        Used for infrastructure-spawned components (converter CEs, template
        instances created by the Configuration Manager): the Context Server
        creates them already knowing the range's addresses, so the discovery
        broadcast would be theatre. The component still appears in the
        Registrar — the caller is responsible for recording it there.
        """
        self.registrar = registrar
        self.context_server = context_server
        self.event_mediator = event_mediator
        self.range_name = range_name
        self.registered = True
        self.on_registered()

    def _teardown_registration(self) -> None:
        self.registered = False
        self.registrar = None
        self.context_server = None
        self.event_mediator = None
        self.range_name = None
        self.streams.reset()
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None

    # -- registration protocol ----------------------------------------------------

    def _handle_range_offer(self, message: Message) -> None:
        """Figure 5, step 2: a Range Service told us where the Registrar is.

        An offer from a *different* range while still registered means the
        component's machine moved between ranges (Section 3.4): leave the old
        range and take the offer — the old range's eviction notice may still
        be in flight.
        """
        offered_range = message.payload.get("range")
        if self.registered:
            if offered_range == self.range_name:
                return
            if self.registrar is not None:
                self.send(self.registrar, "deregister", {"entity": self.guid.hex})
            self._teardown_registration()
        registrar = GUID.from_hex(message.payload["registrar"])
        self._register_with(registrar)

    def _register_with(self, registrar: GUID) -> None:
        self.registrar = registrar
        self.requests.request(
            registrar,
            "register",
            {
                "kind": self.component_kind,
                "profile": self.profile.to_wire(),
                "advertisements": [ad.to_wire() for ad in self.advertisements],
            },
            on_reply=self._handle_register_ack,
            on_timeout=self._handle_register_timeout,
            retries=REGISTER_RETRIES,
        )

    def _handle_register_ack(self, reply: Message) -> None:
        if not reply.payload.get("ok", False):
            logger.warning("%s registration refused: %s", self.name,
                           reply.payload.get("error"))
            return
        self.registered = True
        self.context_server = GUID.from_hex(reply.payload["context_server"])
        self.event_mediator = GUID.from_hex(reply.payload["event_mediator"])
        self.range_name = reply.payload.get("range")
        self.lease_duration = reply.payload.get("lease")
        if self.lease_duration:
            interval = self.lease_duration / 3.0
            self._heartbeat_timer = self.scheduler.schedule_periodic(
                interval, self._send_heartbeat)
        logger.debug("%s registered in range %s", self.name, self.range_name)
        self.on_registered()

    def _handle_register_timeout(self) -> None:
        logger.warning("%s registration timed out", self.name)
        self.registrar = None

    def _send_heartbeat(self) -> None:
        """Renew the lease; a heartbeat lost to the network is retransmitted.

        The first-ack window stays well above a campus round trip but under
        the heartbeat interval, so one transport-level loss no longer costs
        a whole renewal period — a third of the entire lease.
        """
        if not (self.registered and self.registrar is not None):
            return
        interval = (self.lease_duration or 30.0) / 3.0
        self.requests.request(
            self.registrar, "heartbeat", {"entity": self.guid.hex},
            timeout=max(interval * 0.45, 3.5),
            retries=HEARTBEAT_RETRIES,
        )

    def _handle_deregistered(self, message: Message) -> None:
        """The Registrar evicted us (lease expiry or range departure).

        Only the *current* registrar's notice counts: after a handoff, the
        old range's eviction may still be in flight and must not tear down
        the new registration.
        """
        if self.registrar is not None and message.sender != self.registrar:
            return
        self._teardown_registration()
        self.on_deregistered(message.payload.get("reason", ""))

    # -- parameters ------------------------------------------------------------------

    def set_param(self, name: str, value: Any) -> None:
        """Bind a profile parameter (done by the resolver at configuration
        time, or directly in tests)."""
        if name not in self.profile.params:
            raise RegistrationError(
                f"{self.name} has no parameter {name!r}; "
                f"declared: {sorted(self.profile.params)}"
            )
        self._params[name] = value
        self.on_param_set(name, value)

    def get_param(self, name: str, default: Any = None) -> Any:
        return self._params.get(name, default)

    # -- message dispatch --------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if self.requests.dispatch_reply(message):
            return
        if message.kind == "range-offer":
            self._handle_range_offer(message)
        elif message.kind == "deregistered":
            self._handle_deregistered(message)
        elif message.kind == "set-param":
            self.set_param(message.payload["name"], message.payload["value"])
            self.reply(message, "set-param-ack", {"ok": True})
        else:
            self.handle_component_message(message)

    # -- event intake (ConsumeInterface plumbing) -------------------------------------

    def handle_event_message(self, message: Message) -> None:
        """Ack (when sequenced), reassemble, then hand to the consume hook.

        Sequenced deliveries come from a reliable mediator expecting an
        ``event-ack``; the reassembler restores publish order, drops the
        duplicates a raced retransmission can produce, and requests a resync
        for holes that outlive the mediator's retransmission budget.
        """
        payload = message.payload
        seq = payload.get("seq")
        if seq is not None:
            self.reply(message, "event-ack", {"sub_id": payload.get("sub_id")})
        self.streams.offer(payload.get("sub_id"), seq, payload)

    def _deliver_event(self, payload: Dict[str, Any]) -> None:
        event = ContextEvent.from_wire(payload["event"])
        self._consume_event(event, payload.get("sub_id"))

    def _consume_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        """Subclass hook: an in-order, deduplicated event is ready."""
        self.on_event(event, sub_id)

    def _request_resync(self, sub_id: int) -> None:
        if not self.registered or self.event_mediator is None:
            return
        self.requests.request(
            self.event_mediator, "resync", {"sub_id": sub_id},
            on_reply=lambda reply: self._handle_resync_ack(sub_id, reply),
            on_timeout=lambda: self.streams.resync_failed(sub_id),
            timeout=10.0, retries=RESYNC_RETRIES,
        )

    def _handle_resync_ack(self, sub_id: int, reply: Message) -> None:
        if reply.payload.get("ok"):
            self.streams.resync_done(sub_id, reply.payload.get("seq", 0))
        else:
            # the mediator no longer knows this subscription; its stream is
            # dead and any buffered fragments with it
            self.streams.forget(sub_id)

    # -- hooks ---------------------------------------------------------------------------

    def on_registered(self) -> None:
        """Called once registration completes."""

    def on_deregistered(self, reason: str) -> None:
        """Called when the Registrar evicts this component."""

    def on_param_set(self, name: str, value: Any) -> None:
        """Called when a profile parameter is bound."""

    def on_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        """A subscribed event arrived (in order, exactly once)."""

    def handle_component_message(self, message: Message) -> None:
        """Kind-specific traffic for subclasses; default handles events."""
        if message.kind == "event":
            self.handle_event_message(message)
        else:
            logger.debug("%s ignoring %s", self.name, message)


class ContextEntity(BaseComponent):
    """A producer (and possibly consumer) of typed context events.

    Concrete CEs override :meth:`on_event` (their event inputs),
    :meth:`handle_service` (their Advertisement operations) and use
    :meth:`publish` to emit events.
    """

    component_kind = "ce"

    def __init__(self, profile: Profile, host_id: str, network: Network,
                 advertisements: Optional[List[Advertisement]] = None):
        super().__init__(profile, host_id, network)
        self.advertisements = list(advertisements or [])
        self.events_published = 0
        self.events_consumed = 0

    # -- producing -------------------------------------------------------------

    def publish(self, spec: TypeSpec, value: Any,
                attributes: Optional[Dict[str, Any]] = None) -> Optional[ContextEvent]:
        """Emit a typed event to the range's Event Mediator.

        Returns None (and drops the event) when not yet registered — a real
        sensor booting before its range exists has nowhere to publish.
        """
        if not self.registered or self.event_mediator is None:
            logger.debug("%s dropping publish before registration", self.name)
            return None
        event = ContextEvent(
            spec=spec,
            value=value,
            source=self.guid,
            timestamp=self.now,
            attributes=attributes or {},
        )
        # acknowledged publish: the mediator answers publish-ack, so a
        # publication lost on the wire is retransmitted (and deduplicated
        # receiver-side) instead of silently vanishing from every stream
        self.requests.request(
            self.event_mediator, "publish", {"event": event.to_wire()},
            timeout=PUBLISH_ACK_TIMEOUT, retries=PUBLISH_RETRIES)
        self.events_published += 1
        return event

    # -- consuming / serving ------------------------------------------------------

    def handle_component_message(self, message: Message) -> None:
        if message.kind == "service-invoke":
            operation = message.payload.get("operation", "")
            args = message.payload.get("args", {})
            if not any(ad.supports(operation) for ad in self.advertisements):
                self.reply(message, "service-result",
                           {"ok": False, "error": f"unknown operation {operation!r}"})
                return
            result = self.handle_service(operation, args)
            self.reply(message, "service-result", {"ok": True, "result": result})
        else:
            super().handle_component_message(message)

    def _consume_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        self.events_consumed += 1
        self.on_event(event, sub_id)

    # -- hooks ----------------------------------------------------------------------

    def on_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        """An input event arrived (this CE is mid-graph in a configuration)."""

    def handle_service(self, operation: str, args: Dict[str, Any]) -> Any:
        """Execute an Advertisement operation; the return value is shipped
        back in the ``service-result`` reply."""
        raise NotImplementedError(f"{self.name} advertises no operations")


class ContextAwareApplication(BaseComponent):
    """An application that pulls or is pushed contextual information.

    Section 3.1: "A CAA communicates with the CS by way of a Query". The
    class supports offline operation (Section 5: CAPA stores Bob's query
    while he is on the train): queries queued with :meth:`queue_query` are
    submitted automatically once registration completes.
    """

    component_kind = "caa"

    def __init__(self, profile: Profile, host_id: str, network: Network):
        super().__init__(profile, host_id, network)
        self._offline_queue: List[Dict[str, Any]] = []
        self.query_acks: Dict[str, Dict[str, Any]] = {}
        self.results: List[Dict[str, Any]] = []
        self.events: List[ContextEvent] = []
        #: query id -> open ``query.submit`` root span, closed at ack/timeout
        self._query_spans: Dict[str, Any] = {}

    # -- querying ---------------------------------------------------------------

    def submit_query(self, query) -> None:
        """Send a query to the range's Context Server (requires registration)."""
        if not self.registered or self.context_server is None:
            raise RegistrationError(f"{self.name} is not in a range; queue the query instead")
        tracer = self.network.obs.tracer
        # Root span of the whole query trace. The request below is stamped
        # with it while it is current; we then leave (not close) it so it
        # can span the full round trip until the ack arrives.
        span = tracer.start("query.submit", app=self.name,
                            query=query.query_id, mode=query.mode.value)
        try:
            self.requests.request(
                self.context_server,
                "query",
                {"query": query.to_wire()},
                on_reply=self._handle_query_ack,
                on_timeout=lambda: self._query_timed_out(query.query_id),
            )
        finally:
            tracer.leave(span)
        if span is not None:
            self._query_spans[query.query_id] = span

    def _query_timed_out(self, query_id: str) -> None:
        span = self._query_spans.pop(query_id, None)
        if span is not None:
            span.set(outcome="timeout")
            self.network.obs.tracer.end(span)
        self.on_query_failed(query_id, "timeout")

    def queue_query(self, query) -> None:
        """Store a query for submission at next registration (offline mode)."""
        if self.registered:
            self.submit_query(query)
        else:
            self._offline_queue.append({"query": query})

    def cancel_query(self, query_id: str) -> None:
        if self.registered and self.context_server is not None:
            self.send(self.context_server, "cancel-query", {"query_id": query_id})

    def on_registered(self) -> None:
        pending, self._offline_queue = self._offline_queue, []
        for item in pending:
            self.submit_query(item["query"])

    def _handle_query_ack(self, reply: Message) -> None:
        payload = reply.payload
        query_id = payload.get("query_id", "")
        self.query_acks[query_id] = payload
        span = self._query_spans.pop(query_id, None)
        if span is not None:
            span.set(outcome=payload.get("status", "acked"),
                     ok=payload.get("ok", False))
            self.network.obs.tracer.end(span)
        if not payload.get("ok", False):
            self.on_query_failed(query_id, payload.get("error", "refused"))

    # -- receiving --------------------------------------------------------------------

    def handle_component_message(self, message: Message) -> None:
        if message.kind == "query-result":
            self.results.append(dict(message.payload))
            self.on_query_result(message.payload.get("query_id", ""),
                                 message.payload)
        else:
            super().handle_component_message(message)

    def _consume_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        self.events.append(event)
        self.on_event(event, sub_id)

    # -- hooks ---------------------------------------------------------------------------

    def on_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        """A subscribed event arrived (ConsumeInterface)."""

    def on_query_result(self, query_id: str, payload: Dict[str, Any]) -> None:
        """A one-shot query answer arrived."""

    def on_query_failed(self, query_id: str, error: str) -> None:
        """A query was refused or timed out."""
        logger.warning("%s query %s failed: %s", self.name, query_id, error)

    # -- conveniences for tests/examples ------------------------------------------------

    def last_event_value(self) -> Any:
        return self.events[-1].value if self.events else None

    def events_of_type(self, type_name: str) -> List[ContextEvent]:
        return [event for event in self.events if event.type_name == type_name]

"""CE Profiles — the metadata the Query Resolver matches on.

Section 4: "CE Profiles consist of simple Metadata about entity inputs and
outputs". Section 3.1 adds that entities are "People, Software, Places,
Devices and Artifacts". A profile declares:

* ``outputs``: the typed event streams the entity can produce,
* ``inputs``: the typed event streams it must consume to do so,
* ``params``: value slots bound at configuration time (the objLocationCE of
  Figure 3 "takes an entity ID as an input" — an ID is a binding, not an
  event stream, so it is a parameter here),
* ``attributes``: free metadata (home room, owner, capabilities) that Where
  and Which clauses select on,
* ``quality``: quality-of-context figures the Which clause can rank by.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.ids import GUID
from repro.core.types import TypeSpec


class EntityClass(enum.Enum):
    """The five entity kinds of Section 3 / Figure 1."""

    PERSON = "person"
    PLACE = "place"
    DEVICE = "device"
    SOFTWARE = "software"
    ARTIFACT = "artifact"


@dataclass
class Profile:
    """Metadata describing one entity to the infrastructure."""

    entity_id: GUID
    name: str
    entity_class: EntityClass = EntityClass.SOFTWARE
    outputs: List[TypeSpec] = field(default_factory=list)
    inputs: List[TypeSpec] = field(default_factory=list)
    params: Dict[str, str] = field(default_factory=dict)
    attributes: Dict[str, Any] = field(default_factory=dict)
    quality: Dict[str, float] = field(default_factory=dict)

    def provides_type(self, type_name: str) -> bool:
        return any(spec.type_name == type_name for spec in self.outputs)

    def output_of_type(self, type_name: str) -> Optional[TypeSpec]:
        for spec in self.outputs:
            if spec.type_name == type_name:
                return spec
        return None

    @property
    def is_source(self) -> bool:
        """True for sensor-level entities: no event inputs required."""
        return not self.inputs

    # -- wire form -----------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        return {
            "entity_id": self.entity_id.hex,
            "name": self.name,
            "entity_class": self.entity_class.value,
            "outputs": [_spec_to_wire(spec) for spec in self.outputs],
            "inputs": [_spec_to_wire(spec) for spec in self.inputs],
            "params": dict(self.params),
            "attributes": dict(self.attributes),
            "quality": dict(self.quality),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "Profile":
        return cls(
            entity_id=GUID.from_hex(data["entity_id"]),
            name=data["name"],
            entity_class=EntityClass(data["entity_class"]),
            outputs=[_spec_from_wire(item) for item in data.get("outputs", [])],
            inputs=[_spec_from_wire(item) for item in data.get("inputs", [])],
            params=dict(data.get("params", {})),
            attributes=dict(data.get("attributes", {})),
            quality=dict(data.get("quality", {})),
        )

    def __str__(self) -> str:
        outs = ", ".join(str(spec) for spec in self.outputs) or "-"
        ins = ", ".join(str(spec) for spec in self.inputs) or "-"
        return f"Profile({self.name}: {ins} -> {outs})"


def _spec_to_wire(spec: TypeSpec) -> Dict[str, Any]:
    return {
        "type": spec.type_name,
        "representation": spec.representation,
        "subject": spec.subject,
        "quality": list(spec.quality),
    }


def _spec_from_wire(data: Dict[str, Any]) -> TypeSpec:
    return TypeSpec(
        type_name=data["type"],
        representation=data.get("representation", "any"),
        subject=data.get("subject"),
        quality=tuple(tuple(item) for item in data.get("quality", ())),
    )

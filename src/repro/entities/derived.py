"""Derived (mid-graph) Context Entities.

These are the aggregation layer of Figure 3: entities whose profiles declare
both inputs and outputs, so the Query Resolver can chain them between
sensors and applications. ``ObjectLocationCE`` and ``PathCE`` are the
paper's own examples; ``ConverterCE`` is the representation bridge the
resolver splices automatically; ``OccupancyCE`` and ``WindowAggregatorCE``
are further aggregators used by examples and tests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.ids import GUID
from repro.core.types import Converter, TypeSpec
from repro.entities.entity import ContextEntity
from repro.entities.profile import EntityClass, Profile
from repro.events.event import ContextEvent
from repro.location.building import BuildingModel
from repro.core.errors import LocationError
from repro.net.transport import Network


class ObjectLocationCE(ContextEntity):
    """Turns door-sensor presence events into per-entity location.

    Figure 3: "An objLocationCE is found that takes an entity ID as an input
    and produces location information as an output. When this entity was
    added to the system it was set up to subscribe to all events emanating
    from door sensors." The entity ID is the ``subject`` parameter; presence
    events for other entities are ignored.
    """

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 name: str = "obj-location"):
        profile = Profile(
            entity_id=guid,
            name=name,
            entity_class=EntityClass.SOFTWARE,
            outputs=[TypeSpec.of("location", "topological",
                                 quality={"accuracy": 2.0})],
            inputs=[TypeSpec("presence", "tag-read")],
            params={"subject": "entity ID whose location is tracked",
                    "initial_room": "optional seed location"},
            attributes={"binding": {"kind": "subject", "params": ["subject"]}},
        )
        super().__init__(profile, host_id, network)
        self.current_room: Optional[str] = None

    def on_param_set(self, name: str, value: Any) -> None:
        if name == "initial_room" and value:
            self.current_room = value
            self._publish_location()

    def on_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        if event.type_name != "presence":
            return
        subject = self.get_param("subject")
        if subject is None or event.value.get("entity") != subject:
            return
        self.current_room = event.value["to"]
        self._publish_location(upstream=event)

    def _publish_location(self, upstream: Optional[ContextEvent] = None) -> None:
        subject = self.get_param("subject")
        if subject is None or self.current_room is None:
            return
        attributes = {"derived_from": "door-sensors"}
        if upstream is not None:
            attributes["via_door"] = upstream.value.get("door")
        self.publish(
            TypeSpec("location", "topological", subject),
            self.current_room,
            attributes=attributes,
        )


class PathCE(ContextEntity):
    """Computes the route between two tracked entities.

    Figure 3's pathCE: "requires two locations as inputs" and produces path
    information. Whenever either endpoint's location changes, a new ``path``
    event is published — that is what keeps the pathApp's display current as
    John walks through doors.
    """

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 building: BuildingModel, name: str = "path-ce"):
        profile = Profile(
            entity_id=guid,
            name=name,
            entity_class=EntityClass.SOFTWARE,
            outputs=[TypeSpec("path", "rooms")],
            inputs=[TypeSpec("location", "topological"),
                    TypeSpec("location", "topological")],
            params={"from_subject": "path origin entity",
                    "to_subject": "path destination entity"},
            attributes={"binding": {
                "kind": "pair",
                "params": ["from_subject", "to_subject"],
                "separator": "->",
                "bind_inputs": True,
            }},
        )
        super().__init__(profile, host_id, network)
        self.building = building
        self._known_rooms: Dict[str, str] = {}
        self.paths_published = 0

    def on_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        if event.type_name != "location" or event.subject is None:
            return
        room = str(event.value).rsplit("/", 1)[-1]
        self._known_rooms[str(event.subject)] = room
        self._maybe_publish()

    def _maybe_publish(self) -> None:
        origin = self.get_param("from_subject")
        target = self.get_param("to_subject")
        if origin is None or target is None:
            return
        origin_room = self._known_rooms.get(origin)
        target_room = self._known_rooms.get(target)
        if origin_room is None or target_room is None:
            return
        try:
            rooms, cost = self.building.route(origin_room, target_room)
            polyline = self.building.route_polyline(origin_room, target_room)
        except LocationError:
            return
        self.paths_published += 1
        self.publish(
            TypeSpec("path", "rooms", f"{origin}->{target}"),
            {
                "rooms": rooms,
                "polyline": [p.as_tuple() for p in polyline],
                "cost": cost,
                "from": origin,
                "to": target,
            },
        )


class ConverterCE(ContextEntity):
    """A representation bridge spliced into configurations by the resolver.

    Applies a registered converter chain to each input event and republishes
    the result under the target spec. Quality attributes are scaled by the
    chain's combined fidelity, so downstream Which policies see that
    converted data is coarser than native data.
    """

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 input_spec: TypeSpec, output_spec: TypeSpec,
                 chain: Sequence[Converter], name: Optional[str] = None):
        if not chain:
            raise ValueError("converter chain must not be empty")
        profile = Profile(
            entity_id=guid,
            name=name or f"convert:{input_spec.representation}->{output_spec.representation}",
            entity_class=EntityClass.SOFTWARE,
            outputs=[output_spec],
            inputs=[input_spec],
        )
        super().__init__(profile, host_id, network)
        self.chain = list(chain)
        self.fidelity = 1.0
        for converter in self.chain:
            self.fidelity *= converter.fidelity
        self.conversions = 0
        self.failures = 0

    def on_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        value = event.value
        try:
            for converter in self.chain:
                value = converter.apply(value)
        except Exception:  # noqa: BLE001 - conversion of live data may fail
            self.failures += 1
            return
        self.conversions += 1
        output = self.profile.outputs[0]
        attributes = dict(event.attributes)
        if "accuracy" in attributes and isinstance(attributes["accuracy"], (int, float)):
            attributes["accuracy"] = attributes["accuracy"] / max(self.fidelity, 1e-9)
        attributes["converted_by"] = self.profile.name
        self.publish(
            TypeSpec(output.type_name, output.representation, event.subject),
            value,
            attributes=attributes,
        )


class OccupancyCE(ContextEntity):
    """Counts entities currently located in one place.

    Consumes per-entity ``location[topological]`` events; publishes an
    ``occupancy`` count for its ``place`` parameter whenever it changes.
    """

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 building: BuildingModel, name: str = "occupancy"):
        profile = Profile(
            entity_id=guid,
            name=name,
            entity_class=EntityClass.SOFTWARE,
            outputs=[TypeSpec("occupancy", "count")],
            inputs=[TypeSpec("location", "topological")],
            params={"place": "the place whose occupancy is counted"},
            attributes={"binding": {"kind": "subject", "params": ["place"]}},
        )
        super().__init__(profile, host_id, network)
        self.building = building
        self._room_of: Dict[str, str] = {}
        self._last_count: Optional[int] = None

    def on_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        if event.type_name != "location" or event.subject is None:
            return
        self._room_of[str(event.subject)] = str(event.value).rsplit("/", 1)[-1]
        self._maybe_publish()

    def current_count(self) -> Optional[int]:
        place = self.get_param("place")
        if place is None:
            return None
        hierarchy = self.building.hierarchy
        return sum(
            1 for room in self._room_of.values()
            if hierarchy.known(room) and hierarchy.contains(place, room)
        )

    def _maybe_publish(self) -> None:
        count = self.current_count()
        if count is None or count == self._last_count:
            return
        self._last_count = count
        self.publish(
            TypeSpec("occupancy", "count", self.get_param("place")),
            count,
        )


class WindowAggregatorCE(ContextEntity):
    """Sliding-window aggregation over a numeric event stream.

    A generic interpreter-style component (mean/min/max over the last N
    values) demonstrating that the composition model is not specific to
    location data.
    """

    OPERATIONS = {
        "mean": lambda values: sum(values) / len(values),
        "min": min,
        "max": max,
    }

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 input_spec: TypeSpec, operation: str = "mean",
                 window: int = 5, name: Optional[str] = None):
        if operation not in self.OPERATIONS:
            raise ValueError(f"unknown operation {operation!r}; "
                             f"choose from {sorted(self.OPERATIONS)}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        output_spec = TypeSpec(input_spec.type_name,
                               f"{operation}-{input_spec.representation}")
        profile = Profile(
            entity_id=guid,
            name=name or f"{operation}:{input_spec.type_name}",
            entity_class=EntityClass.SOFTWARE,
            outputs=[output_spec],
            inputs=[input_spec],
        )
        super().__init__(profile, host_id, network)
        self.operation = operation
        self.window = window
        self._values: List[float] = []

    def on_event(self, event: ContextEvent, sub_id: Optional[int]) -> None:
        if not isinstance(event.value, (int, float)):
            return
        self._values.append(float(event.value))
        if len(self._values) > self.window:
            self._values.pop(0)
        aggregate = self.OPERATIONS[self.operation](self._values)
        output = self.profile.outputs[0]
        self.publish(
            TypeSpec(output.type_name, output.representation, event.subject),
            round(aggregate, 4),
            attributes={"window": len(self._values)},
        )

"""Advertisements — the 'well known' service interfaces of Section 4.

"Advertisements take the form of 'well known' interfaces in order that CAAs
may transfer service specific data to CEs." An advertisement names the
service, lists its operations and carries selection attributes. A CAA that
resolved an advertisement request invokes operations with ``service-invoke``
messages handled by :meth:`repro.entities.entity.ContextEntity.handle_service`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class Advertisement:
    """A service offer attached to a Context Entity."""

    service_name: str
    operations: List[str] = field(default_factory=list)
    attributes: Dict[str, Any] = field(default_factory=dict)

    def supports(self, operation: str) -> bool:
        return operation in self.operations

    def to_wire(self) -> Dict[str, Any]:
        return {
            "service_name": self.service_name,
            "operations": list(self.operations),
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "Advertisement":
        return cls(
            service_name=data["service_name"],
            operations=list(data.get("operations", [])),
            attributes=dict(data.get("attributes", {})),
        )

    def __str__(self) -> str:
        return f"Advertisement({self.service_name}: {', '.join(self.operations)})"

"""Lane-affinity race lint for the partitioned substrate.

The equivalence proofs in ``tests/parallel/`` and ``tests/shard/`` assume
that no lane mutates state owned by another lane outside the sanctioned
staging APIs (per-lane outboxes, the lane stats buffer, control-lane
barriers). This family makes that ownership discipline checkable: it builds
a per-module call graph, classifies each function by the execution context
it can run under, and flags writes that escape a lane.

**Context classification.** Lane roots are ``_handle_*`` methods and
``on_message`` (the dispatch surface the transport invokes on a host's
lane), plus every callable handed to ``schedule``/``schedule_at``/
``call_soon``/``schedule_periodic`` or passed as an ``on_reply``/
``on_timeout`` callback — timers and RPC continuations fire on the lane
that owns the scheduling process. Lane-ness propagates along intra-module
calls (``self.method()``, module functions, ``Class()`` construction) but
stops at *barrier-only* functions — rebalance/quiesce/merge/flush and the
run-loop entry points, which by construction execute while every lane is
parked at a horizon barrier.

**Checks.** All three are errors and all are scoped to non-substrate
modules (the substrate itself — :data:`RACES_BOUNDARY_MODULES` — owns the
lane machinery and synchronises by design):

``races.module-state-write``
    A lane-reachable function writes module-level mutable state: rebinding
    a ``global``, mutating a module-level container in place, or drawing
    from a module-level ``itertools.count``. Two lanes running the same
    handler in one round race on the module object; per-instance or
    per-lane state is the fix.

``races.unstaged-mutation``
    A lane-reachable function mutates the shared ``Network``/``Scheduler``
    (or reaches into their privates) instead of going through staging:
    topology mutators like ``detach``/``fail_host``/``set_partitions``
    reorder events for every other lane mid-round and must run from the
    control lane or an ``on_quiesce`` barrier callback.

``races.cross-lane-send``
    An event is injected onto a lane that cannot be proven local: direct
    ``schedule_delivery`` calls or lane-internal access anywhere outside
    the substrate (subsuming the narrower ``determinism.partition-crossing``
    lint), scheduling on a *foreign* component's scheduler handle from lane
    context, or invoking another process's delivery entry points directly
    instead of sending through the transport.

``# sci: allow(races.<check>)`` on the flagged line (or a module-top
``# sci: allow-file(...)``) is the escape hatch, and suppressions stay
visible in the run summary. The dynamic half of this detector —
:mod:`repro.analysis.lanesan` — watches the same invariant at runtime.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import Finding, Severity
from repro.analysis.source import SourceFile

CHECK_MODULE_STATE = "races.module-state-write"
CHECK_UNSTAGED = "races.unstaged-mutation"
CHECK_CROSS_LANE = "races.cross-lane-send"

#: the substrate boundary plus its staging/bookkeeping helpers: these
#: modules implement lane ownership and synchronise explicitly, so every
#: races check is off inside them.
RACES_BOUNDARY_MODULES = frozenset({
    "repro.net.partition",
    "repro.net.transport",
    "repro.net.sim",
    "repro.net.stats",
    "repro.net.eventlog",
})

#: modules whose timer callbacks run on the *control* lane by design (the
#: chaos injector and the open-loop workload driver schedule through the
#: control context), so scheduling a callback there does not make it
#: lane-executed.
CONTROL_CONTEXT_MODULES = frozenset({
    "repro.faults.injector",
    "repro.apps.workload",
})

#: lane internals of the substrate (kept in sync with the determinism
#: family's partition-crossing lint, which this check subsumes)
_PARTITION_INTERNALS = frozenset({
    "_lanes", "_rank_lane", "_origin_seq", "_round_horizon",
    "_in_parallel_round",
})

#: scheduling entry points whose callable arguments become lane roots
_SCHEDULE_FUNCS = frozenset({
    "schedule", "schedule_at", "call_soon", "schedule_periodic",
})

#: keyword arguments that carry lane-executed continuations on any call
_CALLBACK_KEYWORDS = frozenset({"on_reply", "on_timeout", "fn", "callback"})

#: in-place mutators of the builtin containers (list/set/dict/deque)
_CONTAINER_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "remove",
    "discard", "pop", "popleft", "popitem", "clear", "add", "update",
    "setdefault", "sort", "reverse", "rotate",
})

#: Network/Scheduler methods that mutate shared topology or registries —
#: calling these from lane context reorders events for other lanes
_SHARED_MUTATORS = frozenset({
    "attach", "detach", "add_host", "ensure_host", "register_host",
    "fail_host", "restore_host", "set_partitions", "heal_partitions",
    "reset", "on_quiesce",
})

#: receiver names that denote the shared Network/Scheduler singletons
_SHARED_RECEIVERS = frozenset({"network", "scheduler", "_network", "_scheduler"})

#: variable names that conventionally hold a *process* (another host's
#: delivery endpoint) — calling ``.deliver`` on one bypasses the transport
_PROCESS_NAMES = frozenset({
    "process", "proc", "recipient", "target", "peer", "subscriber", "dest",
})

#: barrier-only functions: run while lanes are parked, so lane-ness does
#: not propagate through them
_BARRIER_NAME_PARTS = ("rebalance", "quiesce", "merge", "flush")
_BARRIER_NAMES = frozenset({
    "add_shard", "remove_shard", "close", "run", "run_for",
    "run_until", "run_until_idle",
})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: AST call values that produce a mutable container at module level
_MUTABLE_CALLS = frozenset({
    "list", "set", "dict", "deque", "defaultdict", "OrderedDict",
    "Counter", "count",
})


def _is_barrier_name(name: str) -> bool:
    lowered = name.lower()
    if lowered.lstrip("_") in _BARRIER_NAMES:
        return True
    return any(part in lowered for part in _BARRIER_NAME_PARTS)


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``self.network.scheduler`` -> ("self", "network", "scheduler")."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_shared_receiver(chain: Optional[Tuple[str, ...]]) -> bool:
    """Does an attribute chain name the shared Network/Scheduler?

    Matches ``network.x`` / ``scheduler.x`` / ``self.network.x`` /
    ``self._scheduler.x`` — the receiver is the component *holding* the
    attribute, i.e. the chain minus its final segment.
    """
    if chain is None or len(chain) < 2:
        return False
    receiver = chain[:-1]
    if receiver[-1] in _SHARED_RECEIVERS:
        return True
    return False


def _mutable_module_names(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable containers or counters."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                     ast.DictComp, ast.SetComp))
        if not mutable and isinstance(value, ast.Call):
            callee = value.func
            callee_name = None
            if isinstance(callee, ast.Name):
                callee_name = callee.id
            elif isinstance(callee, ast.Attribute):
                callee_name = callee.attr
            mutable = callee_name in _MUTABLE_CALLS
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


class _ModuleGraph:
    """Call graph and context classification for one module.

    Nodes are top-level functions (keyed by name) and methods (keyed
    ``Class.method``). Edges are the intra-module calls the AST can see:
    ``self.method()`` / ``cls.method()`` (matched by method name across the
    module's classes — an over-approximation that errs toward flagging),
    module-function calls, ``Class()`` construction reaching ``__init__``,
    and ``super().method()``.
    """

    def __init__(self, tree: ast.Module):
        self.functions: Dict[str, _FunctionNode] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        self.module_functions: Dict[str, str] = {}
        self.classes: Set[str] = set()
        self._index(tree)
        self.edges: Dict[str, Set[str]] = {
            key: self._edges_from(node) for key, node in self.functions.items()}

    def _index(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
                self.module_functions[node.name] = node.name
            elif isinstance(node, ast.ClassDef):
                self.classes.add(node.name)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        key = f"{node.name}.{item.name}"
                        self.functions[key] = item
                        self.methods_by_name.setdefault(item.name,
                                                        []).append(key)

    def _edges_from(self, node: _FunctionNode) -> Set[str]:
        targets: Set[str] = set()
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if isinstance(func, ast.Name):
                if func.id in self.module_functions:
                    targets.add(func.id)
                elif func.id in self.classes:
                    init = f"{func.id}.__init__"
                    if init in self.functions:
                        targets.add(init)
            elif isinstance(func, ast.Attribute):
                value = func.value
                is_self = isinstance(value, ast.Name) and value.id == "self"
                is_super = (isinstance(value, ast.Call)
                            and isinstance(value.func, ast.Name)
                            and value.func.id == "super")
                if is_self or is_super:
                    targets.update(self.methods_by_name.get(func.attr, ()))
        return targets

    # -- lane roots -----------------------------------------------------------

    def _callback_targets(self, node: ast.expr) -> Iterable[str]:
        """Function-graph keys a callback expression can invoke."""
        if isinstance(node, ast.Name):
            if node.id in self.module_functions:
                yield node.id
        elif isinstance(node, ast.Attribute):
            yield from self.methods_by_name.get(node.attr, ())
        elif isinstance(node, ast.Lambda):
            for call in ast.walk(node.body):
                if isinstance(call, ast.Call):
                    yield from self._callback_targets(call.func)

    def lane_roots(self, *, timers_are_lane: bool = True) -> Set[str]:
        roots: Set[str] = set()
        for key, node in self.functions.items():
            short = key.rsplit(".", 1)[-1]
            if short.startswith("_handle_") or short == "on_message":
                roots.add(key)
        if not timers_are_lane:
            return roots
        for node in self.functions.values():
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                callee = func.attr if isinstance(func, ast.Attribute) \
                    else func.id if isinstance(func, ast.Name) else None
                if callee in _SCHEDULE_FUNCS:
                    for arg in call.args:
                        roots.update(self._callback_targets(arg))
                for keyword in call.keywords:
                    if keyword.arg in _CALLBACK_KEYWORDS:
                        roots.update(self._callback_targets(keyword.value))
        return roots

    def lane_reachable(self, *, timers_are_lane: bool = True) -> Set[str]:
        """BFS from the lane roots, stopping at barrier-only functions."""
        reached: Set[str] = set()
        frontier = list(self.lane_roots(timers_are_lane=timers_are_lane))
        while frontier:
            key = frontier.pop()
            if key in reached:
                continue
            reached.add(key)
            for callee in self.edges.get(key, ()):
                short = callee.rsplit(".", 1)[-1]
                if _is_barrier_name(short):
                    continue
                if callee not in reached:
                    frontier.append(callee)
        return reached


class RaceChecker:
    """Per-file lane-ownership lint (see module docstring)."""

    def check(self, source: SourceFile) -> List[Finding]:
        if source.module in RACES_BOUNDARY_MODULES:
            return []
        graph = _ModuleGraph(source.tree)
        timers_are_lane = source.module not in CONTROL_CONTEXT_MODULES
        lane = graph.lane_reachable(timers_are_lane=timers_are_lane)
        mutables = _mutable_module_names(source.tree)

        findings: List[Finding] = []
        findings.extend(self._module_wide(source, graph))
        for key in sorted(lane):
            node = graph.functions[key]
            findings.extend(
                self._lane_function(source, key, node, mutables))
        return findings

    # -- context-insensitive substrate boundary -------------------------------

    def _module_wide(self, source: SourceFile,
                     graph: _ModuleGraph) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "schedule_delivery":
                findings.append(self._finding(
                    CHECK_CROSS_LANE, source, node,
                    "direct schedule_delivery bypasses the horizon "
                    "exchange; cross-partition events must go through "
                    "Network.send"))
            elif isinstance(node, ast.Attribute) \
                    and node.attr in _PARTITION_INTERNALS:
                findings.append(self._finding(
                    CHECK_CROSS_LANE, source, node,
                    f"access to lane internal {node.attr!r} outside the "
                    f"substrate boundary"))
        return findings

    # -- per-function checks --------------------------------------------------

    def _lane_function(self, source: SourceFile, key: str,
                       node: _FunctionNode,
                       mutables: Set[str]) -> List[Finding]:
        findings: List[Finding] = []
        globals_declared: Set[str] = set()
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Global):
                globals_declared.update(stmt.names)

        for child in ast.walk(node):
            findings.extend(self._check_module_state(
                source, key, child, mutables, globals_declared))
            findings.extend(self._check_unstaged(source, key, child))
            findings.extend(self._check_cross_lane(source, key, child))
        return findings

    def _check_module_state(self, source: SourceFile, key: str,
                            child: ast.AST, mutables: Set[str],
                            globals_declared: Set[str]) -> List[Finding]:
        findings: List[Finding] = []
        if isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = child.targets if isinstance(child, ast.Assign) \
                else [child.target]
            for target in targets:
                name = None
                via = None
                if isinstance(target, ast.Name) \
                        and target.id in globals_declared:
                    name, via = target.id, "rebinds global"
                elif isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in mutables:
                    name, via = target.value.id, "writes into module-level"
                if name is not None:
                    findings.append(self._finding(
                        CHECK_MODULE_STATE, source, child,
                        f"lane-reachable {key} {via} {name!r}; module "
                        f"state is shared across lanes"))
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in mutables:
                    findings.append(self._finding(
                        CHECK_MODULE_STATE, source, child,
                        f"lane-reachable {key} deletes from module-level "
                        f"{target.value.id!r}"))
        elif isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in mutables \
                    and func.attr in _CONTAINER_MUTATORS:
                findings.append(self._finding(
                    CHECK_MODULE_STATE, source, child,
                    f"lane-reachable {key} mutates module-level "
                    f"{func.value.id!r} via .{func.attr}()"))
            elif isinstance(func, ast.Name) and func.id == "next" \
                    and len(child.args) == 1 \
                    and isinstance(child.args[0], ast.Name) \
                    and child.args[0].id in mutables:
                findings.append(self._finding(
                    CHECK_MODULE_STATE, source, child,
                    f"lane-reachable {key} draws from module-level counter "
                    f"{child.args[0].id!r}; lanes race on the shared "
                    f"iterator"))
        return findings

    def _check_unstaged(self, source: SourceFile, key: str,
                        child: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        if isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = child.targets if isinstance(child, ast.Assign) \
                else [child.target]
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and _is_shared_receiver(_attr_chain(target)):
                    findings.append(self._finding(
                        CHECK_UNSTAGED, source, child,
                        f"lane-reachable {key} assigns "
                        f"{'.'.join(_attr_chain(target) or ())} on the "
                        f"shared component; stage through the control lane "
                        f"or an on_quiesce callback"))
        elif isinstance(child, ast.Call) \
                and isinstance(child.func, ast.Attribute):
            func = child.func
            chain = _attr_chain(func)
            if func.attr in _SHARED_MUTATORS \
                    and _is_shared_receiver(chain):
                findings.append(self._finding(
                    CHECK_UNSTAGED, source, child,
                    f"lane-reachable {key} calls .{func.attr}() on the "
                    f"shared {chain[-2] if chain else 'component'}; "
                    f"topology mutation must run at a barrier"))
        elif isinstance(child, ast.Attribute) \
                and child.attr.startswith("_") \
                and not child.attr.startswith("__") \
                and _is_shared_receiver(_attr_chain(child)):
            findings.append(self._finding(
                CHECK_UNSTAGED, source, child,
                f"lane-reachable {key} reaches into private "
                f"{child.attr!r} of the shared component"))
        return findings

    def _check_cross_lane(self, source: SourceFile, key: str,
                          child: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        if not (isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)):
            return findings
        func = child.func
        chain = _attr_chain(func)
        if func.attr in ("schedule", "schedule_at", "call_soon") \
                and chain is not None and len(chain) >= 3 \
                and chain[-2] == "scheduler" and chain[0] != "self":
            findings.append(self._finding(
                CHECK_CROSS_LANE, source, child,
                f"lane-reachable {key} schedules on "
                f"{'.'.join(chain[:-1])} — a foreign component's lane; "
                f"send a message instead"))
        elif func.attr == "on_message" \
                and chain is not None and chain[0] != "self" \
                and len(chain) == 2:
            findings.append(self._finding(
                CHECK_CROSS_LANE, source, child,
                f"lane-reachable {key} invokes {'.'.join(chain)}() "
                f"directly; deliveries must go through the transport"))
        elif func.attr == "deliver" \
                and isinstance(func.value, ast.Name) \
                and func.value.id in _PROCESS_NAMES:
            findings.append(self._finding(
                CHECK_CROSS_LANE, source, child,
                f"lane-reachable {key} delivers to {func.value.id!r} "
                f"directly; deliveries must go through the transport"))
        return findings

    def _finding(self, check: str, source: SourceFile,
                 node: ast.AST, message: str) -> Finding:
        return Finding(check=check, severity=Severity.ERROR,
                       path=source.path,
                       line=getattr(node, "lineno", 1),
                       message=message)


def check_sources(sources: Sequence[SourceFile]) -> List[Finding]:
    """Run the race checker over every source (runner entry point)."""
    checker = RaceChecker()
    findings: List[Finding] = []
    for source in sources:
        findings.extend(checker.check(source))
    return findings

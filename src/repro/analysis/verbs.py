"""Protocol-verb cross-checker: the wire protocol must stay closed.

Every verb a component sends must have a receiver that understands it, and
every handler must correspond to a verb somebody can actually send — a
handler nobody reaches is dead code, and a send nobody handles is a silent
black hole (the transport delivers it, ``on_message`` ignores it, and the
ack/retry layer burns retries until the request times out).

The checker builds a whole-tree model from three extraction passes:

*sends* — string-literal verbs in ``send(peer, "verb", ...)``,
``request(peer, "verb", ...)`` and ``Message(kind="verb")``. Verbs sent only
via ``reply(original, "verb", ...)`` are *reply verbs*: they are consumed by
RPC correlation on ``reply_to`` (:mod:`repro.net.rpc`), so they need no
kind-handler.

*handlers* — ``message.kind == "verb"`` / ``message.kind in (...)``
comparisons, string keys of handler dicts (an assignment to a name
containing ``handler``), and ``_handle_<verb>`` methods of classes that
dispatch dynamically via ``getattr(self, f"_handle_{{...}}")`` — including
classes that *inherit* such a dispatcher (resolved by base-class name
across the whole tree, transitively: a ``ShardedEventMediator(EventMediator)``
handler counts because ``EventMediator.on_message`` dispatches). Plain
``_handle_*`` helpers in other classes are ordinary methods, not handlers.

*declared endpoints* — a module may declare verbs it handles as external
API by naming them in double backticks in its module docstring (e.g. the
mediator declares ``subscribe``; tests and applications send it even though
no library component does). Declared verbs are exempt from the dead-handler
check and listed as "external api" in the generated ``PROTOCOL.md``.

Checks: ``verbs.unhandled-send``, ``verbs.dead-handler`` and (CLI-level)
``verbs.protocol-drift`` when the committed ``PROTOCOL.md`` no longer
matches the tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.source import SourceFile

CHECK_UNHANDLED_SEND = "verbs.unhandled-send"
CHECK_DEAD_HANDLER = "verbs.dead-handler"
CHECK_PROTOCOL_DRIFT = "verbs.protocol-drift"

#: names a message variable is allowed to have in ``<name>.kind == ...``
_MESSAGE_NAMES = frozenset({"message", "msg"})

#: verbs are kebab-case words; filters docstring backtick tokens
_VERB_RE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")

_BACKTICK_RE = re.compile(r"``([^`]+)``")


@dataclass(frozen=True)
class Site:
    """One place a verb is sent, handled or declared."""

    path: str
    line: int
    module: str


@dataclass
class VerbModel:
    """Everything the tree says about the wire protocol."""

    sends: Dict[str, List[Site]] = field(default_factory=dict)
    replies: Dict[str, List[Site]] = field(default_factory=dict)
    handlers: Dict[str, List[Site]] = field(default_factory=dict)
    declared: Dict[str, List[Site]] = field(default_factory=dict)

    def verbs(self) -> List[str]:
        """Verbs that exist on the wire: sent, replied or handled somewhere.

        A docstring declaration alone creates no verb — module docstrings
        backtick plenty of ordinary words; declarations only *classify*
        verbs that some component actually handles."""
        names: Set[str] = set()
        for table in (self.sends, self.replies, self.handlers):
            names.update(table)
        return sorted(names)

    def role(self, verb: str) -> str:
        sent = verb in self.sends
        replied = verb in self.replies
        if sent and replied:
            return "request+reply"
        if replied:
            return "reply"
        if sent:
            return "request"
        if verb in self.declared:
            return "external api"
        return "unreachable"


def _add(table: Dict[str, List[Site]], verb: str, site: Site) -> None:
    table.setdefault(verb, []).append(site)


def _literal_verb(node: ast.Call) -> Tuple[str, int]:
    """(verb, line) for a send/reply/request call with a literal kind."""
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) and \
            isinstance(node.args[1].value, str):
        return node.args[1].value, node.args[1].lineno
    for kw in node.keywords:
        if kw.arg == "kind" and isinstance(kw.value, ast.Constant) and \
                isinstance(kw.value.value, str):
            return kw.value.value, kw.value.lineno
    return "", 0


def _message_kind_literal(node: ast.Call) -> Tuple[str, int]:
    for kw in node.keywords:
        if kw.arg == "kind" and isinstance(kw.value, ast.Constant) and \
                isinstance(kw.value.value, str):
            return kw.value.value, kw.value.lineno
    return "", 0


def _uses_dynamic_dispatch(klass: ast.ClassDef) -> bool:
    """Does the class getattr-dispatch onto ``_handle_<kind>`` methods?"""
    for node in ast.walk(klass):
        if not (isinstance(node, ast.Call) and
                isinstance(node.func, ast.Name) and
                node.func.id == "getattr" and node.args):
            continue
        for arg in node.args:
            if isinstance(arg, ast.JoinedStr):
                head = arg.values[0] if arg.values else None
                if isinstance(head, ast.Constant) and \
                        str(head.value).startswith("_handle_"):
                    return True
    return False


def _base_names(klass: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in klass.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _dispatching_classes(sources: Iterable[SourceFile]) -> Set[str]:
    """Names of classes that dispatch onto ``_handle_*``, directly or by
    inheriting (transitively, resolved by base-class *name*) from a class
    in the tree that does."""
    dispatching: Set[str] = set()
    bases: Dict[str, Set[str]] = {}
    for source in sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                bases.setdefault(node.name, set()).update(_base_names(node))
                if _uses_dynamic_dispatch(node):
                    dispatching.add(node.name)
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in dispatching and parents & dispatching:
                dispatching.add(name)
                changed = True
    return dispatching


def _extract_from_source(source: SourceFile, model: VerbModel,
                         dispatching: Set[str]) -> None:
    module = source.module

    def site(line: int) -> Site:
        return Site(path=source.path, line=line, module=module)

    # docstring-declared external endpoints
    for token in _BACKTICK_RE.findall(source.docstring):
        if _VERB_RE.match(token):
            _add(model.declared, token, site(1))

    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("send", "request", "reply"):
                verb, line = _literal_verb(node)
                if verb:
                    table = model.replies if node.func.attr == "reply" \
                        else model.sends
                    _add(table, verb, site(line))
            elif isinstance(node.func, ast.Name) and \
                    node.func.id == "Message":
                verb, line = _message_kind_literal(node)
                if verb:
                    _add(model.sends, verb, site(line))
        elif isinstance(node, ast.Compare):
            _extract_compare(node, model, site)
        elif isinstance(node, ast.Assign):
            _extract_handler_dict(node, model, site)
        elif isinstance(node, ast.ClassDef) and node.name in dispatching:
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and item.name.startswith("_handle_"):
                    verb = item.name[len("_handle_"):].replace("_", "-")
                    _add(model.handlers, verb, site(item.lineno))


def _extract_compare(node: ast.Compare, model: VerbModel, site) -> None:
    left = node.left
    if not (isinstance(left, ast.Attribute) and left.attr == "kind" and
            isinstance(left.value, ast.Name) and
            left.value.id in _MESSAGE_NAMES):
        return
    for op, comparator in zip(node.ops, node.comparators):
        if not isinstance(op, (ast.Eq, ast.In)):
            continue
        if isinstance(comparator, ast.Constant) and \
                isinstance(comparator.value, str):
            _add(model.handlers, comparator.value, site(comparator.lineno))
        elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
            for element in comparator.elts:
                if isinstance(element, ast.Constant) and \
                        isinstance(element.value, str):
                    _add(model.handlers, element.value, site(element.lineno))


def _extract_handler_dict(node: ast.Assign, model: VerbModel, site) -> None:
    if not isinstance(node.value, ast.Dict):
        return
    named_handler = False
    for target in node.targets:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name and "handler" in name.lower():
            named_handler = True
    if not named_handler:
        return
    for key in node.value.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            _add(model.handlers, key.value, site(key.lineno))


def build_model(sources: Iterable[SourceFile]) -> VerbModel:
    sources = list(sources)
    model = VerbModel()
    dispatching = _dispatching_classes(sources)
    for source in sources:
        _extract_from_source(source, model, dispatching)
    return model


class VerbChecker:
    """Cross-file checker: needs the whole model, not one source at a time."""

    def check(self, sources: List[SourceFile],
              model: Optional[VerbModel] = None) -> List[Finding]:
        if model is None:
            model = build_model(sources)
        findings: List[Finding] = []
        for verb, sites in sorted(model.sends.items()):
            if verb in model.handlers or verb in model.declared:
                continue
            for s in sites:
                findings.append(Finding(
                    check=CHECK_UNHANDLED_SEND, severity=Severity.ERROR,
                    path=s.path, line=s.line,
                    message=f'verb "{verb}" is sent but no component handles '
                            f'it: add a handler or declare it in a module '
                            f'docstring as external API'))
        consumed = set(model.sends) | set(model.replies) | set(model.declared)
        for verb, sites in sorted(model.handlers.items()):
            if verb in consumed:
                continue
            for s in sites:
                findings.append(Finding(
                    check=CHECK_DEAD_HANDLER, severity=Severity.ERROR,
                    path=s.path, line=s.line,
                    message=f'handler for verb "{verb}" but nothing in the '
                            f'tree sends it: delete the branch or declare '
                            f'the verb as external API in the module '
                            f'docstring'))
        return findings


# -- PROTOCOL.md --------------------------------------------------------------

PROTOCOL_HEADER = """# Wire protocol

Generated by `python -m repro.analysis --write-protocol` — do not edit by
hand; CI checks this file against the tree (`--check-protocol`).

Roles: a **request** verb needs a `kind`-handler at the receiver; a
**reply** verb is consumed by RPC correlation (`reply_to`) and needs none;
an **external api** verb is declared in its module's docstring and is sent
by applications or tests rather than library components.
"""


def _modules(sites: List[Site]) -> str:
    return ", ".join(sorted({s.module for s in sites})) or "—"


def render_protocol(model: VerbModel) -> str:
    lines = [PROTOCOL_HEADER,
             "| verb | role | senders | handlers |",
             "| --- | --- | --- | --- |"]
    for verb in model.verbs():
        senders = model.sends.get(verb, []) + model.replies.get(verb, [])
        handlers = model.handlers.get(verb, [])
        lines.append(f"| `{verb}` | {model.role(verb)} | "
                     f"{_modules(senders)} | {_modules(handlers)} |")
    return "\n".join(lines) + "\n"


def protocol_drift(model: VerbModel, existing: str) -> bool:
    """True when the committed PROTOCOL.md no longer matches the tree."""
    return render_protocol(model) != existing

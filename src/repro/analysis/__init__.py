"""Static analysis for the reproduction's simulation invariants.

The simulation's claims are only as strong as three invariants nothing at
runtime can check: all nondeterminism flows through seeded RNG and
simulated time (:mod:`repro.analysis.determinism`), every protocol verb
sent has a handler and every handler a sender
(:mod:`repro.analysis.verbs`), and every metric series is declared in the
catalog (:mod:`repro.analysis.catalog_lint`). ``python -m repro.analysis
src/`` runs all three over the tree and is wired into the smoke gate.

Everything is AST-level — the analysed code is never imported or executed.
Findings can be suppressed per line with ``# sci: allow(<check>)``
(:mod:`repro.analysis.pragmas`).
"""

from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.runner import AnalysisReport, run_analysis

__all__ = [
    "AnalysisReport",
    "Finding",
    "Severity",
    "run_analysis",
    "sort_findings",
]

"""Finding model shared by every checker in :mod:`repro.analysis`.

A finding is one violation of a simulation invariant, anchored to a
``path:line`` location so editors and CI logs can jump straight to it.
Checks are named ``<family>.<check>`` (``determinism.wall-clock``,
``verbs.dead-handler``, ``catalog.undeclared``...) and the same ids are what
the ``# sci: allow(<check>)`` pragma suppresses — either the exact id or a
whole family (``# sci: allow(determinism)``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List


class Severity(enum.Enum):
    """How bad a finding is; every current check is an error (CI gates on
    any unsuppressed finding), warnings exist for advisory future checks."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One invariant violation at one source location."""

    check: str
    severity: Severity
    path: str
    line: int
    message: str

    @property
    def family(self) -> str:
        return self.check.split(".", 1)[0]

    def format(self) -> str:
        return (f"{self.path}:{self.line}: "
                f"{self.severity.value}[{self.check}] {self.message}")

    def to_dict(self, suppressed: bool = False) -> dict:
        """JSON shape consumed by downstream tooling — stable schema:
        check, severity, path, line, message, suppressed."""
        return {
            "check": self.check,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": suppressed,
        }


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable presentation order: by file, then line, then check id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.check, f.message))

"""Determinism lint: every run of the simulation must replay bit-for-bit.

The reproduction's claims (overlay routing, subscription dispatch, the
reliability layer) are all stated as "identical under replay". That only
holds if nothing reads the host's clock or global RNG, and nothing lets
hash-ordering decide the order messages hit the wire. Three checks:

``determinism.wall-clock``
    Calls into real time — ``time.time``/``monotonic``/``perf_counter``
    (and ``_ns`` variants), ``datetime.now``/``utcnow``/``today``. Simulated
    components must use ``scheduler.now``. The real-time *instrumentation*
    modules (:mod:`repro.net.sim` self-profiles its hot loop,
    :mod:`repro.obs.profiling` measures host time by design) are allowlisted
    wholesale via :data:`WALL_CLOCK_ALLOWED_MODULES`.

``determinism.unseeded-random``
    Module-level ``random.*`` calls (the process-global, unseeded stream)
    and ``random.Random()`` constructed without a seed. Every RNG in the
    simulation must be a ``random.Random(seed)`` instance whose seed derives
    from configuration, so two runs draw identical streams.

``determinism.partition-crossing``
    The partitioned substrate (:mod:`repro.net.partition`) keeps runs
    bit-identical across partition counts only because every cross-
    partition event flows through the transport's horizon exchange. Code
    outside the substrate boundary that calls ``schedule_delivery``
    directly, or reaches into lane internals (``_lanes``,
    ``_rank_lane``, ...), can inject events whose order depends on the
    partition layout — so both are flagged everywhere except
    :data:`PARTITION_BOUNDARY_MODULES`.

``determinism.set-iteration`` / ``determinism.popitem``
    Ordering hazards on message paths: iterating a ``set`` (literal,
    ``set(...)``/``frozenset(...)`` call, set comprehension, or a local name
    only ever assigned from those) or calling ``dict.popitem()`` without an
    explicit ``last=`` inside a function that constructs or sends
    :class:`~repro.net.message.Message`s. Set iteration order depends on
    hashing; if it decides send order, replay and the lossy/lossless
    equivalence properties break. Membership tests and ``sorted(...)`` over
    sets are fine — only raw iteration is flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.source import SourceFile

CHECK_WALL_CLOCK = "determinism.wall-clock"
CHECK_UNSEEDED_RANDOM = "determinism.unseeded-random"
CHECK_SET_ITERATION = "determinism.set-iteration"
CHECK_POPITEM = "determinism.popitem"
CHECK_PARTITION_CROSSING = "determinism.partition-crossing"

#: modules that measure *host* time on purpose (instrumentation, not logic).
#: repro.net.partition self-profiles its lane loops exactly like sim does.
WALL_CLOCK_ALLOWED_MODULES = frozenset({
    "repro.net.sim",
    "repro.net.partition",
    "repro.obs.profiling",
})

#: the substrate boundary: only these modules may schedule deliveries or
#: touch lane internals — everything else must send through the transport
PARTITION_BOUNDARY_MODULES = frozenset({
    "repro.net.partition",
    "repro.net.transport",
})

#: attribute names that are lane/partition internals of the substrate
_PARTITION_INTERNALS = frozenset({
    "_lanes", "_rank_lane", "_origin_seq", "_round_horizon",
    "_in_parallel_round",
})

#: functions of the ``time`` module that read the host clock
TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "clock_gettime", "clock_gettime_ns",
})

#: classmethods of ``datetime.datetime`` / ``datetime.date`` reading the clock
DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: module-level functions of ``random`` drawing from the global stream
RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits", "seed",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
})

#: attribute calls that put a function on a message path
_MESSAGE_CALL_ATTRS = frozenset({"send", "reply", "request"})


class _ImportMap:
    """Which local names refer to the ``time``/``random``/``datetime``
    modules or to the ``datetime.datetime``/``date`` classes or to
    individually imported clock/random functions."""

    def __init__(self, tree: ast.Module):
        self.module_alias: Dict[str, str] = {}   # local name -> module
        self.class_alias: Dict[str, str] = {}    # local name -> datetime class
        self.func_alias: Dict[str, str] = {}     # local name -> "time.perf_counter"...
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("time", "random", "datetime"):
                        self.module_alias[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in TIME_FUNCS:
                            self.func_alias[alias.asname or alias.name] = \
                                f"time.{alias.name}"
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name in RANDOM_FUNCS:
                            self.func_alias[alias.asname or alias.name] = \
                                f"random.{alias.name}"
                        elif alias.name in ("Random", "SystemRandom"):
                            self.class_alias[alias.asname or alias.name] = \
                                f"random.{alias.name}"
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self.class_alias[alias.asname or alias.name] = \
                                f"datetime.{alias.name}"


def _call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target when statically resolvable."""
    func = node.func
    parts: List[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _touches_messages(func: ast.AST) -> bool:
    """Does this function's subtree construct or send a Message?"""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MESSAGE_CALL_ATTRS:
            return True
        if isinstance(node.func, ast.Name) and node.func.id == "Message":
            return True
    return False


def _set_only_names(func: ast.AST) -> Set[str]:
    """Local names whose every assignment in the function is a set expression.

    Conservative single-pass dataflow: a name assigned anything non-set even
    once is dropped, so ``x = set(...); x = sorted(x)`` never flags."""
    set_names: Set[str] = set()
    other_names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = None  # |= on a set stays a set, but stay conservative
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if value is not None and _is_set_expr(value):
                set_names.add(target.id)
            else:
                other_names.add(target.id)
    return set_names - other_names


class DeterminismChecker:
    """AST checker for the four determinism invariants."""

    def check(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        imports = _ImportMap(source.tree)
        if source.module not in WALL_CLOCK_ALLOWED_MODULES:
            findings.extend(self._clock_and_random(source, imports))
        else:
            findings.extend(self._random_only(source, imports))
        findings.extend(self._ordering_hazards(source))
        if source.module not in PARTITION_BOUNDARY_MODULES:
            findings.extend(self._partition_crossings(source))
        return findings

    # -- clocks and RNGs ------------------------------------------------------

    def _clock_and_random(self, source: SourceFile,
                          imports: _ImportMap) -> List[Finding]:
        return self._scan_calls(source, imports, include_clock=True)

    def _random_only(self, source: SourceFile,
                     imports: _ImportMap) -> List[Finding]:
        return self._scan_calls(source, imports, include_clock=False)

    def _scan_calls(self, source: SourceFile, imports: _ImportMap,
                    include_clock: bool) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve_target(node, imports)
            if target is None:
                continue
            module, func = target
            if module == "time" and func in TIME_FUNCS and include_clock:
                findings.append(self._finding(
                    CHECK_WALL_CLOCK, source, node,
                    f"wall-clock read time.{func}(); simulated code must use "
                    f"scheduler.now"))
            elif module == "datetime" and func in DATETIME_FUNCS and include_clock:
                findings.append(self._finding(
                    CHECK_WALL_CLOCK, source, node,
                    f"wall-clock read datetime {func}(); simulated code must "
                    f"use scheduler.now"))
            elif module == "random" and func in RANDOM_FUNCS:
                findings.append(self._finding(
                    CHECK_UNSEEDED_RANDOM, source, node,
                    f"module-level random.{func}() draws from the process-"
                    f"global stream; use a seeded random.Random instance"))
            elif module == "random" and func == "SystemRandom":
                findings.append(self._finding(
                    CHECK_UNSEEDED_RANDOM, source, node,
                    "random.SystemRandom is entropy-backed and can never "
                    "replay; use a seeded random.Random instance"))
            elif module == "random" and func == "Random" and not (
                    node.args or node.keywords):
                findings.append(self._finding(
                    CHECK_UNSEEDED_RANDOM, source, node,
                    "random.Random() without a seed falls back to OS "
                    "entropy; pass a seed derived from configuration"))
        return findings

    @staticmethod
    def _resolve_target(node: ast.Call,
                        imports: _ImportMap) -> Optional[tuple]:
        """(module, func) for clock/random call shapes, else None."""
        func = node.func
        if isinstance(func, ast.Name):
            dotted = imports.func_alias.get(func.id)
            if dotted:
                module, name = dotted.split(".", 1)
                return module, name
            klass = imports.class_alias.get(func.id)
            if klass:  # Random()/SystemRandom() called via from-import
                module, name = klass.split(".", 1)
                return module, name
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name):
            module = imports.module_alias.get(base.id)
            if module:
                return module, func.attr
            klass = imports.class_alias.get(base.id)
            if klass:  # datetime.now() via `from datetime import datetime`
                return klass.split(".", 1)[0], func.attr
            return None
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            # datetime.datetime.now() via `import datetime`
            module = imports.module_alias.get(base.value.id)
            if module == "datetime" and base.attr in ("datetime", "date"):
                return "datetime", func.attr
            if module == "random" and base.attr in ("Random", "SystemRandom"):
                return "random", base.attr if base.attr == "SystemRandom" else None
        return None

    # -- partition boundary ---------------------------------------------------

    def _partition_crossings(self, source: SourceFile) -> List[Finding]:
        """Flag direct substrate access outside the boundary modules."""
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "schedule_delivery":
                findings.append(self._finding(
                    CHECK_PARTITION_CROSSING, source, node,
                    "schedule_delivery() called outside the transport: "
                    "cross-partition events must flow through Network.send "
                    "so the horizon exchange orders them partition-"
                    "invariantly"))
            elif isinstance(node, ast.Attribute) and \
                    node.attr in _PARTITION_INTERNALS:
                findings.append(self._finding(
                    CHECK_PARTITION_CROSSING, source, node,
                    f"access to partition internal {node.attr!r} outside "
                    f"the substrate boundary: injecting or reordering lane "
                    f"events bypasses the horizon exchange"))
        return findings

    # -- ordering hazards -----------------------------------------------------

    def _ordering_hazards(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _touches_messages(node):
                continue
            set_names = _set_only_names(node)
            for inner in ast.walk(node):
                if isinstance(inner, (ast.For, ast.AsyncFor)):
                    iters = [inner.iter]
                elif isinstance(inner, (ast.ListComp, ast.SetComp,
                                        ast.GeneratorExp, ast.DictComp)):
                    iters = [gen.iter for gen in inner.generators]
                elif isinstance(inner, ast.Call) and \
                        isinstance(inner.func, ast.Attribute) and \
                        inner.func.attr == "popitem" and \
                        not any(kw.arg == "last" for kw in inner.keywords):
                    findings.append(self._finding(
                        CHECK_POPITEM, source, inner,
                        f"popitem() on a message path in {node.name}(): pop "
                        f"order must be explicit — use popitem(last=...) on "
                        f"an OrderedDict or pop a chosen key"))
                    continue
                else:
                    continue
                for it in iters:
                    hazard = _is_set_expr(it) or (
                        isinstance(it, ast.Name) and it.id in set_names)
                    if hazard:
                        what = it.id if isinstance(it, ast.Name) else "a set"
                        findings.append(self._finding(
                            CHECK_SET_ITERATION, source, it,
                            f"iteration over set {what!r} in {node.name}(), "
                            f"which sends/constructs Messages: hash order "
                            f"decides wire order — iterate a sorted or "
                            f"insertion-ordered sequence instead"))
        return findings

    @staticmethod
    def _finding(check: str, source: SourceFile, node: ast.AST,
                 message: str) -> Finding:
        return Finding(check=check, severity=Severity.ERROR,
                       path=source.path, line=getattr(node, "lineno", 0),
                       message=message)

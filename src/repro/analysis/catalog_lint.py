"""Metrics-catalog lint: every emitted series is declared, once, correctly.

:mod:`repro.obs.metrics` get-or-creates series at call sites, which is
convenient and dangerous: a typo'd name silently forks a new series, a
renamed counter leaves dashboards reading a dead one, and nothing records
what a metric *means*. The catalog (:mod:`repro.obs.catalog`) is the single
source of truth; this checker cross-references it against every
``metrics.counter/gauge/histogram(...)`` call site.

Checks:

``catalog.undeclared``   call site registers a name missing from the catalog
``catalog.kind-mismatch``  call method differs from the declared kind
``catalog.label-mismatch`` call labels differ from the declared label set
``catalog.naming``       name breaks ``<layer>.<subsystem>.<event>`` — three
                         or more dot segments of ``lower_snake`` words
``catalog.orphaned``     declared but never registered anywhere in the scan
                         (skipped for partial scans via ``check_orphans``)
``catalog.duplicate``    the catalog declares the same name twice

Call sites are recognised structurally: a ``.counter/.gauge/.histogram``
attribute call whose receiver's last name contains ``metric`` or is
``registry``, with the metric name as the first argument — a string
literal or a module-level string constant (the :mod:`repro.net.stats`
pattern). Names built from arbitrary expressions are invisible to the
checker and should not be introduced.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.source import SourceFile

CHECK_UNDECLARED = "catalog.undeclared"
CHECK_KIND_MISMATCH = "catalog.kind-mismatch"
CHECK_LABEL_MISMATCH = "catalog.label-mismatch"
CHECK_NAMING = "catalog.naming"
CHECK_ORPHANED = "catalog.orphaned"
CHECK_DUPLICATE = "catalog.duplicate"

METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})

#: <layer>.<subsystem>.<event>: at least three lower_snake dot segments
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){2,}$")

#: the default module holding the catalog declarations
CATALOG_MODULE = "repro.obs.catalog"


@dataclass(frozen=True)
class Declaration:
    name: str
    kind: str
    labels: Tuple[str, ...]
    path: str
    line: int


@dataclass(frozen=True)
class CallSite:
    name: str
    kind: str
    labels: Optional[Tuple[str, ...]]  # None = not statically resolvable
    path: str
    line: int


def _string_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        values = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and \
                    isinstance(element.value, str):
                values.append(element.value)
            else:
                return None
        return tuple(values)
    return None


def extract_declarations(
        catalog: SourceFile) -> Tuple[Dict[str, Declaration], List[Finding]]:
    """AST-scan ``_declare(...)`` calls; duplicates become findings."""
    declarations: Dict[str, Declaration] = {}
    findings: List[Finding] = []
    for node in ast.walk(catalog.tree):
        if not (isinstance(node, ast.Call) and
                isinstance(node.func, ast.Name) and
                node.func.id == "_declare"):
            continue
        if len(node.args) < 2 or not all(
                isinstance(a, ast.Constant) and isinstance(a.value, str)
                for a in node.args[:2]):
            continue
        name = node.args[0].value
        kind = node.args[1].value
        labels: Tuple[str, ...] = ()
        for kw in node.keywords:
            if kw.arg == "labels":
                labels = _string_tuple(kw.value) or ()
        if len(node.args) >= 4:
            labels = _string_tuple(node.args[3]) or labels
        if name in declarations:
            findings.append(Finding(
                check=CHECK_DUPLICATE, severity=Severity.ERROR,
                path=catalog.path, line=node.lineno,
                message=f'metric "{name}" already declared at '
                        f'{catalog.path}:{declarations[name].line}'))
            continue
        declarations[name] = Declaration(
            name=name, kind=kind, labels=labels,
            path=catalog.path, line=node.lineno)
    return declarations, findings


def _module_constants(source: SourceFile) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` string constants."""
    constants: Dict[str, str] = {}
    for node in source.tree.body:
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = node.value.value
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            constants[node.target.id] = node.value.value
    return constants


def _receiver_is_metrics(func: ast.Attribute) -> bool:
    base = func.value
    if isinstance(base, ast.Name):
        last = base.id
    elif isinstance(base, ast.Attribute):
        last = base.attr
    else:
        return False
    last = last.lower().lstrip("_")
    return "metric" in last or last == "registry"


def extract_call_sites(source: SourceFile) -> List[CallSite]:
    constants = _module_constants(source)
    sites: List[CallSite] = []
    for node in ast.walk(source.tree):
        if not (isinstance(node, ast.Call) and
                isinstance(node.func, ast.Attribute) and
                node.func.attr in METRIC_METHODS and
                _receiver_is_metrics(node.func)):
            continue
        if not node.args:
            continue
        head = node.args[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            name = head.value
        elif isinstance(head, ast.Name) and head.id in constants:
            name = constants[head.id]
        else:
            continue  # dynamically built name: invisible, see module docstring
        labels: Optional[Tuple[str, ...]] = ()
        for kw in node.keywords:
            if kw.arg == "labels":
                labels = _string_tuple(kw.value)
        sites.append(CallSite(name=name, kind=node.func.attr, labels=labels,
                              path=source.path, line=node.lineno))
    return sites


class CatalogChecker:
    """Cross-checks call sites against the declared catalog.

    ``catalog_module`` names the module whose ``_declare`` calls are the
    catalog (tests point it at fixture catalogs); ``check_orphans`` is
    disabled for partial scans where absence proves nothing.
    """

    def __init__(self, catalog_module: str = CATALOG_MODULE,
                 check_orphans: bool = True):
        self.catalog_module = catalog_module
        self.check_orphans = check_orphans

    def check(self, sources: List[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        catalog = next((s for s in sources
                        if s.module == self.catalog_module), None)
        declarations: Dict[str, Declaration] = {}
        if catalog is not None:
            declarations, findings = extract_declarations(catalog)
            for decl in declarations.values():
                if not NAME_RE.match(decl.name):
                    findings.append(Finding(
                        check=CHECK_NAMING, severity=Severity.ERROR,
                        path=decl.path, line=decl.line,
                        message=f'metric "{decl.name}" breaks the '
                                f'<layer>.<subsystem>.<event> convention '
                                f'(need >= 3 lower_snake dot segments)'))
        seen: set = set()
        for source in sources:
            if source.module == self.catalog_module:
                continue
            for site in extract_call_sites(source):
                seen.add(site.name)
                findings.extend(self._check_site(site, declarations, catalog))
        if self.check_orphans and catalog is not None:
            for decl in declarations.values():
                if decl.name not in seen:
                    findings.append(Finding(
                        check=CHECK_ORPHANED, severity=Severity.ERROR,
                        path=decl.path, line=decl.line,
                        message=f'metric "{decl.name}" is declared but no '
                                f'call site registers it: delete the '
                                f'declaration or wire up the emitter'))
        return findings

    def _check_site(self, site: CallSite,
                    declarations: Dict[str, Declaration],
                    catalog: Optional[SourceFile]) -> List[Finding]:
        findings: List[Finding] = []
        if not NAME_RE.match(site.name):
            findings.append(Finding(
                check=CHECK_NAMING, severity=Severity.ERROR,
                path=site.path, line=site.line,
                message=f'metric "{site.name}" breaks the '
                        f'<layer>.<subsystem>.<event> convention '
                        f'(need >= 3 lower_snake dot segments)'))
        if catalog is None:
            return findings  # no catalog in scan: only naming is checkable
        decl = declarations.get(site.name)
        if decl is None:
            findings.append(Finding(
                check=CHECK_UNDECLARED, severity=Severity.ERROR,
                path=site.path, line=site.line,
                message=f'metric "{site.name}" is not declared in '
                        f'{self.catalog_module}'))
            return findings
        if site.kind != decl.kind:
            findings.append(Finding(
                check=CHECK_KIND_MISMATCH, severity=Severity.ERROR,
                path=site.path, line=site.line,
                message=f'metric "{site.name}" registered as {site.kind} '
                        f'but declared as {decl.kind} at '
                        f'{decl.path}:{decl.line}'))
        if site.labels is not None and site.labels != decl.labels:
            findings.append(Finding(
                check=CHECK_LABEL_MISMATCH, severity=Severity.ERROR,
                path=site.path, line=site.line,
                message=f'metric "{site.name}" registered with labels '
                        f'{site.labels!r} but declared with '
                        f'{decl.labels!r} at {decl.path}:{decl.line}'))
        return findings

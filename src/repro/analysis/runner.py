"""Orchestrates the checker families over a loaded source tree.

The runner owns the two concerns the checkers deliberately don't:

* **pragma suppression** — checkers report everything; the runner splits
  findings into active and suppressed using each file's ``# sci: allow``
  lines, so suppressions are visible in the report instead of silently
  swallowed inside a checker.
* **whole-tree checks** — the verb and catalog families need the complete
  model (a send in ``entities`` is handled in ``events``); the determinism
  family is per-file. The runner feeds each the shape it wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.catalog_lint import CatalogChecker
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.races import RaceChecker
from repro.analysis.source import SourceFile, load_sources
from repro.analysis.verbs import VerbChecker, VerbModel, build_model

CHECK_PARSE = "analysis.parse-error"

FAMILIES = ("determinism", "verbs", "catalog", "races")


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    sources: List[SourceFile] = field(default_factory=list)
    active: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    verb_model: Optional[VerbModel] = None

    @property
    def ok(self) -> bool:
        return not self.active

    def counts_by_check(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.check] = counts.get(finding.check, 0) + 1
        return counts


def run_analysis(paths: Sequence[str],
                 select: Optional[Iterable[str]] = None,
                 check_orphans: bool = True) -> AnalysisReport:
    """Analyse every python file under ``paths``.

    ``select`` restricts to the named families (default: all three);
    ``check_orphans`` should be False for partial scans, where a metric
    having no call site in view proves nothing.
    """
    families = tuple(select) if select else FAMILIES
    sources, errors = load_sources(paths)
    report = AnalysisReport(sources=sources)

    findings: List[Finding] = [
        Finding(check=CHECK_PARSE, severity=Severity.ERROR,
                path=path, line=line, message=message)
        for path, line, message in errors]

    if "determinism" in families:
        checker = DeterminismChecker()
        for source in sources:
            findings.extend(checker.check(source))
    if "verbs" in families:
        report.verb_model = build_model(sources)
        findings.extend(VerbChecker().check(sources,
                                            model=report.verb_model))
    if "catalog" in families:
        findings.extend(
            CatalogChecker(check_orphans=check_orphans).check(sources))
    if "races" in families:
        race_checker = RaceChecker()
        for source in sources:
            findings.extend(race_checker.check(source))

    by_path = {source.path: source for source in sources}
    for finding in sort_findings(findings):
        source = by_path.get(finding.path)
        if source is not None and source.allowed_at(finding.line,
                                                    finding.check):
            report.suppressed.append(finding)
        else:
            report.active.append(finding)
    return report

"""LaneSan: runtime lane-ownership sanitizer for the partitioned substrate.

The dynamic half of the race detector (the static half is
:mod:`repro.analysis.races`). The partitioned scheduler's equivalence
guarantee rests on lane ownership: within one horizon round, a lane may
touch only state it owns — everything shared crosses rounds through the
outbox exchange, the stats staging buffer, or a control-lane barrier.
LaneSan checks that claim on a live run instead of trusting it.

Enable it per network — ``Network(..., sanitize=True)`` — and the
transport wraps its lane-shared registries (host table, process table,
partition map, per-host RNG streams) in ownership-asserting
:class:`SanDict` views. Every access records ``(structure, field, lane,
round)`` plus the call site; two accesses to the same field in the same
round from *different* lanes, at least one a write, are a conflict — the
exact pattern the horizon barrier exists to prevent. Iteration and
``len``/equality are recorded as whole-structure reads, which conflict
with a same-round write to any field by another lane.

Control-lane and external accesses (lane index < 0, or outside the run
loop) are exempt: control events are global barriers, so they cannot be
concurrent with lane execution. On the classic single-queue
:class:`~repro.net.sim.Scheduler` there are no lanes at all, so the
sanitizer is inert and the wrappers only cost a dictionary-subclass
dispatch — everything stays deterministic either way, because recording
never changes container semantics or ordering.

Typical use::

    network = Network(scheduler, partitions=4, parallel=True, sanitize=True)
    ... run the workload ...
    network.sanitizer.assert_clean()      # raises LaneRaceError with both
                                          # stack sites on any conflict
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

_THIS_FILE = __file__

#: field name standing for "the whole structure" (iteration, len, ==)
STAR = "*"


class LaneRaceError(AssertionError):
    """A same-round cross-lane access pair was observed."""


@dataclass(frozen=True)
class Access:
    """One recorded side of a conflict."""

    lane: int
    kind: str                     # "read" | "write"
    site: str                     # "file:line in func <- caller"


@dataclass(frozen=True)
class Conflict:
    """Two lanes touched one field in one round, at least one writing."""

    label: str                    # which wrapped structure
    fieldname: str                # key, or ``*`` for whole-structure access
    round_index: int
    first: Access
    second: Access

    def format(self) -> str:
        return (f"lane-race on {self.label}[{self.fieldname}] in round "
                f"{self.round_index}:\n"
                f"  lane {self.first.lane} {self.first.kind} at "
                f"{self.first.site}\n"
                f"  lane {self.second.lane} {self.second.kind} at "
                f"{self.second.site}")


def _call_site() -> str:
    """Innermost non-sanitizer frame plus its caller."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == _THIS_FILE:
        frame = frame.f_back
    parts = []
    for _ in range(2):
        if frame is None:
            break
        code = frame.f_code
        parts.append(f"{code.co_filename}:{frame.f_lineno} "
                     f"in {code.co_name}")
        frame = frame.f_back
    return " <- ".join(parts) or "<unknown>"


@dataclass
class _FieldLog:
    """Per (label, field, lane) access summary within the current round."""

    read_site: Optional[str] = None
    write_site: Optional[str] = None


class LaneSan:
    """Collects lane-tagged accesses and reports same-round conflicts.

    One instance per sanitized :class:`~repro.net.transport.Network`.
    Recording is thread-safe (the parallel executor runs lanes on a
    pool); the buffer only ever holds one round of accesses — when a
    record arrives from a later round the previous round is reduced to
    conflicts and dropped, so memory stays bounded by per-round traffic.
    """

    def __init__(self, scheduler: Any):
        self._scheduler = scheduler
        self._lock = threading.Lock()
        self._round = -1
        #: (label, field) -> lane -> _FieldLog, for the buffered round
        self._accesses: Dict[Tuple[str, str], Dict[int, _FieldLog]] = {}
        self._conflicts: List[Conflict] = []
        self.records = 0

    # -- wrapping -------------------------------------------------------------

    def wrap_dict(self, mapping: Dict[Any, Any], label: str) -> "SanDict":
        """An ownership-asserting view seeded with ``mapping``'s content."""
        wrapped = SanDict(self, label)
        dict.update(wrapped, mapping)
        return wrapped

    # -- recording ------------------------------------------------------------

    def record(self, label: str, fieldname: str, *, write: bool) -> None:
        scheduler = self._scheduler
        context = getattr(scheduler, "current_context", None)
        lane = getattr(context, "index", -1) if context is not None else -1
        if lane < 0:
            return  # control lane / external: barrier-ordered by design
        round_index = getattr(scheduler, "round_index", 0)
        site = _call_site()
        with self._lock:
            self.records += 1
            if round_index != self._round:
                self._flush_locked()
                self._round = round_index
            log = self._accesses.setdefault(
                (label, fieldname), {}).setdefault(lane, _FieldLog())
            if write:
                if log.write_site is None:
                    log.write_site = site
            elif log.read_site is None:
                log.read_site = site

    def _flush_locked(self) -> None:
        """Reduce the buffered round to conflicts, then drop it."""
        star_logs: Dict[str, Dict[int, _FieldLog]] = {}
        for (label, fieldname), lanes in self._accesses.items():
            if fieldname == STAR:
                star_logs[label] = lanes
            self._emit_conflicts(label, fieldname, self._round, lanes)
        # a whole-structure access conflicts with any same-round write to
        # any field of that structure from a different lane
        for (label, fieldname), lanes in self._accesses.items():
            if fieldname == STAR or label not in star_logs:
                continue
            for star_lane, star_log in star_logs[label].items():
                for lane, log in lanes.items():
                    if lane == star_lane or log.write_site is None:
                        continue
                    star_site = star_log.read_site or star_log.write_site
                    kind = "read" if star_log.read_site else "write"
                    self._conflicts.append(Conflict(
                        label=label, fieldname=fieldname,
                        round_index=self._round,
                        first=Access(star_lane, kind, star_site or "?"),
                        second=Access(lane, "write", log.write_site)))
        self._accesses = {}

    def _emit_conflicts(self, label: str, fieldname: str, round_index: int,
                        lanes: Dict[int, _FieldLog]) -> None:
        if len(lanes) < 2:
            return
        writers = [(lane, log) for lane, log in lanes.items()
                   if log.write_site is not None]
        if not writers:
            return
        writer_lane, writer_log = writers[0]
        for lane, log in sorted(lanes.items()):
            if lane == writer_lane:
                continue
            site = log.write_site or log.read_site
            kind = "write" if log.write_site else "read"
            self._conflicts.append(Conflict(
                label=label, fieldname=fieldname, round_index=round_index,
                first=Access(writer_lane, "write",
                             writer_log.write_site or "?"),
                second=Access(lane, kind, site or "?")))

    # -- reporting ------------------------------------------------------------

    def conflicts(self) -> List[Conflict]:
        """All conflicts seen so far (flushes the in-flight round)."""
        with self._lock:
            self._flush_locked()
            return list(self._conflicts)

    def report(self) -> str:
        found = self.conflicts()
        if not found:
            return "lanesan: clean"
        lines = [f"lanesan: {len(found)} conflict(s)"]
        lines.extend(conflict.format() for conflict in found)
        return "\n".join(lines)

    def assert_clean(self) -> None:
        found = self.conflicts()
        if found:
            raise LaneRaceError(self.report())


class SanDict(dict):
    """A dict that reports every access to its :class:`LaneSan`.

    Subclasses ``dict`` and defers every operation to the base class, so
    contents, ordering, equality and iteration semantics are untouched —
    the overlay only *observes*. Keys are stringified for field names;
    iteration, length and equality record a whole-structure read.
    """

    __slots__ = ("_san", "_label")

    def __init__(self, san: LaneSan, label: str):
        super().__init__()
        self._san = san
        self._label = label

    # -- reads ---------------------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        self._san.record(self._label, str(key), write=False)
        return dict.__getitem__(self, key)

    def get(self, key: Any, default: Any = None) -> Any:
        self._san.record(self._label, str(key), write=False)
        return dict.get(self, key, default)

    def __contains__(self, key: Any) -> bool:
        self._san.record(self._label, str(key), write=False)
        return dict.__contains__(self, key)

    def __iter__(self) -> Any:
        self._san.record(self._label, STAR, write=False)
        return dict.__iter__(self)

    def __len__(self) -> int:
        self._san.record(self._label, STAR, write=False)
        return dict.__len__(self)

    def keys(self) -> Any:
        self._san.record(self._label, STAR, write=False)
        return dict.keys(self)

    def values(self) -> Any:
        self._san.record(self._label, STAR, write=False)
        return dict.values(self)

    def items(self) -> Any:
        self._san.record(self._label, STAR, write=False)
        return dict.items(self)

    def __eq__(self, other: Any) -> bool:
        self._san.record(self._label, STAR, write=False)
        return dict.__eq__(self, other)

    __hash__ = None  # type: ignore[assignment]  # dicts are unhashable

    # -- writes --------------------------------------------------------------

    def __setitem__(self, key: Any, value: Any) -> None:
        self._san.record(self._label, str(key), write=True)
        dict.__setitem__(self, key, value)

    def __delitem__(self, key: Any) -> None:
        self._san.record(self._label, str(key), write=True)
        dict.__delitem__(self, key)

    def pop(self, key: Any, *default: Any) -> Any:
        self._san.record(self._label, str(key), write=True)
        return dict.pop(self, key, *default)

    def popitem(self, *args: Any, **kwargs: Any) -> Any:
        self._san.record(self._label, STAR, write=True)
        return dict.popitem(self, *args, **kwargs)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        write = not dict.__contains__(self, key)
        self._san.record(self._label, str(key), write=write)
        return dict.setdefault(self, key, default)

    def update(self, *args: Any, **kwargs: Any) -> None:
        staged: Dict[Any, Any] = dict(*args, **kwargs)
        for key in staged:
            self._san.record(self._label, str(key), write=True)
        dict.update(self, staged)

    def clear(self) -> None:
        self._san.record(self._label, STAR, write=True)
        dict.clear(self)


def iter_quiet(mapping: Dict[Any, Any]) -> Iterable[Tuple[Any, Any]]:
    """Items of a possibly-sanitized mapping without recording — for
    barrier-context bulk operations that would otherwise flood the log."""
    return dict.items(mapping) if isinstance(mapping, SanDict) \
        else mapping.items()

"""CLI for the simulation-invariant linter.

Usage::

    python -m repro.analysis src/                 # full gate, exit 1 on findings
    python -m repro.analysis src/repro/net --select determinism --no-orphans
    python -m repro.analysis src/ --format json
    python -m repro.analysis src/ --write-protocol PROTOCOL.md
    python -m repro.analysis src/ --check-protocol PROTOCOL.md

Exit codes: 0 clean, 1 unsuppressed findings (or protocol drift), 2 usage
error. ``--check-protocol`` regenerates the verb table in memory and fails
if the committed file differs — the CI guard against protocol drift.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.runner import FAMILIES, AnalysisReport, run_analysis
from repro.analysis.verbs import CHECK_PROTOCOL_DRIFT, render_protocol


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lint for simulation invariants: determinism, "
                    "protocol-verb closure, metrics catalog.")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to analyse")
    parser.add_argument("--select", action="append", choices=FAMILIES,
                        help="run only this checker family (repeatable)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--no-orphans", action="store_true",
                        help="skip catalog.orphaned (use for partial scans)")
    parser.add_argument("--write-protocol", metavar="FILE",
                        help="write the generated verb table to FILE")
    parser.add_argument("--check-protocol", metavar="FILE",
                        help="fail if FILE differs from the generated table")
    return parser


def _protocol_findings(report: AnalysisReport,
                       check_path: str) -> List[Finding]:
    path = pathlib.Path(check_path)
    if report.verb_model is None:
        return []  # --select without verbs: nothing to compare
    expected = render_protocol(report.verb_model)
    actual = path.read_text(encoding="utf-8") if path.exists() else ""
    if actual == expected:
        return []
    reason = "missing" if not path.exists() else "stale"
    return [Finding(
        check=CHECK_PROTOCOL_DRIFT, severity=Severity.ERROR,
        path=str(path), line=1,
        message=f"{reason}: regenerate with --write-protocol {path}")]


def _render_text(report: AnalysisReport) -> str:
    lines = [finding.format() for finding in report.active]
    summary = (f"{len(report.sources)} files, "
               f"{len(report.active)} findings, "
               f"{len(report.suppressed)} suppressed")
    if report.suppressed:
        allowed = sorted({f.check for f in report.suppressed})
        summary += " (" + ", ".join(allowed) + ")"
    lines.append(summary)
    return "\n".join(lines)


def _render_json(report: AnalysisReport) -> str:
    return json.dumps({
        "files": len(report.sources),
        "findings": [f.to_dict(suppressed=False) for f in report.active],
        "suppressed": [f.to_dict(suppressed=True) for f in report.suppressed],
        "counts": report.counts_by_check(),
    }, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    report = run_analysis(args.paths, select=args.select,
                          check_orphans=not args.no_orphans)

    if args.write_protocol:
        if report.verb_model is None:
            parser.error("--write-protocol needs the verbs family selected")
        pathlib.Path(args.write_protocol).write_text(
            render_protocol(report.verb_model), encoding="utf-8")
    if args.check_protocol:
        report.active.extend(_protocol_findings(report, args.check_protocol))

    output = _render_json(report) if args.format == "json" \
        else _render_text(report)
    print(output)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())

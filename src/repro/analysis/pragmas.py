"""The ``# sci: allow(<check>)`` escape hatch.

A pragma is a trailing comment on the *flagged line*::

    for leaf in leaf_set:   # sci: allow(determinism.set-iteration)

It suppresses findings whose check id equals one of the comma-separated
entries, or whose family matches an entry exactly (``allow(determinism)``
suppresses every ``determinism.*`` check on that line). A whole file can
opt out of a check with a module-top pragma::

    # sci: allow-file(races.module-state-write)

which must appear before the first real statement (docstring and imports
aside, a buried allow-file is ignored — suppression scope should be visible
at the top of the file). Suppressed findings are still counted and reported
in the run summary, so an allowlist cannot silently grow.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet

#: matches ``# sci: allow(a, b.c)`` anywhere in a line (pragma must live in
#: a comment; strings containing the pattern are a non-issue in practice
#: because the allow set only ever *suppresses*, never creates, findings)
PRAGMA_RE = re.compile(r"#\s*sci:\s*allow\(([^)]*)\)")

#: matches the whole-file variant ``# sci: allow-file(a, b.c)``
PRAGMA_FILE_RE = re.compile(r"#\s*sci:\s*allow-file\(([^)]*)\)")


def parse_allow(line: str) -> FrozenSet[str]:
    """Check ids allowed by pragmas on one source line."""
    allowed = set()
    for match in PRAGMA_RE.finditer(line):
        for entry in match.group(1).split(","):
            entry = entry.strip()
            if entry:
                allowed.add(entry)
    return frozenset(allowed)


def collect_allows(text: str) -> Dict[int, FrozenSet[str]]:
    """1-based line number -> allowed check ids, for lines carrying pragmas."""
    allows: Dict[int, FrozenSet[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if "sci:" not in line:
            continue  # cheap pre-filter; the regex is the real test
        allowed = parse_allow(line)
        if allowed:
            allows[number] = allowed
    return allows


def collect_file_allows(text: str, first_statement_line: int) -> FrozenSet[str]:
    """Check ids allowed file-wide by module-top allow-file pragmas.

    Only lines up to ``first_statement_line`` (the 1-based line of the
    first non-docstring statement; 0 when unknown scans nothing beyond
    line 1) are honoured, so a whole-file suppression can never hide in
    the middle of a module.
    """
    allowed = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if number > max(first_statement_line, 1):
            break
        if "sci:" not in line:
            continue
        for match in PRAGMA_FILE_RE.finditer(line):
            for entry in match.group(1).split(","):
                entry = entry.strip()
                if entry:
                    allowed.add(entry)
    return frozenset(allowed)


def suppresses(allowed: FrozenSet[str], check: str) -> bool:
    """Does an allow set cover ``check``? Exact id or family prefix."""
    for entry in allowed:
        if entry == check or check.startswith(entry + "."):
            return True
    return False

"""Source loading for the analysis suite.

Checkers never import the code they inspect — everything is AST-level, so
the linter can run over a tree with unsatisfied dependencies, and inspecting
a file can never execute it. A :class:`SourceFile` bundles the parse tree
with the raw text (pragma scanning) and a best-effort dotted module name
(allowlists are expressed against module paths like ``repro.net.sim``, not
filesystem layouts).
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.pragmas import (
    collect_allows,
    collect_file_allows,
    suppresses,
)

#: process-lifetime parse statistics; ``parsed`` counts actual ast.parse
#: calls, ``cache_hits`` counts files served from :data:`_PARSE_CACHE`.
#: Tests assert on these to pin the parse-once-per-file property.
PARSE_STATS = {"parsed": 0, "cache_hits": 0}


@dataclass
class SourceFile:
    """One parsed python file under analysis."""

    path: str                       # as discovered/given, posix separators
    text: str
    tree: ast.Module
    module: str                     # dotted guess, e.g. "repro.net.sim"
    allows: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_allows: FrozenSet[str] = frozenset()

    @classmethod
    def from_text(cls, text: str, path: str) -> "SourceFile":
        """Build from in-memory source (the unit-test entry point)."""
        PARSE_STATS["parsed"] += 1
        tree = ast.parse(text)
        return cls(
            path=path,
            text=text,
            tree=tree,
            module=module_name(path),
            allows=collect_allows(text),
            file_allows=collect_file_allows(
                text, _first_statement_line(tree, text)),
        )

    @property
    def docstring(self) -> str:
        return ast.get_docstring(self.tree) or ""

    def allowed_at(self, line: int, check: str) -> bool:
        if self.file_allows and suppresses(self.file_allows, check):
            return True
        allowed = self.allows.get(line)
        return bool(allowed) and suppresses(allowed, check)


def _first_statement_line(tree: ast.Module, text: str) -> int:
    """1-based line of the first non-docstring statement (the horizon an
    allow-file pragma must appear before); end of file when there is none."""
    body = tree.body
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]
    if body:
        return body[0].lineno
    return text.count("\n") + 1


def module_name(path: str) -> str:
    """Dotted module path for a file path.

    Everything up to and including a ``src`` component is stripped, so
    ``src/repro/net/sim.py`` and ``repro/net/sim.py`` both map to
    ``repro.net.sim`` regardless of where the scan was rooted; a ``tests``
    component is kept but anchors the module there
    (``/abs/repo/tests/x.py`` -> ``tests.x``).
    """
    parts = list(pathlib.PurePosixPath(path.replace("\\", "/")).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for index, part in enumerate(parts):
        if part == "src":
            parts = parts[index + 1:]
            break
        if part == "tests":
            parts = parts[index:]
            break
    return ".".join(part for part in parts if part not in (".", "..", "/"))


def iter_python_files(root: pathlib.Path) -> Iterable[pathlib.Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


#: parsed-file memo shared by every run in this process, keyed by resolved
#: path; an entry is reused only while the file's (mtime_ns, size) signature
#: is unchanged. Checkers never mutate a SourceFile, so sharing is safe, and
#: the four families plus repeated runs (gate + protocol check) each parse a
#: given file exactly once.
_PARSE_CACHE: Dict[str, Tuple[Tuple[int, int], SourceFile]] = {}


def clear_parse_cache() -> None:
    _PARSE_CACHE.clear()


def _load_one(path: pathlib.Path, name: str) -> SourceFile:
    try:
        stat = path.stat()
        signature = (stat.st_mtime_ns, stat.st_size)
        cache_key = str(path.resolve())
    except OSError:
        signature, cache_key = None, None
    if cache_key is not None:
        cached = _PARSE_CACHE.get(cache_key)
        if cached is not None and cached[0] == signature:
            PARSE_STATS["cache_hits"] += 1
            return cached[1]
    source = SourceFile.from_text(path.read_text(encoding="utf-8"), name)
    if cache_key is not None and signature is not None:
        _PARSE_CACHE[cache_key] = (signature, source)
    return source


def load_sources(paths: Iterable[str]) -> Tuple[List[SourceFile], List[Tuple[str, int, str]]]:
    """Load every ``.py`` under ``paths``.

    Returns ``(sources, errors)`` where errors are ``(path, line, message)``
    for files that failed to read or parse — the runner turns those into
    findings rather than aborting the whole run.
    """
    sources: List[SourceFile] = []
    errors: List[Tuple[str, int, str]] = []
    for raw in paths:
        root = pathlib.Path(raw)
        if not root.exists():
            errors.append((str(raw), 0, "path does not exist"))
            continue
        for path in iter_python_files(root):
            name = path.as_posix()
            try:
                sources.append(_load_one(path, name))
            except OSError as exc:
                errors.append((name, 0, f"unreadable: {exc}"))
            except SyntaxError as exc:
                errors.append((name, exc.lineno or 0, f"syntax error: {exc.msg}"))
    return sources, errors


def find_source(sources: Iterable[SourceFile], module: str) -> Optional[SourceFile]:
    for source in sources:
        if source.module == module:
            return source
    return None

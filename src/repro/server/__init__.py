"""Ranges, Context Servers and the core Context Utilities (Section 3.1).

"Each Range is governed by its own individual Context Server (CS), the hub
for the Range. A CS is considered to be a secure, always on central server
for management of contextual information within a Range." The CS manages the
six core Context Utilities; four of them live here (Registrar, Range
Service, Profile Manager, and the Context Server's own Query Resolver
plumbing), while the Event Mediator and Location Service live in
:mod:`repro.events` and :mod:`repro.location`.
"""

from repro.server.range import RangeDefinition
from repro.server.registrar import Registrar, RegistrationRecord
from repro.server.range_service import RangeService
from repro.server.profile_manager import ProfileManager
from repro.server.context_server import ContextServer, ParkedQuery

__all__ = [
    "RangeDefinition",
    "Registrar",
    "RegistrationRecord",
    "RangeService",
    "ProfileManager",
    "ContextServer",
    "ParkedQuery",
]

"""Range definitions (Section 3).

"A Range is defined as an area that can be described in logical and/or
physical terms ... bounded by a physical area (a collection of adjacent
rooms, an entire floor of a building) or by the effective operating range of
a particular network type." A definition names the symbolic places the range
governs and the machines in its jurisdiction; the physical/geometric extent
follows from the building model's room footprints, and a W-LAN-bounded range
can instead be defined by base-station coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.location.building import BuildingModel
from repro.location.geometry import Point


@dataclass
class RangeDefinition:
    """The static description of one range."""

    name: str
    #: symbolic places governed (a place implies all places beneath it)
    places: List[str]
    #: machines in the range's jurisdiction (Range Services deploy to these)
    hosts: List[str] = field(default_factory=list)
    #: base-station ids whose coverage bounds this range (W-LAN-style ranges)
    stations: List[str] = field(default_factory=list)

    def governs_place(self, building: BuildingModel, place: str) -> bool:
        """Is ``place`` (a room or area) inside this range?"""
        hierarchy = building.hierarchy
        if not hierarchy.known(place):
            return False
        return any(
            hierarchy.known(governed) and hierarchy.contains(governed, place)
            for governed in self.places
        )

    def governs_point(self, building: BuildingModel, point: Point) -> bool:
        """Is a physical position inside this range?

        True when the containing room is governed, or — for W-LAN-bounded
        ranges — when any of the range's base stations covers the point.
        """
        room = building.room_at(point)
        if room is not None and self.governs_place(building, room):
            return True
        for station_id in self.stations:
            station = building.signal_map.station(station_id)
            if station.rssi_at(point) is not None:
                return True
        return False

    def rooms(self, building: BuildingModel) -> List[str]:
        """All concrete rooms this range governs."""
        return [room for room in building.room_names()
                if self.governs_place(building, room)]

    def __str__(self) -> str:
        return f"Range({self.name}: places={self.places})"

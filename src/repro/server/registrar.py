"""The Registrar Context Utility.

Section 3.1: "Registrar: Maintains an accurate view of all entities within
the current Range." and "All CE's are registered within a range when they
arrive and deregistered upon departure."

Accuracy under failure is achieved with leases: a registration is kept alive
by heartbeats (:class:`~repro.entities.entity.BaseComponent` sends them at a
third of the lease); a missed lease means the entity crashed or left without
deregistering, and the Registrar evicts it — which is what ultimately
triggers configuration repair.
"""

from __future__ import annotations

import heapq
import itertools
import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.ids import GUID
from repro.entities.advertisement import Advertisement
from repro.entities.profile import Profile
from repro.net.message import Message
from repro.net.transport import Network, Process

logger = logging.getLogger(__name__)


@dataclass
class RegistrationRecord:
    """One registered component."""

    profile: Profile
    kind: str                      # "ce" | "caa" | "infrastructure"
    advertisements: List[Advertisement] = field(default_factory=list)
    host_id: str = ""
    registered_at: float = 0.0
    lease_expiry: Optional[float] = None   # None = infrastructure, no lease

    @property
    def entity_hex(self) -> str:
        return self.profile.entity_id.hex


class Registrar(Process):
    """Lease-based membership for one range."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 range_name: str,
                 context_server: GUID, event_mediator: GUID,
                 lease_duration: float = 30.0,
                 sweep_interval: float = 5.0,
                 ledger=None):
        super().__init__(guid, host_id, network, name=f"registrar:{range_name}")
        if lease_duration <= 0 or sweep_interval <= 0:
            raise ValueError("lease and sweep intervals must be positive")
        self.range_name = range_name
        self.context_server = context_server
        self.event_mediator = event_mediator
        self.lease_duration = lease_duration
        self._records: Dict[str, RegistrationRecord] = {}
        #: lazy-deletion expiry heap (deadline, seq, entity_hex) — the same
        #: trick the Scheduler uses for cancelled timers. Invariant: every
        #: leased record has a heap entry whose deadline equals its current
        #: ``lease_expiry``; renewals push a new entry and the superseded one
        #: is discarded when popped (its deadline no longer matches).
        self._expiry_heap: List[Tuple[float, int, str]] = []
        self._heap_seq = itertools.count()
        #: bumped on every membership change; feeds resolver index invalidation
        self.version = 0
        #: hooks the Context Server installs
        self.on_arrival: Callable[[RegistrationRecord], None] = lambda record: None
        self.on_departure: Callable[[RegistrationRecord, str], None] = (
            lambda record, reason: None)
        #: the range's root context ledger (rank 0); None disables recording
        self._ledger = ledger
        self.registrations = 0
        self.evictions = 0
        self.expiry_pops = 0
        self._expiry_pops_counter = network.obs.metrics.counter(
            "registrar.expiry.pops",
            "expiry-heap entries popped during lease sweeps",
            labels=("range",))
        self._sweeper = self.scheduler.schedule_periodic(sweep_interval,
                                                         self._sweep_leases)

    # -- direct API -----------------------------------------------------------------

    def record(self, entity_hex: str) -> Optional[RegistrationRecord]:
        return self._records.get(entity_hex)

    def records(self) -> List[RegistrationRecord]:
        return list(self._records.values())

    def registered(self, entity_hex: str) -> bool:
        return entity_hex in self._records

    def population(self) -> int:
        return len(self._records)

    def register_record(self, record: RegistrationRecord,
                        notify: bool = True) -> RegistrationRecord:
        """Insert a record directly (infrastructure-spawned CEs, handoffs)."""
        self._records[record.entity_hex] = record
        self.registrations += 1
        self.version += 1
        self._track_lease(record)
        self._log_register(record)
        if notify:
            self.on_arrival(record)
        return record

    def remove(self, entity_hex: str, reason: str, notify_entity: bool = True) -> bool:
        record = self._records.pop(entity_hex, None)
        if record is None:
            return False
        # any heap entries for this record become stale and are skipped on pop
        self.version += 1
        if self._ledger is not None:
            self._ledger.append(self.now, "depart",
                                {"entity": entity_hex, "reason": reason})
        if notify_entity:
            self.send(record.profile.entity_id, "deregistered", {"reason": reason})
        self.on_departure(record, reason)
        return True

    def _track_lease(self, record: RegistrationRecord) -> None:
        if record.lease_expiry is not None:
            heapq.heappush(self._expiry_heap,
                           (record.lease_expiry, next(self._heap_seq),
                            record.entity_hex))

    def _log_register(self, record: RegistrationRecord) -> None:
        """One ledger entry per (re-)registration, profile frozen at entry."""
        if self._ledger is None:
            return
        self._ledger.append(self.now, "register", {
            "entity": record.entity_hex,
            "name": record.profile.name,
            "kind": record.kind,
            "host": record.host_id,
            "registered_at": record.registered_at,
            "lease_expiry": record.lease_expiry,
            "profile": record.profile.to_wire(),
            "advertisements": [ad.to_wire() for ad in record.advertisements],
        })

    def shutdown(self) -> None:
        self._sweeper.cancel()
        self.detach()

    # -- message protocol --------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == "register":
            self._handle_register(message)
        elif message.kind == "deregister":
            self._handle_deregister(message)
        elif message.kind == "heartbeat":
            self._handle_heartbeat(message)
        else:
            logger.debug("%s ignoring %s", self.name, message)

    def _handle_register(self, message: Message) -> None:
        try:
            profile = Profile.from_wire(message.payload["profile"])
            advertisements = [Advertisement.from_wire(item)
                              for item in message.payload.get("advertisements", [])]
        except (KeyError, ValueError) as exc:
            self.reply(message, "register-ack", {"ok": False, "error": str(exc)})
            return
        sender = self.network.process(message.sender)
        record = RegistrationRecord(
            profile=profile,
            kind=message.payload.get("kind", "ce"),
            advertisements=advertisements,
            host_id=sender.host_id if sender else "",
            registered_at=self.now,
            lease_expiry=self.now + self.lease_duration,
        )
        fresh = record.entity_hex not in self._records
        self._records[record.entity_hex] = record
        self.registrations += 1
        self.version += 1
        self._track_lease(record)
        self._log_register(record)
        self.reply(message, "register-ack", {
            "ok": True,
            "range": self.range_name,
            "context_server": self.context_server.hex,
            "event_mediator": self.event_mediator.hex,
            "lease": self.lease_duration,
        })
        if fresh:
            self.on_arrival(record)

    def _handle_deregister(self, message: Message) -> None:
        entity_hex = message.payload.get("entity", message.sender.hex)
        removed = self.remove(entity_hex, "deregistered", notify_entity=False)
        self.reply(message, "deregister-ack", {"ok": removed})

    def _handle_heartbeat(self, message: Message) -> None:
        entity_hex = message.payload.get("entity", message.sender.hex)
        record = self._records.get(entity_hex)
        if record is None:
            # Entity thinks it is registered but was evicted; tell it so.
            self.send(message.sender, "deregistered", {"reason": "not-registered"})
            self.reply(message, "heartbeat-ack", {"ok": False})
            return
        if record.lease_expiry is not None:
            record.lease_expiry = self.now + self.lease_duration
            self._track_lease(record)
            if self._ledger is not None:
                self._ledger.append(self.now, "lease-renew", {
                    "entity": entity_hex,
                    "lease_expiry": record.lease_expiry,
                })
        # the ack lets the sender retransmit a heartbeat the network ate
        # instead of losing a third of its lease (renewal is idempotent and
        # duplicates are suppressed transport-side anyway)
        self.reply(message, "heartbeat-ack", {"ok": True})

    # -- lease sweeping -----------------------------------------------------------------

    def _sweep_leases(self) -> None:
        """Pop due heap entries instead of scanning every registration.

        An entry is authoritative only if its deadline still equals the
        record's current ``lease_expiry``; renewals and re-registrations
        leave superseded entries behind, which cost one pop each (lazy
        deletion) and are discarded here. A record with a future lease is
        never evicted because only entries with ``deadline < now`` are
        popped, and the freshest entry's deadline *is* the record's expiry.
        """
        now = self.now
        popped = 0
        while self._expiry_heap and self._expiry_heap[0][0] < now:
            deadline, _, entity_hex = heapq.heappop(self._expiry_heap)
            popped += 1
            record = self._records.get(entity_hex)
            if record is None or record.lease_expiry is None:
                continue  # departed or promoted to infrastructure; stale entry
            if record.lease_expiry != deadline:
                continue  # renewed since; the fresher entry covers it
            self.evictions += 1
            logger.info("%s evicting %s (lease expired)", self.name,
                        record.profile.name)
            self.remove(record.entity_hex, "lease-expired")
        if popped:
            self.expiry_pops += popped
            self._expiry_pops_counter.inc(popped, range=self.range_name or "-")

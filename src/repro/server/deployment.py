"""Standard deployment helpers: templates and sensor roll-outs.

A deployment equips each range with (a) sensor CEs wired to the physical
model (door sensors on every sensed door, a W-LAN detector over the signal
map) and (b) templates for the processing CEs the resolver may need to spawn
(object location, path, occupancy). The prototype profiles here mirror the
profiles the concrete classes build for themselves — the resolver matches on
the prototype, then the factory creates an instance whose real profile
agrees with it (asserted by tests/composition/test_templates.py).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.ids import GUID, GuidFactory
from repro.core.types import TypeSpec
from repro.composition.templates import CETemplate, TemplateRegistry
from repro.entities.derived import ObjectLocationCE, OccupancyCE, PathCE
from repro.entities.devices import PrinterCE
from repro.entities.profile import EntityClass, Profile
from repro.entities.sensors import DoorSensorCE, WLANDetectorCE
from repro.location.building import BuildingModel
from repro.net.transport import Network


def object_location_template(prototype_guid: GUID) -> CETemplate:
    """Template for :class:`~repro.entities.derived.ObjectLocationCE`."""
    prototype = Profile(
        entity_id=prototype_guid,
        name="obj-location",
        entity_class=EntityClass.SOFTWARE,
        outputs=[TypeSpec.of("location", "topological", quality={"accuracy": 2.0})],
        inputs=[TypeSpec("presence", "tag-read")],
        params={"subject": "entity ID whose location is tracked",
                "initial_room": "optional seed location"},
        attributes={"binding": {"kind": "subject", "params": ["subject"]}},
    )
    return CETemplate(
        name="obj-location",
        prototype=prototype,
        factory=lambda guid, host_id, network: ObjectLocationCE(
            guid, host_id, network, name=f"obj-location#{guid}"),
    )


def path_template(prototype_guid: GUID, building: BuildingModel) -> CETemplate:
    """Template for :class:`~repro.entities.derived.PathCE`."""
    prototype = Profile(
        entity_id=prototype_guid,
        name="path-ce",
        entity_class=EntityClass.SOFTWARE,
        outputs=[TypeSpec("path", "rooms")],
        inputs=[TypeSpec("location", "topological"),
                TypeSpec("location", "topological")],
        params={"from_subject": "path origin entity",
                "to_subject": "path destination entity"},
        attributes={"binding": {
            "kind": "pair",
            "params": ["from_subject", "to_subject"],
            "separator": "->",
            "bind_inputs": True,
        }},
    )
    return CETemplate(
        name="path-ce",
        prototype=prototype,
        factory=lambda guid, host_id, network: PathCE(
            guid, host_id, network, building, name=f"path-ce#{guid}"),
    )


def occupancy_template(prototype_guid: GUID, building: BuildingModel) -> CETemplate:
    """Template for :class:`~repro.entities.derived.OccupancyCE`."""
    prototype = Profile(
        entity_id=prototype_guid,
        name="occupancy",
        entity_class=EntityClass.SOFTWARE,
        outputs=[TypeSpec("occupancy", "count")],
        inputs=[TypeSpec("location", "topological")],
        params={"place": "the place whose occupancy is counted"},
        attributes={"binding": {"kind": "subject", "params": ["place"]}},
    )
    return CETemplate(
        name="occupancy",
        prototype=prototype,
        factory=lambda guid, host_id, network: OccupancyCE(
            guid, host_id, network, building, name=f"occupancy#{guid}"),
    )


def standard_templates(guids: GuidFactory, building: BuildingModel) -> TemplateRegistry:
    """The template set every standard range deployment carries."""
    registry = TemplateRegistry()
    registry.register(object_location_template(guids.mint()))
    registry.register(path_template(guids.mint(), building))
    registry.register(occupancy_template(guids.mint(), building))
    return registry


def deploy_door_sensors(building: BuildingModel, host_id: str,
                        network: Network, guids: GuidFactory,
                        rooms: List[str] = None,
                        miss_rate: float = 0.0) -> Dict[str, DoorSensorCE]:
    """Create (and start) a DoorSensorCE for every sensed door.

    ``rooms`` restricts the roll-out to doors touching those rooms (a range
    deploys sensors for its own doors only). Returns door_id -> sensor.
    """
    sensors: Dict[str, DoorSensorCE] = {}
    for door in building.topology.doors():
        if door.sensor_id is None:
            continue
        if rooms is not None and not (door.place_a in rooms or door.place_b in rooms):
            continue
        sensor = DoorSensorCE(
            guids.mint(), host_id, network,
            door_id=door.door_id, room_a=door.place_a, room_b=door.place_b,
            miss_rate=miss_rate, seed=len(sensors),
        )
        sensor.start()
        sensors[door.door_id] = sensor
    return sensors


def deploy_wlan_detector(building: BuildingModel, host_id: str,
                         network: Network, guids: GuidFactory,
                         device_positions: Callable,
                         scan_interval: float = 5.0) -> WLANDetectorCE:
    """Create (and start) the range's W-LAN location detector."""
    detector = WLANDetectorCE(
        guids.mint(), host_id, network,
        signal_map=building.signal_map,
        device_positions=device_positions,
        scan_interval=scan_interval,
    )
    detector.start()
    return detector


def deploy_printers(host_id: str, network: Network, guids: GuidFactory,
                    placements: Dict[str, str],
                    seconds_per_page: float = 2.0) -> Dict[str, PrinterCE]:
    """Create (and start) printers: name -> room placements."""
    printers: Dict[str, PrinterCE] = {}
    for name, room in sorted(placements.items()):
        printer = PrinterCE(guids.mint(), host_id, network,
                            printer_name=name, room=room,
                            seconds_per_page=seconds_per_page)
        printer.start()
        printers[name] = printer
    return printers

"""Consistent-hash ownership of ``(type, subject)`` keys across CS shards.

The Context Server's utilities (Event Mediator, Query Resolver) can be
partitioned into K worker shards. Ownership of a context key — the
``(type_name, subject)`` pair that identifies one stream of context about
one entity — is decided by a consistent-hash ring with virtual nodes, so

* the mapping is a pure function of the key and the current shard set
  (every component that holds a ring reference agrees without messages);
* adding or removing one shard moves only ``~1/K`` of the keys, instead of
  reshuffling everything the way ``hash(key) % K`` would;
* the hash is content-derived (BLAKE2b over a canonical rendering), never
  Python's randomised ``hash()``, so two runs with the same seed shard
  identically — the determinism contract every benchmark relies on.

Subjects can be any event subject (strings in practice, ``None`` for
subject-less types); they are rendered with ``repr`` which is stable for
the plain-data subjects events carry. The resolver uses the degenerate key
``(type_name, None)`` so provider buckets shard by offered type.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

#: virtual nodes per shard. 64 points keep the max/mean key imbalance under
#: ~1.3 for small K while the ring stays tiny (K x 64 sorted entries).
DEFAULT_VNODES = 64


def _hash_token(token: str) -> int:
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def hash_key(key: Tuple[str, object]) -> int:
    """Ring position of a ``(type_name, subject)`` key."""
    type_name, subject = key
    return _hash_token(f"k:{type_name}\x1f{subject!r}")


class ShardRing:
    """Sorted ring of virtual nodes with bisect lookup.

    ``owner(key)`` returns the shard id whose first virtual node lies at or
    clockwise-after the key's hash. Stability under membership change is
    structural: a shard's virtual-node positions depend only on its id, so
    adding shard S inserts S's points and steals exactly the key arcs that
    now fall behind them — every other key keeps its owner (the property
    suite pins this).
    """

    def __init__(self, shard_ids: Tuple[int, ...] = (),
                 vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        #: sorted (point, shard_id) pairs
        self._points: List[Tuple[int, int]] = []
        self._members: Dict[int, None] = {}
        for shard_id in shard_ids:
            self.add(shard_id)

    # -- membership -----------------------------------------------------------

    def add(self, shard_id: int) -> None:
        if shard_id in self._members:
            raise ValueError(f"shard {shard_id} already on the ring")
        self._members[shard_id] = None
        for vnode in range(self.vnodes):
            point = _hash_token(f"s:{shard_id}:{vnode}")
            self._points.append((point, shard_id))
        self._points.sort()

    def remove(self, shard_id: int) -> None:
        if shard_id not in self._members:
            raise ValueError(f"shard {shard_id} not on the ring")
        del self._members[shard_id]
        self._points = [entry for entry in self._points
                        if entry[1] != shard_id]

    @property
    def shard_ids(self) -> List[int]:
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._members

    # -- lookup ---------------------------------------------------------------

    def owner(self, key: Tuple[str, object]) -> int:
        """Shard id owning ``(type_name, subject)``; ring must be non-empty."""
        return self.owner_of_point(hash_key(key))

    def owner_of_point(self, point: int) -> int:
        if not self._points:
            raise ValueError("shard ring is empty")
        index = bisect_right(self._points, (point, 2**63))
        if index == len(self._points):
            index = 0  # wrap: first virtual node clockwise from zero
        return self._points[index][1]

    def spread(self, keys) -> Dict[int, int]:
        """Key count per shard — imbalance introspection for the benches."""
        counts: Dict[int, int] = {shard_id: 0 for shard_id in self._members}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts


def stable_owner_check(ring_before: ShardRing, ring_after: ShardRing,
                       keys, changed: Optional[int] = None) -> List[tuple]:
    """Keys whose owner changed without involving shard ``changed``.

    Consistent hashing promises the empty list: a membership change may only
    move keys *onto* an added shard or *off* a removed one. Used by the
    ownership test-suite; returns the violating ``(key, before, after)``
    triples for a readable assertion message.
    """
    violations = []
    for key in keys:
        before = ring_before.owner(key)
        after = ring_after.owner(key)
        if before != after and changed not in (before, after):
            violations.append((key, before, after))
    return violations

"""The Range Service Context Utility — per-machine discovery daemon.

Section 4.2 / Figure 5: "When a Context Server starts up, it deploys a Range
Service (RS) to all the machines within its jurisdiction. The RS performs
the task of listening for CAAs or CEs starting up in order to inform them
about the Range's Registrar."

A starting component broadcasts ``component-up`` on its machine; the RS on
that machine answers with ``range-offer`` naming the Registrar. The RS also
re-offers on demand (``probe``), which the mobility layer uses when a device
host physically enters the range.
"""

from __future__ import annotations

import logging

from repro.core.ids import GUID
from repro.net.message import Message
from repro.net.transport import Network, Process

logger = logging.getLogger(__name__)


class RangeService(Process):
    """One discovery daemon on one machine of a range's jurisdiction."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 range_name: str, registrar: GUID):
        super().__init__(guid, host_id, network,
                         name=f"range-service:{range_name}@{host_id}")
        self.range_name = range_name
        self.registrar = registrar
        self.offers_made = 0
        self.enabled = True

    def offer_to(self, component: GUID) -> None:
        """Tell one component where the Registrar is."""
        if not self.enabled:
            return
        self.offers_made += 1
        self.send(component, "range-offer", {
            "range": self.range_name,
            "registrar": self.registrar.hex,
        })

    def offer_to_host(self) -> int:
        """Offer to every component currently on this machine.

        Used when a mobile machine (a PDA) enters the range: the components
        on it never saw a Range Service, so the RS takes the first step.
        """
        offered = 0
        for process in self.network.processes_on(self.host_id):
            if process.guid == self.guid:
                continue
            if getattr(process, "component_kind", None) in ("ce", "caa"):
                self.offer_to(process.guid)
                offered += 1
        return offered

    def on_message(self, message: Message) -> None:
        if message.kind == "component-up":
            self.offer_to(message.sender)
        elif message.kind == "probe":
            self.offer_to(message.sender)
        else:
            logger.debug("%s ignoring %s", self.name, message)

"""The Context Server — the hub of a Range (Sections 3.1, 4.3 and 5).

"The Context Server (CS) is the most important component of a Range. It
manages the other components and provides the means of communicating with
other Ranges in the SCINET. It maintains a central store of entity
information as well as managing the context utilities operating within its
range. The CS provides the access point for Context Aware Applications to
interact with the infrastructure."

On construction the CS instantiates its six Context Utilities — Registrar,
Profile Manager, Event Mediator, Location Service, the Query Resolver (via
the Configuration Manager) and a Range Service per machine in its
jurisdiction (Figure 5) — and wires the callbacks between them.

Query lifecycle (Section 4.3 + the CAPA walk-through of Section 5):

* a ``query`` message arrives from a CAA (or forwarded by a peer CS);
* if the Where/When clauses reference places another range governs, the
  query is **forwarded** to that range's CS (looked up through the SCINET
  range directory);
* time-based When clauses are **scheduled**; ``enters(entity, place)``
  clauses are **parked** — the CS "stores it until its temporal constraints
  are satisfied" and "listens" for the entity entering the place;
* execution dispatches on mode: profile request, advertisement request
  (Which-based candidate selection), or event/one-time subscription
  (configuration build + instantiation through the Configuration Manager).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.errors import NoProviderError, LocationError, QueryError, SCIError
from repro.core.ids import GUID, GuidFactory
from repro.core.types import TypeRegistry
from repro.composition.manager import Configuration, ConfigurationManager
from repro.composition.resolver import QueryResolver
from repro.composition.templates import TemplateRegistry
from repro.entities.entity import ContextEntity
from repro.entities.profile import EntityClass, Profile
from repro.events.filters import TypeFilter
from repro.events.mediator import EventMediator
from repro.ledger.ledger import ContextLedger, LedgerEntry, merge_entries
from repro.ledger.replay import ProjectedState, ReplayProjector
from repro.ledger.timetravel import AsOfView, explain_query
from repro.location.building import BuildingModel
from repro.location.language import LocationExpr, parse_location
from repro.location.service import EntityFix, LocationService
from repro.net.message import Message
from repro.net.transport import Network, Process
from repro.query.model import Query, QueryMode, WhatClause
from repro.query.selection import Candidate
from repro.server.profile_manager import ProfileManager
from repro.server.range import RangeDefinition
from repro.server.range_service import RangeService
from repro.server.registrar import RegistrationRecord, Registrar

logger = logging.getLogger(__name__)


@dataclass
class ParkedQuery:
    """A query waiting for its When condition (Section 5: configuration X)."""

    query: Query
    subscriber_hex: str
    parked_at: float
    origin_range: Optional[str] = None
    #: trace context captured at park time, re-activated when the When
    #: condition fires — so the eventual execution joins the submit trace
    trace_ctx: Optional[Dict[str, str]] = None


class ContextServer(Process):
    """One range's central server and its bundled Context Utilities."""

    def __init__(
        self,
        guid: GUID,
        host_id: str,
        network: Network,
        definition: RangeDefinition,
        building: BuildingModel,
        registry: TypeRegistry,
        guid_factory: GuidFactory,
        templates: Optional[TemplateRegistry] = None,
        lease_duration: float = 30.0,
        max_repairs_per_config: Optional[int] = None,
        reliable_events: bool = True,
        mediator_shards: int = 1,
        resolver_shards: int = 1,
        shard_hosts: Optional[List[str]] = None,
        ledger: bool = True,
    ):
        super().__init__(guid, host_id, network, name=f"cs:{definition.name}")
        self.definition = definition
        self.building = building
        self.registry = registry
        self.guids = guid_factory
        self.templates = templates or TemplateRegistry()

        # -- context ledger (ROADMAP item 4) ----------------------------------
        # rank 0 is the CS-lane chain (registrar, profiles, router, query
        # lifecycle); each mediator shard appends to its own child chain.
        self.ledger: Optional[ContextLedger] = None
        if ledger:
            self.ledger = ContextLedger(
                f"cs:{definition.name}",
                metrics=network.obs.metrics,
                range_name=definition.name)
        self._ledger_replays_counter = network.obs.metrics.counter(
            "cs.ledger.replays",
            "replay projections rebuilt from a ledger prefix",
            labels=("range",))
        self._ledger_asof_counter = network.obs.metrics.counter(
            "cs.ledger.asof_reads",
            "historical as-of views answered from the ledger",
            labels=("range",))

        # -- Context Utilities (Section 3.1's core set) -----------------------
        # the range mediator runs in reliable (ack/retry + sequenced) mode
        # by default; ``reliable_events=False`` is the fire-and-forget
        # ablation matching the seed behaviour. ``mediator_shards > 1``
        # partitions the mediator into worker shards behind a router with
        # the same observable delivery behaviour (see repro.events.sharding).
        if mediator_shards > 1:
            # imported lazily: repro.events.sharding imports repro.server
            # modules, so a module-top import here would be a cycle
            from repro.events.sharding import ShardedEventMediator
            self.mediator: EventMediator = ShardedEventMediator(
                self.guids.mint(), host_id, network, definition.name,
                shards=mediator_shards,
                shard_hosts=shard_hosts,
                guid_factory=self.guids,
                reliable=reliable_events,
                ledger=self.ledger)
        else:
            self.mediator = EventMediator(self.guids.mint(), host_id, network,
                                          definition.name,
                                          reliable=reliable_events,
                                          ledger=self.ledger)
        self.registrar = Registrar(self.guids.mint(), host_id, network,
                                   definition.name,
                                   context_server=self.guid,
                                   event_mediator=self.mediator.guid,
                                   lease_duration=lease_duration,
                                   ledger=self.ledger)
        self.profiles = ProfileManager(self.guids.mint(), host_id, network,
                                       definition.name,
                                       ledger=self.ledger)
        self.location = LocationService(self.guids.mint(), host_id, network,
                                        building, definition.name)
        self.range_services: Dict[str, RangeService] = {}
        for machine in definition.hosts:
            network.ensure_host(machine)
            self.range_services[machine] = RangeService(
                self.guids.mint(), machine, network,
                definition.name, self.registrar.guid)

        resolver = QueryResolver(
            registry,
            live_profiles=self._resolver_profiles,
            templates=self.templates,
            bindings_of=lambda entity_hex: self.configurations.bindings_of(entity_hex),
            # invalidate the provider index only when membership or the
            # template set changes (registration, departure, lease expiry)
            feed_version=lambda: (self.registrar.version,
                                  self.templates.version),
            shards=resolver_shards,
            metrics=network.obs.metrics,
            range_name=definition.name,
        )
        self.resolver = resolver
        self.configurations = ConfigurationManager(
            network=network,
            host_id=host_id,
            mediator=self.mediator,
            resolver=resolver,
            templates=self.templates,
            guid_factory=self.guids,
            range_addresses=(self.registrar.guid, self.guid, self.mediator.guid),
            range_name=definition.name,
            on_spawned=self._record_spawned,
            on_config_dead=self._notify_config_dead,
            max_repairs_per_config=max_repairs_per_config,
        )

        # -- wiring ------------------------------------------------------------
        self.registrar.on_arrival = self._entity_arrived
        self.registrar.on_departure = self._entity_departed
        # the Location Service consumes every location and door-presence
        # event in the range ("each range monitors internal activity")
        self.mediator.add_subscription(self.location.guid,
                                       TypeFilter("location"),
                                       owner="location-service")
        self.mediator.add_subscription(self.location.guid,
                                       TypeFilter("presence"),
                                       owner="location-service")
        self.location.observers.append(self._on_location_fix)

        #: place -> peer CS hex; installed by the SCINET layer
        self.peer_lookup: Callable[[str], Optional[str]] = lambda place: None

        self._parked: List[ParkedQuery] = []
        self.queries_received = 0
        self.queries_executed = 0
        self.queries_forwarded = 0
        self.queries_parked = 0
        self.queries_failed = 0
        self._expiry_sweeper = self.scheduler.schedule_periodic(
            10.0, self._sweep_expired_queries)

    # ------------------------------------------------------------------ wiring

    def _resolver_profiles(self) -> List[Profile]:
        """Profiles of live CEs only (CAAs do not provide context)."""
        return [record.profile for record in self.registrar.records()
                if record.kind in ("ce", "infrastructure")]

    def _record_spawned(self, entity: ContextEntity) -> None:
        """A manager-spawned CE joins the range's books (no lease)."""
        record = RegistrationRecord(
            profile=entity.profile,
            kind="infrastructure",
            advertisements=list(entity.advertisements),
            host_id=entity.host_id,
            registered_at=self.now,
            lease_expiry=None,
        )
        self.registrar.register_record(record, notify=False)
        # notify=False skips on_arrival, so patch the sharded provider
        # index here (the version was bumped by register_record)
        self.resolver.note_profile_added(record.profile)
        self.profiles.add(entity.profile, entity.advertisements)

    def _entity_arrived(self, record: RegistrationRecord) -> None:
        # CAAs provide no context: a None delta advances the version chain
        # of the sharded provider index without filing anything
        self.resolver.note_profile_added(
            record.profile if record.kind in ("ce", "infrastructure")
            else None)
        self.profiles.add(record.profile, record.advertisements)
        home = record.profile.attributes.get("room")
        if home and record.profile.entity_class != EntityClass.SOFTWARE:
            try:
                self.location.update(record.profile.name, room=home)
            except LocationError:
                pass
        logger.debug("%s: %s arrived", self.name, record.profile.name)

    def _entity_departed(self, record: RegistrationRecord, reason: str) -> None:
        entity_hex = record.entity_hex
        self.resolver.note_profile_removed(
            entity_hex if record.kind in ("ce", "infrastructure") else None)
        self.profiles.remove(entity_hex)
        self.location.forget(record.profile.name)
        self.mediator.remove_subscriber(record.profile.entity_id)
        affected = self.configurations.handle_entity_departure(entity_hex)
        if affected:
            logger.info("%s: departure of %s affected %d configuration(s)",
                        self.name, record.profile.name, len(affected))

    def _notify_config_dead(self, config: Configuration, reason: str) -> None:
        for delivery in config.deliveries:
            self.send(GUID.from_hex(delivery.subscriber_hex), "query-result", {
                "query_id": delivery.query_id,
                "ok": False,
                "error": f"configuration failed and is unrepairable: {reason}",
            })

    # ---------------------------------------------------------------- messages

    def on_message(self, message: Message) -> None:
        if message.kind == "query":
            self._handle_query(message)
        elif message.kind == "cancel-query":
            self._handle_cancel(message)
        else:
            logger.debug("%s ignoring %s", self.name, message)

    def _handle_query(self, message: Message) -> None:
        self.queries_received += 1
        try:
            query = Query.from_wire(message.payload["query"])
        except (QueryError, KeyError) as exc:
            self.reply(message, "query-ack",
                       {"ok": False, "query_id": "", "error": str(exc)})
            return
        subscriber_hex = message.payload.get("subscriber", message.sender.hex)
        # A query message is always worth a span: child of the CAA's submit
        # span when one is in flight, a fresh root otherwise.
        with self.network.obs.tracer.span(
                "cs.query", range=self.definition.name,
                query=query.query_id, mode=query.mode.value) as span:
            status, error = self.accept_query(query, subscriber_hex)
            if span is not None:
                span.set(status=status, ok=error is None)
            self.reply(message, "query-ack", {
                "ok": error is None,
                "query_id": query.query_id,
                "status": status,
                **({"error": error} if error else {}),
            })

    def _handle_cancel(self, message: Message) -> None:
        query_id = message.payload.get("query_id", "")
        self._parked = [parked for parked in self._parked
                        if parked.query.query_id != query_id]
        self.configurations.cancel_query(query_id)

    # ----------------------------------------------------------- query routing

    def accept_query(self, query: Query, subscriber_hex: str):
        """Route one query: forward, park, schedule or execute.

        Returns ``(status, error)`` with error None on success.
        """
        status, error = self._route_query(query, subscriber_hex)
        self.network.obs.metrics.counter(
            "cs.query.routed", "queries routed per range and outcome",
            labels=("range", "status")).inc(
                range=self.definition.name, status=status)
        self._log_query(query.query_id, "routed", status=status,
                        mode=query.mode.value, when=str(query.when),
                        subscriber=subscriber_hex,
                        **({"error": error} if error else {}))
        return status, error

    def _route_query(self, query: Query, subscriber_hex: str):
        if query.when.expired(self.now):
            self.queries_failed += 1
            return "expired", "query expired before execution"

        foreign_place = self._foreign_place(query)
        if foreign_place is not None:
            peer_hex = self.peer_lookup(foreign_place)
            if peer_hex is not None and peer_hex != self.guid.hex:
                self.send(GUID.from_hex(peer_hex), "query", {
                    "query": query.to_wire(),
                    "subscriber": subscriber_hex,
                })
                self.queries_forwarded += 1
                logger.info("%s forwarded %s (place %s)", self.name,
                            query.query_id, foreign_place)
                return "forwarded", None
            # No peer governs it; fall through and try locally.

        tracer = self.network.obs.tracer
        if query.when.kind == "enters":
            self._parked.append(ParkedQuery(
                query, subscriber_hex, self.now,
                trace_ctx=tracer.current_context()))
            self.queries_parked += 1
            logger.info("%s parked %s until %s", self.name,
                        query.query_id, query.when)
            return "parked", None

        trigger = query.when.trigger_time(self.now)
        if trigger is not None and trigger > self.now:
            self.scheduler.schedule_at(trigger, self._execute_later,
                                       query, subscriber_hex,
                                       tracer.current_context())
            return "scheduled", None

        error = self.execute_query(query, subscriber_hex)
        return ("executed" if error is None else "failed"), error

    def _execute_later(self, query: Query, subscriber_hex: str,
                       trace_ctx: Optional[Dict[str, str]] = None) -> None:
        # inclusive boundary: a trigger landing exactly on the expiry
        # instant never executes (see WhenClause.expired)
        if query.when.expired(self.now):
            self.queries_failed += 1
            self._log_query(query.query_id, "expired")
            return
        with self.network.obs.tracer.activate(trace_ctx):
            self.execute_query(query, subscriber_hex)

    def _foreign_place(self, query: Query) -> Optional[str]:
        """A concrete place this query hinges on that we do not govern."""
        places: List[str] = []
        if query.when.kind == "enters" and query.when.place:
            places.append(query.when.place)
        places.extend(_places_in(query.where))
        for place in places:
            if (self.building.hierarchy.known(place)
                    and not self.definition.governs_place(self.building, place)):
                return place
        return None

    def _on_location_fix(self, fix: EntityFix, previous_room: Optional[str]) -> None:
        """Check parked queries whenever an entity enters a new room."""
        if fix.room == previous_room:
            return
        triggered = [parked for parked in self._parked
                     if parked.query.when.matches_entry(fix.entity_key, fix.room)]
        if not triggered:
            return
        self._parked = [parked for parked in self._parked
                        if parked not in triggered]
        for parked in triggered:
            # An entry event landing on the expiry instant must resolve the
            # same way whether the trigger or the 10-unit sweep runs first
            # (they race at equal sim-times under partitioned schedulers).
            # With inclusive expiry the answer is always "expired": the
            # trigger path refuses exactly where the sweep would drop it.
            if parked.query.when.expired(self.now):
                self._expire_parked(parked)
                continue
            logger.info("%s: parked query %s triggered by %s entering %s",
                        self.name, parked.query.query_id,
                        fix.entity_key, fix.room)
            with self.network.obs.tracer.activate(parked.trace_ctx):
                self.execute_query(parked.query, parked.subscriber_hex)

    def _sweep_expired_queries(self) -> None:
        now = self.now
        expired = [parked for parked in self._parked
                   if parked.query.when.expired(now)]
        if not expired:
            return
        self._parked = [parked for parked in self._parked
                        if parked not in expired]
        for parked in expired:
            self._expire_parked(parked)

    def _expire_parked(self, parked: ParkedQuery) -> None:
        """Fail one expired parked query (sweep and trigger paths agree)."""
        self.queries_failed += 1
        self._log_query(parked.query.query_id, "expired")
        self.send(GUID.from_hex(parked.subscriber_hex), "query-result", {
            "query_id": parked.query.query_id,
            "ok": False,
            "error": "query expired while parked",
        })

    # --------------------------------------------------------------- execution

    def execute_query(self, query: Query, subscriber_hex: str) -> Optional[str]:
        """Execute one query now; returns an error string or None."""
        with self.network.obs.tracer.span_if_active(
                "cs.execute", range=self.definition.name,
                query=query.query_id, mode=query.mode.value) as span:
            error = self._execute(query, subscriber_hex)
            if span is not None:
                span.set(ok=error is None)
        return error

    def _execute(self, query: Query, subscriber_hex: str) -> Optional[str]:
        try:
            if query.mode == QueryMode.PROFILE:
                bound = self._execute_profile(query, subscriber_hex)
            elif query.mode == QueryMode.ADVERTISEMENT:
                bound = self._execute_advertisement(query, subscriber_hex)
            else:
                bound = self._execute_subscription(query, subscriber_hex)
        except NoProviderError as exc:
            self.queries_failed += 1
            self._send_failure(query, subscriber_hex, str(exc))
            self._log_query(query.query_id, "failed",
                            mode=query.mode.value, error=str(exc))
            return str(exc)
        except SCIError as exc:
            self.queries_failed += 1
            self._send_failure(query, subscriber_hex, str(exc))
            self._log_query(query.query_id, "failed",
                            mode=query.mode.value, error=str(exc))
            return str(exc)
        self.queries_executed += 1
        self._log_query(query.query_id, "executed",
                        mode=query.mode.value, bound=bound)
        return None

    def _send_result(self, query_id: str, subscriber_hex: str,
                     result: Dict[str, Any]) -> None:
        """Send a query-result under a ``cs.deliver`` span."""
        with self.network.obs.tracer.span_if_active(
                "cs.deliver", range=self.definition.name,
                query=query_id, ok=bool(result.get("ok"))):
            self.send(GUID.from_hex(subscriber_hex), "query-result", result)

    def _send_failure(self, query: Query, subscriber_hex: str, error: str) -> None:
        self._send_result(query.query_id, subscriber_hex, {
            "query_id": query.query_id, "ok": False, "error": error,
        })

    # -- profile mode -------------------------------------------------------------

    def _execute_profile(self, query: Query,
                         subscriber_hex: str) -> List[str]:
        matches = self._matching_records(query)
        self._send_result(query.query_id, subscriber_hex, {
            "query_id": query.query_id,
            "ok": True,
            "mode": "profile",
            "profiles": [record.profile.to_wire() for record in matches],
        })
        return [record.entity_hex for record in matches]

    def _matching_records(self, query: Query) -> List[RegistrationRecord]:
        where_rooms = self._where_rooms(query)
        matches = []
        for record in self.registrar.records():
            if not _what_matches(query.what, record):
                continue
            if where_rooms is not None:
                room = self._room_of(record)
                if room is not None and room not in where_rooms:
                    continue
            matches.append(record)
        matches.sort(key=lambda record: record.profile.name)
        return matches

    def _where_rooms(self, query: Query) -> Optional[Set[str]]:
        if query.where.is_constraint_free:
            return None
        return set(self.location.resolve_rooms(query.where, query.owner_id))

    def _room_of(self, record: RegistrationRecord) -> Optional[str]:
        room = record.profile.attributes.get("room")
        if room is not None:
            return room
        fix = self.location.locate(record.profile.name)
        return fix.room if fix else None

    # -- advertisement mode -----------------------------------------------------------

    def _execute_advertisement(self, query: Query,
                               subscriber_hex: str) -> List[str]:
        candidates = self._build_candidates(query)
        chosen = query.which.select(candidates)
        result: Dict[str, Any] = {
            "query_id": query.query_id,
            "ok": chosen is not None,
            "mode": "advertisement",
            # the full candidate view (including filtered-out entities, with
            # the reasons visible in their fields) — CAPA's UI can explain
            # "P3 behind a locked door" only if it sees P3
            "candidates": [_candidate_to_wire(candidate)
                           for candidate in candidates],
        }
        if chosen is None:
            result["error"] = "no candidate satisfies the Which clause"
            self.queries_failed += 1
        else:
            result["selected"] = _candidate_to_wire(chosen)
        self._send_result(query.query_id, subscriber_hex, result)
        return [chosen.entity_id] if chosen is not None else []

    def _build_candidates(self, query: Query) -> List[Candidate]:
        where_rooms = self._where_rooms(query)
        reference_room = self._reference_room(query)
        candidates = []
        for record in self.registrar.records():
            if not record.advertisements:
                continue
            if not _what_matches(query.what, record):
                continue
            room = self._room_of(record)
            if where_rooms is not None and room is not None and room not in where_rooms:
                continue
            available, queue_length = self._availability_of(record)
            distance, reachable = self._distance_to(reference_room, room,
                                                    query.owner_id)
            candidates.append(Candidate(
                entity_id=record.entity_hex,
                name=record.profile.name,
                room=room,
                distance=distance,
                reachable=reachable,
                available=available,
                queue_length=queue_length,
                quality=dict(record.profile.quality),
                payload={"advertisements": [ad.to_wire()
                                            for ad in record.advertisements]},
            ))
        candidates.sort(key=lambda candidate: candidate.name)
        return candidates

    def _reference_room(self, query: Query) -> Optional[str]:
        expr_text = query.which.location_argument
        if expr_text is None:
            return None
        try:
            expr = parse_location(expr_text)
            point = self.location.resolve_point(expr, query.owner_id)
            return self.building.nearest_room(point)
        except LocationError as exc:
            logger.warning("%s cannot resolve Which reference %r: %s",
                           self.name, expr_text, exc)
            return None

    def _availability_of(self, record: RegistrationRecord):
        """Live availability from the entity's retained status event."""
        event = self.mediator.retained_event("printer-status", "record",
                                             record.profile.name)
        if event is not None and isinstance(event.value, dict):
            state = event.value.get("state", "idle")
            queue_length = int(event.value.get("queue_length", 0))
            return state == "idle", queue_length
        return bool(record.profile.attributes.get("available", True)), 0

    def _distance_to(self, reference_room: Optional[str], room: Optional[str],
                     owner_id: str):
        """(walking distance, reachable) honouring the owner's door access."""
        if room is None:
            return float("inf"), True
        if reference_room is None:
            # No distance reference; reachability is all we can judge, from
            # any governed room (conservatively: from the first).
            return float("inf"), True
        distance = self.building.walking_distance(reference_room, room,
                                                  entity_key=owner_id)
        return distance, distance != float("inf")

    # -- subscription modes ----------------------------------------------------------------

    def _execute_subscription(self, query: Query,
                              subscriber_hex: str) -> List[str]:
        if query.what.kind != "pattern":
            raise QueryError(
                f"{query.mode.value} queries need a pattern What clause, "
                f"got {query.what}")
        wanted = query.what.pattern
        predicate = self._where_predicate(query)
        config = self.configurations.deliver(
            wanted,
            subscriber_hex=subscriber_hex,
            query_id=query.query_id,
            one_time=(query.mode == QueryMode.ONE_TIME),
            provider_predicate=predicate,
        )
        logger.info("%s: %s -> %s (depth %d, %d nodes)", self.name,
                    query.query_id, config.config_id,
                    config.plan.depth(), config.plan.node_count())
        return sorted(config.node_guids.values())

    def _where_predicate(self, query: Query):
        """Provider restrictions from Where plus any QoC contracts.

        A subscription's ``quality(attr<=x)`` criteria (future-work item 2)
        constrain which *providers* may enter the configuration: a contract
        on accuracy keeps the coarse W-LAN source out of a chain that
        promises 2-metre fixes. Contracts are checked against each
        provider's declared output quality.
        """
        where_rooms = self._where_rooms(query)
        contracts = query.which.quality_contracts()
        if where_rooms is None and not contracts:
            return None

        def predicate(profile: Profile) -> bool:
            if where_rooms is not None:
                room = profile.attributes.get("room")
                if room is not None and room not in where_rooms:
                    return False
            if contracts:
                # only data-producing profiles carry output quality;
                # processing templates (no declared quality) pass through
                # and the contract binds at the sensor level beneath them
                quality = dict(profile.quality)
                for output in profile.outputs:
                    quality.update(output.quality_map)
                if quality and not all(contract.quality_satisfied(quality)
                                       for contract in contracts):
                    return False
            return True

        return predicate

    # ------------------------------------------------------------------- misc

    def admit_host(self, host_id: str) -> int:
        """A mobile machine entered the range: offer registration to its
        components (Section 5: 'The network base station in the lift lobby
        detects Bob's PDA which is then registered with the infrastructure')."""
        service = self.range_services.get(host_id)
        if service is None:
            self.network.ensure_host(host_id)
            service = RangeService(self.guids.mint(), host_id, self.network,
                                   self.definition.name, self.registrar.guid)
            self.range_services[host_id] = service
        return service.offer_to_host()

    def expel_entity(self, entity_hex: str, reason: str = "left-range") -> bool:
        """Deregister an entity that physically left the range."""
        return self.registrar.remove(entity_hex, reason)

    def parked_queries(self) -> List[ParkedQuery]:
        return list(self._parked)

    # ---------------------------------------------------------------- ledger

    def _log_query(self, query_id: str, event: str, **fields) -> None:
        """One query-lifecycle entry on the rank-0 chain."""
        if self.ledger is not None:
            self.ledger.append(self.now, "query",
                               dict({"query_id": query_id, "event": event},
                                    **fields))

    def ledgers(self) -> List[ContextLedger]:
        """Every chain of this range's ledger family (root + shards)."""
        if self.ledger is None:
            return []
        chains = [self.ledger]
        for chain in self.mediator.ledgers():
            if chain is not self.ledger:
                chains.append(chain)
        return chains

    def ledger_entries(self, upto: Optional[float] = None) -> List[LedgerEntry]:
        """The family-wide merged entry stream (time <= ``upto`` if given)."""
        return merge_entries(self.ledgers(), upto)

    def ledger_projection(self, upto: Optional[float] = None) -> ProjectedState:
        """Rebuild the range's books from the ledger prefix up to ``upto``."""
        self._ledger_replays_counter.inc(range=self.definition.name)
        return ReplayProjector.from_entries(self.ledger_entries(upto)).state

    def as_of(self, time: float) -> AsOfView:
        """A historical read path: the range's books as they stood at T."""
        if self.ledger is None:
            raise SCIError(f"{self.name}: ledger disabled, no as-of reads")
        self._ledger_asof_counter.inc(range=self.definition.name)
        projector = ReplayProjector.from_entries(self.ledger_entries(time))
        return AsOfView(projector.state, self.registry, time)

    def explain(self, query_id: str) -> Optional[Dict[str, Any]]:
        """The audit trail of one query as hash-stable entry references."""
        return explain_query(self.ledger_entries(), query_id)

    def shutdown(self) -> None:
        self._expiry_sweeper.cancel()
        self.registrar.shutdown()
        for process in (self.mediator, self.profiles, self.location,
                        *self.range_services.values()):
            process.detach()
        self.detach()


# ---------------------------------------------------------------------- helpers

def _what_matches(what: WhatClause, record: RegistrationRecord) -> bool:
    profile = record.profile
    if what.kind == "named":
        return what.value in (profile.name, profile.entity_id.hex)
    if what.kind == "entity-type":
        if profile.attributes.get("device") == what.value:
            return True
        if profile.entity_class.value == what.value:
            return True
        return any(ad.service_name == what.value
                   or ad.service_name == f"{what.value}-service"
                   for ad in record.advertisements)
    # pattern: does the profile output something of the wanted type name?
    return profile.provides_type(what.pattern.type_name)


def _places_in(expr: LocationExpr) -> List[str]:
    """Concrete place names referenced by a Where expression."""
    places = []
    cursor: Optional[LocationExpr] = expr
    while cursor is not None:
        if cursor.kind == "room" and cursor.name:
            places.append(cursor.name)
        cursor = cursor.inner
    return places


def _candidate_to_wire(candidate: Candidate) -> Dict[str, Any]:
    return {
        "entity": candidate.entity_id,
        "name": candidate.name,
        "room": candidate.room,
        "distance": candidate.distance,
        "reachable": candidate.reachable,
        "available": candidate.available,
        "queue_length": candidate.queue_length,
        "advertisements": candidate.payload.get("advertisements", []),
    }

"""The Profile Manager Context Utility.

Section 3.1: "Profile Manager: Provides access and update abilities to
Context Entities Profiles." and "While active within a Range, the Range's
Context Server manages both the CE's Profile and Advertisements."

It is the store the Query Resolver's type matching and the Which clause's
candidate building read from. Remote Context Servers can read it with
``profile-request`` messages (used during handoff and for the PROFILE query
mode across ranges), and applications push attribute changes with
``profile-update`` messages — both are external API endpoints of this
module.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.ids import GUID
from repro.entities.advertisement import Advertisement
from repro.entities.profile import Profile
from repro.net.message import Message
from repro.net.transport import Network, Process

logger = logging.getLogger(__name__)


class ProfileManager(Process):
    """Profile and Advertisement storage for one range."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 range_name: str = "", ledger=None):
        super().__init__(guid, host_id, network,
                         name=f"profiles:{range_name or guid}")
        self._profiles: Dict[str, Profile] = {}
        self._advertisements: Dict[str, List[Advertisement]] = {}
        #: the range's root context ledger (rank 0); None disables recording
        self._ledger = ledger
        self.updates = 0
        #: bumped on membership changes; an index-invalidation feed for
        #: consumers keying off this store (mirrors ``Registrar.version``)
        self.version = 0

    # -- direct API ------------------------------------------------------------

    def add(self, profile: Profile,
            advertisements: Optional[List[Advertisement]] = None) -> None:
        self._profiles[profile.entity_id.hex] = profile
        self._advertisements[profile.entity_id.hex] = list(advertisements or [])
        self.updates += 1
        self.version += 1
        if self._ledger is not None:
            self._ledger.append(self.now, "profile-add", {
                "entity": profile.entity_id.hex,
                "profile": profile.to_wire(),
                "advertisements": [ad.to_wire()
                                   for ad in advertisements or []],
            })

    def remove(self, entity_hex: str) -> bool:
        self._advertisements.pop(entity_hex, None)
        removed = self._profiles.pop(entity_hex, None) is not None
        if removed:
            self.version += 1
            if self._ledger is not None:
                self._ledger.append(self.now, "profile-remove",
                                    {"entity": entity_hex})
        return removed

    def get(self, entity_hex: str) -> Optional[Profile]:
        return self._profiles.get(entity_hex)

    def by_name(self, name: str) -> Optional[Profile]:
        for profile in self._profiles.values():
            if profile.name == name:
                return profile
        return None

    def advertisements_of(self, entity_hex: str) -> List[Advertisement]:
        return list(self._advertisements.get(entity_hex, []))

    def all_profiles(self) -> List[Profile]:
        return list(self._profiles.values())

    def find(self, predicate: Callable[[Profile], bool]) -> List[Profile]:
        return [profile for profile in self._profiles.values()
                if predicate(profile)]

    def with_advertisements(self) -> List[Tuple[Profile, List[Advertisement]]]:
        return [
            (profile, self._advertisements.get(entity_hex, []))
            for entity_hex, profile in self._profiles.items()
            if self._advertisements.get(entity_hex)
        ]

    def update_attributes(self, entity_hex: str, attributes: Dict) -> bool:
        profile = self._profiles.get(entity_hex)
        if profile is None:
            return False
        profile.attributes.update(attributes)
        self.updates += 1
        if self._ledger is not None:
            self._ledger.append(self.now, "profile-update", {
                "entity": entity_hex,
                "attributes": dict(attributes),
            })
        return True

    def population(self) -> int:
        return len(self._profiles)

    # -- message protocol ----------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == "profile-request":
            self._handle_profile_request(message)
        elif message.kind == "profile-update":
            entity_hex = message.payload.get("entity", "")
            ok = self.update_attributes(entity_hex,
                                        message.payload.get("attributes", {}))
            self.reply(message, "profile-update-ack", {"ok": ok})
        else:
            logger.debug("%s ignoring %s", self.name, message)

    def _handle_profile_request(self, message: Message) -> None:
        entity_hex = message.payload.get("entity")
        name = message.payload.get("name")
        profile = None
        if entity_hex:
            profile = self.get(entity_hex)
        elif name:
            profile = self.by_name(name)
        if profile is None:
            self.reply(message, "profile-response", {"found": False})
            return
        self.reply(message, "profile-response", {
            "found": True,
            "profile": profile.to_wire(),
            "advertisements": [ad.to_wire() for ad in
                               self.advertisements_of(profile.entity_id.hex)],
        })

"""Hosts, latency models and the simulated network transport.

A :class:`Network` owns a set of :class:`Host` machines and a registry of
:class:`Process` endpoints (each addressed by GUID, each living on one host).
``Network.send`` computes a delivery latency from the configured latency
model, applies loss and partition rules, and schedules
``recipient.deliver`` (duplicate suppression, then ``on_message``) on the
shared :class:`~repro.net.sim.Scheduler`.

This is the substitution for the paper's Java/LAN prototype (see DESIGN.md):
the protocol logic above it is identical to what a socket deployment would
run, but time is simulated and every run is deterministic.
"""

from __future__ import annotations

import logging
import math
import random
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.errors import TransportError
from repro.core.ids import GUID, GuidFactory
from repro.net.eventlog import EventLog
from repro.net.message import BROADCAST, Message
from repro.net.partition import PartitionedScheduler
from repro.net.sim import Scheduler
from repro.net.stats import LaneStatsBuffer, MessageStats
from repro.obs.hub import Observability

logger = logging.getLogger(__name__)


@dataclass
class Host:
    """A machine in the deployment.

    ``position`` (metres, in the world's coordinate frame) feeds distance-
    based latency models and lets benchmarks co-locate hosts with physical
    ranges. ``up`` models whole-machine failure.
    """

    host_id: str
    position: Optional[Tuple[float, float]] = None
    up: bool = True


# -- latency models ----------------------------------------------------------


class LatencyModel:
    """Strategy interface: delivery latency for one message between hosts."""

    def latency(self, source: Host, destination: Host, rng: random.Random) -> float:
        raise NotImplementedError

    def min_latency(self) -> float:
        """Lower bound on *cross-host* latency — the partitioned
        substrate's conservative lookahead. Same-host deliveries are
        exempt (a host never crosses partitions to reach itself), so a
        model may return more than its same-host floor. The default 0.0
        makes ``partitions > 1`` an explicit error until a model opts in.
        """
        return 0.0


class FixedLatency(LatencyModel):
    """Constant latency; the ablation baseline (latency model "off")."""

    def __init__(self, value: float = 1.0):
        if value < 0:
            raise ValueError(f"negative latency: {value}")
        self.value = value

    def latency(self, source: Host, destination: Host, rng: random.Random) -> float:
        return self.value

    def min_latency(self) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from [low, high) — jittery LAN."""

    def __init__(self, low: float = 0.5, high: float = 2.0):
        if not 0 <= low <= high:
            raise ValueError(f"bad latency range: [{low}, {high})")
        self.low = low
        self.high = high

    def latency(self, source: Host, destination: Host, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def min_latency(self) -> float:
        return self.low


class DistanceLatency(LatencyModel):
    """Base latency plus a per-metre term from host positions."""

    def __init__(self, base: float = 0.5, per_unit: float = 0.01):
        self.base = base
        self.per_unit = per_unit

    def latency(self, source: Host, destination: Host, rng: random.Random) -> float:
        if source.position is None or destination.position is None:
            return self.base
        dx = source.position[0] - destination.position[0]
        dy = source.position[1] - destination.position[1]
        return self.base + self.per_unit * math.hypot(dx, dy)

    def min_latency(self) -> float:
        return self.base


class CampusLatency(LatencyModel):
    """The default model: cheap same-host, moderate same-site, jittered.

    Same host (loopback): ``local``. Different hosts: ``remote`` plus a
    uniform jitter term — roughly a switched campus LAN, which is the
    deployment the paper describes (Livingstone Tower).
    """

    def __init__(self, local: float = 0.05, remote: float = 1.0, jitter: float = 0.5):
        self.local = local
        self.remote = remote
        self.jitter = jitter

    def latency(self, source: Host, destination: Host, rng: random.Random) -> float:
        if source.host_id == destination.host_id:
            return self.local
        return self.remote + rng.uniform(0.0, self.jitter)

    def min_latency(self) -> float:
        # cross-host traffic always takes the remote branch; the cheaper
        # `local` floor applies only same-host, which never crosses lanes
        return self.remote


# -- processes ---------------------------------------------------------------

#: sentinel distinguishing "never seen" from "seen, no reply cached"
_UNSEEN = object()


class Process:
    """Base class for every middleware component that sends/receives messages.

    Subclasses implement :meth:`on_message`. A process is attached to a
    network (which assigns nothing — the process carries its own GUID and
    host id) and unattached on failure/departure.

    Inbound delivery goes through :meth:`deliver`, which suppresses
    duplicate arrivals keyed on ``(sender, msg_id)``: retransmitted requests
    (see :class:`repro.net.rpc.RequestManager`) reach :meth:`on_message`
    exactly once, and if this process already replied to the original, the
    cached reply is re-sent so a lost *reply* is regenerated without
    re-executing the handler. The cache is a bounded LRU.
    """

    #: bound on remembered (sender, msg_id) arrivals per process
    DEDUP_CACHE = 1024

    def __init__(self, guid: GUID, host_id: str, network: "Network", name: str = ""):
        self.guid = guid
        self.host_id = host_id
        self.network = network
        self.name = name or f"proc-{guid}"
        #: (sender, msg_id) -> cached reply Message (or None when the
        #: handler produced no reply); insertion-ordered for LRU eviction
        self._seen_messages: "OrderedDict[Tuple[GUID, int], Optional[Message]]" = OrderedDict()
        metrics = network.obs.metrics
        self._dedup_suppressed_counter = metrics.counter(
            "net.dedup.suppressed",
            "duplicate (sender, msg_id) arrivals dropped before the handler")
        self._dedup_replayed_counter = metrics.counter(
            "net.dedup.replayed_replies",
            "cached replies re-sent in response to duplicate requests")
        network.attach(self)

    # -- messaging helpers ---------------------------------------------------

    @property
    def scheduler(self) -> Scheduler:
        return self.network.scheduler

    @property
    def now(self) -> float:
        return self.network.scheduler.now

    def send(self, recipient: GUID, kind: str, payload: Optional[Dict[str, Any]] = None,
             reply_to: Optional[int] = None) -> Message:
        """Send a message; returns it (mainly so callers can keep msg_id)."""
        message = Message(
            sender=self.guid,
            recipient=recipient,
            kind=kind,
            payload=payload or {},
            reply_to=reply_to,
        )
        self.network.send(message)
        return message

    def reply(self, original: Message, kind: str, payload: Optional[Dict[str, Any]] = None) -> Message:
        """Respond to ``original``, correlating via ``reply_to``."""
        message = original.response(self.guid, kind, payload)
        key = (original.sender, original.msg_id)
        if key in self._seen_messages:
            # remember the reply so a retransmitted request regenerates it
            self._seen_messages[key] = message
        self.network.send(message)
        return message

    def deliver(self, message: Message) -> None:
        """Transport entry point: dedup by ``(sender, msg_id)``, then handle.

        A duplicate arrival never reaches :meth:`on_message`; if the first
        arrival produced a reply, a fresh copy of that reply is re-sent —
        the requester's own dedup then collapses double acks.
        """
        key = (message.sender, message.msg_id)
        cached = self._seen_messages.get(key, _UNSEEN)
        if cached is not _UNSEEN:
            self._seen_messages.move_to_end(key)
            self._dedup_suppressed_counter.inc()
            if cached is not None:
                self._dedup_replayed_counter.inc()
                resend = Message(
                    sender=cached.sender,
                    recipient=cached.recipient,
                    kind=cached.kind,
                    payload=cached.payload,
                    msg_id=cached.msg_id,
                    reply_to=cached.reply_to,
                )
                resend.trace = cached.trace
                self.network.send(resend)
            return
        self._seen_messages[key] = None
        while len(self._seen_messages) > self.DEDUP_CACHE:
            self._seen_messages.popitem(last=False)
        self.on_message(message)

    def detach(self) -> None:
        """Remove this process from the network (crash or clean departure)."""
        self.network.detach(self.guid)

    # -- to override ---------------------------------------------------------

    def on_message(self, message: Message) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} on {self.host_id}>"


class FunctionProcess(Process):
    """A process whose behaviour is a plain callable — handy in tests."""

    def __init__(self, guid: GUID, host_id: str, network: "Network",
                 handler: Callable[[Message], None], name: str = ""):
        super().__init__(guid, host_id, network, name)
        self._handler = handler

    def on_message(self, message: Message) -> None:
        self._handler(message)


# -- the network -------------------------------------------------------------


class Network:
    """The simulated transport connecting all hosts and processes.

    Failure model:

    * per-message drop probability (``drop_rate``),
    * partitions: each host belongs to a partition id; cross-partition
      messages are silently dropped (as on a real IP network),
    * host failure: messages to/from a downed host are dropped,
    * unknown recipient: counted as undeliverable and dropped (the paper's
      entities depart ranges; stale addresses are a normal condition).

    Silent drops mirror UDP-style delivery; request/reply users detect loss
    through :mod:`repro.net.rpc` timeouts.
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        latency_model: Optional[LatencyModel] = None,
        drop_rate: float = 0.0,
        seed: int = 0,
        partitions: Optional[int] = None,
        parallel: bool = False,
        host_rng_streams: Optional[bool] = None,
        event_log: Optional[EventLog] = None,
        sanitize: bool = False,
    ):
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate out of range: {drop_rate}")
        self.latency_model = latency_model or CampusLatency()
        if partitions is not None:
            # NOTE: substrate partitions (execution shards) are unrelated to
            # set_partitions() below, which models network splits (failures)
            if scheduler is not None:
                raise TransportError(
                    "pass either scheduler= or partitions=, not both")
            scheduler = PartitionedScheduler(
                partitions=partitions,
                lookahead=self.latency_model.min_latency(),
                parallel=parallel)
        self.scheduler = scheduler or Scheduler()
        psched = self.scheduler if isinstance(self.scheduler,
                                              PartitionedScheduler) else None
        self._psched = psched
        self.drop_rate = drop_rate
        self.seed = seed
        self.rng = random.Random(seed)
        if host_rng_streams is None:
            # partitioned runs need latency/drop draws decoupled from global
            # interleaving; the classic single-queue default stays untouched
            host_rng_streams = psched is not None
        self._host_rngs: Optional[Dict[str, random.Random]] = (
            {} if host_rng_streams else None)
        self.guids = GuidFactory(seed=seed ^ 0x5C1)
        #: the deployment-wide observability bundle (metrics/tracer/profiler)
        self.obs = Observability(self.scheduler)
        self.stats = MessageStats(registry=self.obs.metrics)
        #: optional canonical observable log (see repro.net.eventlog)
        self.event_log = event_log
        if event_log is not None:
            self.scheduler.event_log = event_log
            if psched is not None:
                event_log.bind(psched)
        if psched is not None:
            if psched.bound_network is not None:
                raise TransportError(
                    "a PartitionedScheduler can drive only one Network "
                    "(its lanes stage that network's stats)")
            psched.bound_network = self
            for lane in psched.contexts():
                lane.stats = LaneStatsBuffer()
            psched.on_quiesce(self._flush_lane_stats)
        self._hosts: Dict[str, Host] = {}
        self._processes: Dict[GUID, Process] = {}
        #: host id -> processes living there (insertion-ordered), so the
        #: per-host lookup in link-local broadcast is O(processes on host)
        #: rather than a scan over every process in the deployment
        self._processes_by_host: Dict[str, Dict[GUID, Process]] = {}
        self._partition_of: Dict[str, int] = {}
        #: opt-in LaneSan runtime race detector (see repro.analysis.lanesan):
        #: the lane-shared registries become ownership-asserting views that
        #: record (structure, field, lane, round) on every access
        self.sanitizer = None
        if sanitize:
            from repro.analysis.lanesan import LaneSan
            self.sanitizer = LaneSan(self.scheduler)
            self._hosts = self.sanitizer.wrap_dict(self._hosts, "net.hosts")
            self._processes = self.sanitizer.wrap_dict(
                self._processes, "net.processes")
            self._processes_by_host = self.sanitizer.wrap_dict(
                self._processes_by_host, "net.processes_by_host")
            self._partition_of = self.sanitizer.wrap_dict(
                self._partition_of, "net.partition_of")
            if self._host_rngs is not None:
                self._host_rngs = self.sanitizer.wrap_dict(
                    self._host_rngs, "net.host_rngs")
            self.obs.tracer.sanitize(self.sanitizer)

    # -- topology ------------------------------------------------------------

    def add_host(self, host_id: str, position: Optional[Tuple[float, float]] = None) -> Host:
        if host_id in self._hosts:
            raise TransportError(f"duplicate host: {host_id}")
        host = Host(host_id, position)
        self._hosts[host_id] = host
        if self._psched is not None:
            self._psched.register_host(host_id)
        if self._host_rngs is not None:
            # each source host draws latency/drop from its own stream, so
            # the draw sequence depends only on that host's send history —
            # partition-invariant by the substrate's ordering argument
            self._host_rngs[host_id] = random.Random(
                (self.seed << 32) ^ zlib.crc32(host_id.encode("utf-8")))
        return host

    def host(self, host_id: str) -> Host:
        try:
            return self._hosts[host_id]
        except KeyError:
            raise TransportError(f"unknown host: {host_id}") from None

    def ensure_host(self, host_id: str, position: Optional[Tuple[float, float]] = None) -> Host:
        if host_id in self._hosts:
            return self._hosts[host_id]
        return self.add_host(host_id, position)

    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    def fail_host(self, host_id: str) -> None:
        self.host(host_id).up = False

    def restore_host(self, host_id: str) -> None:
        self.host(host_id).up = True

    def set_partitions(self, groups: Iterable[Iterable[str]]) -> None:
        """Split hosts into partitions; hosts not mentioned keep partition 0."""
        self._partition_of = {}
        for index, group in enumerate(groups, start=1):
            for host_id in group:
                self.host(host_id)  # validate
                self._partition_of[host_id] = index

    def heal_partitions(self) -> None:
        self._partition_of = {}

    # -- endpoints -----------------------------------------------------------

    def attach(self, process: Process) -> None:
        if process.guid in self._processes:
            raise TransportError(f"duplicate process GUID: {process.guid}")
        self.host(process.host_id)  # must exist
        self._processes[process.guid] = process
        self._processes_by_host.setdefault(process.host_id, {})[process.guid] = process

    def detach(self, guid: GUID) -> None:
        process = self._processes.pop(guid, None)
        if process is not None:
            on_host = self._processes_by_host.get(process.host_id)
            if on_host is not None:
                on_host.pop(guid, None)

    def process(self, guid: GUID) -> Optional[Process]:
        return self._processes.get(guid)

    def processes_on(self, host_id: str) -> List[Process]:
        return list(self._processes_by_host.get(host_id, {}).values())

    # -- delivery ------------------------------------------------------------

    def _stat(self):
        """The stats sink for the current execution context.

        On a partitioned scheduler, lane callbacks record into their lane's
        staging buffer (cheap, race-free); everything else — the classic
        scheduler, external/setup code — records into the registry-backed
        stats directly. Buffers merge at quiesce in canonical lane order.
        """
        psched = self._psched
        if psched is None:
            return self.stats
        lane = psched.current_context
        return self.stats if lane is None else lane.stats

    def _flush_lane_stats(self) -> None:
        for lane in self._psched.contexts():
            buffer = lane.stats
            if buffer is not None and not buffer.empty:
                self.stats.merge_buffer(buffer)

    def send(self, message: Message) -> None:
        """Queue a message for delivery (or loss) per the failure model."""
        message.sent_at = self.scheduler.now
        if message.trace is None:
            # Stamp the sender's ambient span so downstream handling joins
            # the same trace (see repro.obs.tracing).
            message.trace = self.obs.tracer.current_context()
        stats = self._stat()
        stats.record_send(message.kind)
        sender = self._processes.get(message.sender)
        if sender is None:
            # A detached (crashed/stopped) process cannot transmit.
            stats.record_drop()
            logger.debug("dropping send from detached process: %s", message)
            return
        source_host = self._hosts.get(sender.host_id)

        if message.recipient == BROADCAST:
            self._broadcast(message, source_host)
            return

        recipient = self._processes.get(message.recipient)
        if recipient is None:
            stats.record_undeliverable()
            logger.debug("undeliverable %s", message)
            return
        self._dispatch(message, source_host, recipient)

    def _broadcast(self, message: Message, source_host: Optional[Host]) -> None:
        """Deliver to every other process on the sender's host.

        This models the paper's Figure-5 bootstrap: the Range Service
        "listens for CAAs or CEs starting up" on its machine — a link-local
        announcement, not a network-wide flood.
        """
        if source_host is None:
            self._stat().record_undeliverable()
            return
        for process in self.processes_on(source_host.host_id):
            if process.guid == message.sender:
                continue
            copy = Message(
                sender=message.sender,
                recipient=process.guid,
                kind=message.kind,
                payload=dict(message.payload),
                reply_to=message.reply_to,
            )
            copy.sent_at = message.sent_at
            copy.trace = message.trace
            self._dispatch(copy, source_host, process)

    def _dispatch(self, message: Message, source_host: Optional[Host], recipient: Process) -> None:
        destination_host = self._hosts[recipient.host_id]
        if source_host is None:
            self._stat().record_drop()
            return
        if not source_host.up or not destination_host.up:
            self._stat().record_drop()
            return
        if self._partition_of.get(source_host.host_id, 0) != self._partition_of.get(
            destination_host.host_id, 0
        ):
            self._stat().record_drop()
            return
        rng = (self.rng if self._host_rngs is None
               else self._host_rngs[source_host.host_id])
        latency = self.latency_model.latency(source_host, destination_host, rng)
        if self.drop_rate and rng.random() < self.drop_rate:
            self._stat().record_drop()
            return
        if self._psched is None:
            self.scheduler.schedule(latency, self._deliver, message,
                                    recipient.guid)
        else:
            self._psched.schedule_delivery(
                source_host.host_id, recipient.host_id, latency,
                self._deliver, message, recipient.guid)

    def _deliver(self, message: Message, recipient_guid: GUID) -> None:
        recipient = self._processes.get(recipient_guid)
        if recipient is None or not self._hosts[recipient.host_id].up:
            self._stat().record_undeliverable()
            return
        now = self.scheduler.now
        self._stat().record_delivery(recipient.host_id, now - message.sent_at)
        log = self.event_log
        if log is not None:
            log.record_delivery(recipient.host_id, now, message.kind,
                                str(message.sender), message.payload)
        trace = message.trace
        if trace is None:
            recipient.deliver(message)
            return
        tracer = self.obs.tracer
        frame = tracer.push_remote(trace)
        try:
            recipient.deliver(message)
        finally:
            tracer.pop_remote(frame)

    # -- convenience ---------------------------------------------------------

    def run_until_idle(self, max_time: Optional[float] = None) -> float:
        return self.scheduler.run_until_idle(max_time=max_time)

    def __repr__(self) -> str:
        return (
            f"Network(hosts={len(self._hosts)}, processes={len(self._processes)}, "
            f"t={self.scheduler.now:.3f})"
        )

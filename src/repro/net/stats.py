"""Traffic statistics used by the benchmarks.

The Figure-1 experiment needs per-host load to show that the hierarchical
baseline develops a root hotspot while the overlay does not, and delivery
latency samples to show the two are otherwise comparable. The stats object
is owned by the :class:`~repro.net.transport.Network` and updated on every
send/deliver/drop.

Since the :mod:`repro.obs` subsystem landed, :class:`MessageStats` is a
facade over a :class:`~repro.obs.metrics.MetricsRegistry` — the counters
live as ``net.messages.*`` series and the latency samples in the bounded
``net.delivery.latency`` histogram reservoir, so arbitrarily long runs keep
memory flat and any exporter sees the same numbers the benchmarks report.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry

#: canonical metric names backing the facade
SENT = "net.messages.sent"
DELIVERED = "net.messages.delivered"
DROPPED = "net.messages.dropped"
UNDELIVERABLE = "net.messages.undeliverable"
LATENCY = "net.delivery.latency"

_NET_METRICS = (SENT, DELIVERED, DROPPED, UNDELIVERABLE, LATENCY)


class MessageStats:
    """Counters and samples accumulated by a :class:`~repro.net.transport.Network`.

    Constructed bare (``MessageStats()``) it owns a private registry;
    constructed with one it records into shared, exportable series.
    ``latency_reservoir`` bounds how many raw latency samples are retained
    (count/sum/min/max stay exact regardless).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 latency_reservoir: int = 2048):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._sent = self.registry.counter(
            SENT, "messages entering the network", labels=("kind",))
        self._delivered = self.registry.counter(
            DELIVERED, "messages handled per host — the Figure-1 hotspot metric",
            labels=("host",))
        self._dropped = self.registry.counter(
            DROPPED, "messages lost to failure, partition or drop rate")
        self._undeliverable = self.registry.counter(
            UNDELIVERABLE, "messages to unknown/departed recipients")
        self._latency = self.registry.histogram(
            LATENCY, "end-to-end delivery latency (simulated time units)",
            reservoir_size=latency_reservoir)

    # -- recording ------------------------------------------------------------

    def record_send(self, kind: str) -> None:
        self._sent.inc(kind=kind)

    def record_delivery(self, host_id: str, latency: float) -> None:
        self._delivered.inc(host=host_id)
        self._latency.observe(latency)

    def record_drop(self) -> None:
        self._dropped.inc()

    def record_undeliverable(self) -> None:
        self._undeliverable.inc()

    def merge_buffer(self, buffer: "LaneStatsBuffer") -> None:
        """Fold one partition's staging buffer into the registry series.

        Counts, sums and min/max merge exactly; the latency reservoir
        receives the buffer's bounded sample slice (see
        :meth:`repro.obs.metrics.Reservoir.merge_summary`), so the
        *quantile sample* — never the totals — is the one statistic whose
        composition depends on the partition layout. The buffer is reset
        for reuse.
        """
        for kind, count in buffer.sent.items():
            self._sent.inc(count, kind=kind)
        for host, count in buffer.delivered.items():
            self._delivered.inc(count, host=host)
        if buffer.dropped:
            self._dropped.inc(buffer.dropped)
        if buffer.undeliverable:
            self._undeliverable.inc(buffer.undeliverable)
        if buffer.lat_count:
            self._latency.merge_summary(buffer.lat_count, buffer.lat_sum,
                                        buffer.lat_min, buffer.lat_max,
                                        buffer.samples)
        buffer.reset()

    def reset(self) -> None:
        self.registry.reset(_NET_METRICS)

    # -- the pre-obs reading API (kept verbatim for benchmarks/tests) ---------

    @property
    def sent(self) -> int:
        return int(self._sent.total())

    @property
    def delivered(self) -> int:
        return int(self._delivered.total())

    @property
    def dropped(self) -> int:
        return int(self._dropped.total())

    @property
    def undeliverable(self) -> int:
        return int(self._undeliverable.total())

    @property
    def by_kind(self) -> Counter:
        return Counter({kind: int(count)
                        for kind, count in self._sent.by_label().items()})

    @property
    def host_load(self) -> Counter:
        """Messages handled per host — the hotspot metric for Figure 1."""
        return Counter({host: int(count)
                        for host, count in self._delivered.by_label().items()})

    @property
    def latencies(self) -> List[float]:
        """Bounded reservoir sample of delivery latencies (see class doc)."""
        return self._latency.samples

    @property
    def latency_count(self) -> int:
        """Exact number of latency observations (exceeds len(latencies))."""
        return self._latency.count

    def latency_summary(self) -> Dict[str, float]:
        return self._latency.summary()

    @property
    def max_host_load(self) -> int:
        loads = self._delivered.by_label()
        return int(max(loads.values())) if loads else 0

    @property
    def mean_host_load(self) -> float:
        loads = self._delivered.by_label()
        if not loads:
            return 0.0
        return sum(loads.values()) / len(loads)

    def hotspot_ratio(self) -> float:
        """max/mean host load: ~1 means balanced, large means a bottleneck."""
        mean = self.mean_host_load
        return self.max_host_load / mean if mean else 0.0


class LaneStatsBuffer:
    """Per-partition staging for :class:`MessageStats`.

    Lane callbacks record here with plain dict/float updates — no label
    validation, no registry lookups, no shared mutable state between
    lanes — and the owning :class:`~repro.net.transport.Network` merges
    every buffer in canonical lane order when the scheduler quiesces, so
    registry totals are identical for every partition count and executor.
    This is also the transport's per-delivery fast path: the staging
    update is several times cheaper than a labelled counter ``inc``.
    """

    __slots__ = ("sent", "delivered", "dropped", "undeliverable",
                 "lat_count", "lat_sum", "lat_min", "lat_max", "samples",
                 "sample_cap")

    def __init__(self, sample_cap: int = 512):
        self.sample_cap = sample_cap
        self.sent: Dict[str, int] = {}
        self.delivered: Dict[str, int] = {}
        self.samples: List[float] = []
        self.reset()

    def reset(self) -> None:
        self.sent = {}
        self.delivered = {}
        self.dropped = 0
        self.undeliverable = 0
        self.lat_count = 0
        self.lat_sum = 0.0
        self.lat_min = math.inf
        self.lat_max = -math.inf
        self.samples = []

    # mirror of the MessageStats recording API, so call sites can treat
    # "the stats sink for the current context" polymorphically

    def record_send(self, kind: str) -> None:
        self.sent[kind] = self.sent.get(kind, 0) + 1

    def record_delivery(self, host_id: str, latency: float) -> None:
        self.delivered[host_id] = self.delivered.get(host_id, 0) + 1
        self.lat_count += 1
        self.lat_sum += latency
        if latency < self.lat_min:
            self.lat_min = latency
        if latency > self.lat_max:
            self.lat_max = latency
        if len(self.samples) < self.sample_cap:
            self.samples.append(latency)

    def record_drop(self) -> None:
        self.dropped += 1

    def record_undeliverable(self) -> None:
        self.undeliverable += 1

    @property
    def empty(self) -> bool:
        return not (self.sent or self.delivered or self.dropped
                    or self.undeliverable or self.lat_count)


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; ``fraction`` in [0, 1]."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """mean / p50 / p95 / max summary used by the bench reports."""
    if not samples:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "p50": percentile(samples, 0.50),
        "p95": percentile(samples, 0.95),
        "max": max(samples),
    }

"""Traffic statistics used by the benchmarks.

The Figure-1 experiment needs per-host load to show that the hierarchical
baseline develops a root hotspot while the overlay does not, and delivery
latency samples to show the two are otherwise comparable. The stats object
is owned by the :class:`~repro.net.transport.Network` and updated on every
send/deliver/drop.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class MessageStats:
    """Counters and samples accumulated by a :class:`~repro.net.transport.Network`."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    undeliverable: int = 0
    by_kind: Counter = field(default_factory=Counter)
    #: messages handled per host — the hotspot metric for Figure 1
    host_load: Counter = field(default_factory=Counter)
    #: end-to-end delivery latency samples (simulated time units)
    latencies: List[float] = field(default_factory=list)

    def record_send(self, kind: str) -> None:
        self.sent += 1
        self.by_kind[kind] += 1

    def record_delivery(self, host_id: str, latency: float) -> None:
        self.delivered += 1
        self.host_load[host_id] += 1
        self.latencies.append(latency)

    def record_drop(self) -> None:
        self.dropped += 1

    def record_undeliverable(self) -> None:
        self.undeliverable += 1

    def reset(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.undeliverable = 0
        self.by_kind.clear()
        self.host_load.clear()
        self.latencies.clear()

    @property
    def max_host_load(self) -> int:
        return max(self.host_load.values()) if self.host_load else 0

    @property
    def mean_host_load(self) -> float:
        if not self.host_load:
            return 0.0
        return sum(self.host_load.values()) / len(self.host_load)

    def hotspot_ratio(self) -> float:
        """max/mean host load: ~1 means balanced, large means a bottleneck."""
        mean = self.mean_host_load
        return self.max_host_load / mean if mean else 0.0


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; ``fraction`` in [0, 1]."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """mean / p50 / p95 / max summary used by the bench reports."""
    if not samples:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "p50": percentile(samples, 0.50),
        "p95": percentile(samples, 0.95),
        "max": max(samples),
    }

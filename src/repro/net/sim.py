"""The discrete-event scheduler that drives all simulated time.

Every latency, lease, heartbeat and movement step in the reproduction is a
callback scheduled here. The scheduler is a plain binary heap keyed by
``(time, sequence)`` — the monotonically increasing sequence number makes
same-instant events fire in schedule order, which is what keeps whole-system
runs bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Callable, List, Optional, Tuple


def callsite(fn: Callable) -> str:
    """A stable profiling label for a callback: ``Class.method`` or qualname."""
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{getattr(fn, '__name__', 'call')}"
    name = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", None)
    return name or repr(fn)


def timer_owner(fn: Callable) -> Optional[str]:
    """The host a timer callback is attributable to, or None.

    Resolved through the callback's bound instance: a ``host_id`` attribute
    directly (processes, components), or one level down via ``.owner`` (the
    :class:`repro.net.rpc.RequestManager` pattern). Only owner-resolvable
    timers appear in the canonical event log — anonymous closures and
    infrastructure callbacks are not per-host observables.
    """
    owner = getattr(fn, "__self__", None)
    if owner is None:
        return None
    host = getattr(owner, "host_id", None)
    if isinstance(host, str):
        return host
    inner = getattr(owner, "owner", None)
    host = getattr(inner, "host_id", None)
    return host if isinstance(host, str) else None


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is lazy: the heap entry stays put and is skipped when
    popped, which is O(1) and keeps the heap simple. ``_scheduler`` is set
    only while the timer is live in a heap; it lets :meth:`cancel` keep the
    scheduler's pending-event counter exact without scanning the heap.

    ``site`` and ``created_at`` feed the optional scheduler profiler: which
    code scheduled this event, and how long it dwelt in the heap. ``owner``
    is the host the callback belongs to (see :func:`timer_owner`); it is
    resolved only when an event log is attached, and stays None otherwise.

    ``_scheduler`` is duck-typed: any object with a ``_live`` counter works,
    which is how the partitioned substrate's lanes reuse this class.
    """

    __slots__ = ("when", "fn", "cancelled", "site", "created_at", "owner",
                 "_scheduler")

    def __init__(self, when: float, fn: Callable[[], None],
                 site: str = "", created_at: float = 0.0,
                 scheduler: "Optional[Scheduler]" = None):
        self.when = when
        self.fn = fn
        self.cancelled = False
        self.site = site
        self.created_at = created_at
        self.owner: Optional[str] = None
        self._scheduler = scheduler

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._live -= 1
            self._scheduler = None


class Scheduler:
    """A deterministic discrete-event loop.

    >>> sched = Scheduler()
    >>> fired = []
    >>> _ = sched.schedule(5.0, fired.append, "late")
    >>> _ = sched.schedule(1.0, fired.append, "early")
    >>> sched.run_until_idle()
    5.0
    >>> fired
    ['early', 'late']
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Timer]] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        #: live (non-cancelled) heap entries, maintained on push/pop/cancel
        #: so :attr:`pending` is O(1) instead of an O(N) heap scan
        self._live = 0
        #: optional :class:`repro.obs.profiling.SchedulerProfiler` (duck-typed
        #: ``record(site, lag, wall)``); None keeps the hot loop hook-free
        self.profiler = None
        #: optional :class:`repro.net.eventlog.EventLog`; when set, timer
        #: firings with a resolvable owner host are recorded as canonical
        #: observables (the transport records deliveries itself)
        self.event_log = None

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args, **kwargs) -> Timer:
        """Run ``fn(*args, **kwargs)`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args, **kwargs)

    def schedule_at(self, when: float, fn: Callable, *args, **kwargs) -> Timer:
        """Run ``fn(*args, **kwargs)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        if args or kwargs:
            bound = lambda: fn(*args, **kwargs)  # noqa: E731 - tiny closure
        else:
            bound = fn
        # attribute the event to the *original* callable, not the closure
        timer = Timer(when, bound, site=callsite(fn), created_at=self.now,
                      scheduler=self)
        if self.event_log is not None:
            timer.owner = timer_owner(fn)
        heapq.heappush(self._heap, (when, next(self._sequence), timer))
        self._live += 1
        return timer

    def call_soon(self, fn: Callable, *args, **kwargs) -> Timer:
        """Run a callback at the current instant, after pending same-time events."""
        return self.schedule(0.0, fn, *args, **kwargs)

    def schedule_periodic(self, interval: float, fn: Callable) -> Timer:
        """Run ``fn()`` every ``interval`` units until the returned timer is
        cancelled. The handle returned stays valid across re-arms."""
        if interval <= 0:
            raise ValueError(f"non-positive interval: {interval}")
        site = f"{callsite(fn)}[periodic]"
        handle = Timer(self.now + interval, lambda: None, site=site,
                       created_at=self.now)

        def tick():
            if handle.cancelled:
                return
            fn()
            if not handle.cancelled:
                inner = self.schedule(interval, tick)
                inner.site = site
                handle.when = inner.when

        inner = self.schedule(interval, tick)
        inner.site = site
        handle.when = inner.when
        return handle

    # -- running ------------------------------------------------------------

    def run_until_idle(self, max_time: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Drain the event heap; returns the final simulated time.

        ``max_time`` bounds how far the clock may advance (events beyond it
        stay queued); ``max_events`` is a runaway guard.
        """
        processed = 0
        while self._heap:
            when, _seq, timer = self._heap[0]
            if max_time is not None and when > max_time:
                self.now = max_time
                break
            heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            # the timer fires now: it is no longer pending, and a late
            # cancel() on its handle must not decrement the live counter
            self._live -= 1
            timer._scheduler = None
            self.now = when
            if self.event_log is not None and timer.owner is not None:
                self.event_log.record_timer(timer.owner, when, timer.site)
            if self.profiler is not None:
                started = perf_counter()
                timer.fn()
                self.profiler.record(timer.site, when - timer.created_at,
                                     perf_counter() - started)
            else:
                timer.fn()
            processed += 1
            self._events_processed += 1
            if processed >= max_events:
                raise RuntimeError(f"scheduler exceeded {max_events} events; runaway loop?")
        if max_time is not None and self.now < max_time:
            self.now = max_time  # time passes even when nothing is scheduled
        return self.now

    def run_for(self, duration: float) -> float:
        """Advance the clock ``duration`` units, firing due events."""
        return self.run_until_idle(max_time=self.now + duration)

    def run_until(self, when: float) -> float:
        """Advance the clock to absolute time ``when``, firing due events."""
        if when < self.now:
            raise ValueError(f"cannot run backwards: {when} < {self.now}")
        return self.run_until_idle(max_time=when)

    # -- introspection ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued (O(1))."""
        return self._live

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def __repr__(self) -> str:
        return f"Scheduler(now={self.now:.3f}, pending={self.pending})"

"""Messages exchanged between middleware processes.

Every interaction in the reproduction — registration, discovery, event
publication, query submission, overlay routing — is a :class:`Message`. The
``kind`` string is the protocol verb ("register", "publish", "query", ...),
``payload`` the verb-specific body. ``reply_to`` correlates responses with
requests (see :mod:`repro.net.rpc`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.ids import GUID

#: Sentinel recipient meaning "every process on the destination host".
BROADCAST = GUID((1 << 128) - 1)

_message_ids = itertools.count(1)


@dataclass
class Message:
    """One unit of communication between two :class:`~repro.net.transport.Process` objects."""

    sender: GUID
    recipient: GUID
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    reply_to: Optional[int] = None
    #: Simulated time the message entered the network (set by the transport).
    sent_at: float = 0.0
    #: Number of overlay hops taken so far (incremented by overlay nodes).
    hops: int = 0
    #: Trace-context metadata ({"trace": ..., "span": ...}): the transport
    #: stamps the sender's ambient span here and re-activates it at delivery,
    #: so spans opened while handling this message become its children.
    trace: Optional[Dict[str, str]] = None

    def response(self, sender: GUID, kind: str, payload: Optional[Dict[str, Any]] = None) -> "Message":
        """Build a reply to this message, correlated via ``reply_to``."""
        return Message(
            sender=sender,
            recipient=self.sender,
            kind=kind,
            payload=payload or {},
            reply_to=self.msg_id,
        )

    def __str__(self) -> str:
        arrow = f"{self.sender} -> {self.recipient}"
        suffix = f" (re:{self.reply_to})" if self.reply_to is not None else ""
        return f"[{self.kind}] {arrow}{suffix}"

"""Request/response correlation over the message transport.

The paper's prototype used "a combination of distributed events and point to
point communication". The point-to-point half needs request/reply semantics
(register -> ack, query -> results, profile request -> profile). The
:class:`RequestManager` gives a :class:`~repro.net.transport.Process` that
capability: it assigns callbacks to outgoing requests and routes replies (or
timeouts) back to them.

Reliability: the transport drops silently (UDP-style), so a request can be
retransmitted up to a bounded budget (``max_retries``) with exponential
backoff and deterministic jitter before ``on_timeout`` fires. Retransmitted
copies carry the *original* ``msg_id`` — the receiver's ``(sender, msg_id)``
dedup cache (see :meth:`repro.net.transport.Process.deliver`) suppresses the
duplicates and replays the cached reply, so at-least-once retransmission
plus receiver dedup yields exactly-once observable delivery. The default
budget is zero retries, preserving plain fire-and-expire semantics for
callers that implement their own policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.core.ids import GUID
from repro.net.message import Message
from repro.net.sim import Timer
from repro.net.transport import Process


@dataclass
class PendingRequest:
    """Book-keeping for one in-flight request."""

    msg_id: int
    kind: str
    on_reply: Callable[[Message], None]
    on_timeout: Optional[Callable[[], None]] = None
    timer: Optional[Timer] = None
    #: set when resolved either way; late replies to a timed-out request are
    #: dropped rather than invoking the callback twice.
    resolved: bool = False
    #: the original wire message, kept so retransmissions reuse its msg_id
    message: Optional[Message] = None
    #: transmissions so far (the initial send counts as 1)
    attempts: int = 1
    max_retries: int = 0
    base_timeout: float = 0.0


class RequestManager:
    """Correlates replies with requests for one owning process.

    Usage: the owner calls :meth:`request` instead of ``Process.send`` and
    gives its :meth:`dispatch_reply` first refusal on every inbound message::

        def on_message(self, message):
            if self.requests.dispatch_reply(message):
                return
            ...  # normal protocol handling
    """

    def __init__(self, owner: Process, default_timeout: float = 50.0,
                 max_retries: int = 0, backoff_factor: float = 2.0,
                 jitter: float = 0.25):
        if default_timeout <= 0:
            raise ValueError(f"non-positive timeout: {default_timeout}")
        if max_retries < 0:
            raise ValueError(f"negative retry budget: {max_retries}")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1: {backoff_factor}")
        self.owner = owner
        self.default_timeout = default_timeout
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        self.jitter = jitter
        # jitter stream seeded from the owner's GUID: deterministic per
        # process, and independent of the network's latency/drop stream
        self._rng = random.Random(owner.guid.value & 0xFFFFFFFFFFFF)
        self._pending: Dict[int, PendingRequest] = {}
        self.timeouts = 0
        self.completed = 0
        self.retries = 0
        metrics = owner.network.obs.metrics
        self._retry_attempts_counter = metrics.counter(
            "net.retry.attempts", "request retransmissions, by request kind",
            labels=("kind",))
        self._retry_exhausted_counter = metrics.counter(
            "net.retry.exhausted",
            "requests whose whole retry budget expired unanswered",
            labels=("kind",))
        self._retry_recovered_counter = metrics.counter(
            "net.retry.recovered",
            "requests answered only after at least one retransmission",
            labels=("kind",))

    def request(
        self,
        recipient: GUID,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        on_reply: Optional[Callable[[Message], None]] = None,
        on_timeout: Optional[Callable[[], None]] = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> PendingRequest:
        """Send ``kind``/``payload`` to ``recipient`` expecting a reply.

        ``retries`` overrides the manager's ``max_retries`` budget for this
        one request.
        """
        message = self.owner.send(recipient, kind, payload)
        pending = PendingRequest(
            msg_id=message.msg_id,
            kind=kind,
            on_reply=on_reply or (lambda _reply: None),
            on_timeout=on_timeout,
            message=message,
            max_retries=self.max_retries if retries is None else retries,
        )
        pending.base_timeout = timeout if timeout is not None else self.default_timeout
        pending.timer = self.owner.scheduler.schedule(
            pending.base_timeout, self._expire, pending)
        self._pending[message.msg_id] = pending
        return pending

    def dispatch_reply(self, message: Message) -> bool:
        """Consume ``message`` if it answers a pending request.

        Returns True when consumed; the owner should then stop processing it.
        """
        if message.reply_to is None:
            return False
        pending = self._pending.pop(message.reply_to, None)
        if pending is None or pending.resolved:
            return False
        pending.resolved = True
        if pending.timer is not None:
            pending.timer.cancel()
        self.completed += 1
        if pending.attempts > 1:
            self._retry_recovered_counter.inc(kind=pending.kind)
        pending.on_reply(message)
        return True

    def cancel_all(self) -> None:
        """Drop every in-flight request without firing callbacks (shutdown)."""
        for pending in self._pending.values():
            pending.resolved = True
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def _expire(self, pending: PendingRequest) -> None:
        if pending.resolved:
            return
        if pending.attempts <= pending.max_retries:
            self._retransmit(pending)
            return
        pending.resolved = True
        self._pending.pop(pending.msg_id, None)
        self.timeouts += 1
        if pending.max_retries:
            self._retry_exhausted_counter.inc(kind=pending.kind)
        if pending.on_timeout is not None:
            pending.on_timeout()

    def _retransmit(self, pending: PendingRequest) -> None:
        """Send a fresh copy carrying the original msg_id, grow the window."""
        pending.attempts += 1
        self.retries += 1
        self._retry_attempts_counter.inc(kind=pending.kind)
        original = pending.message
        clone = Message(
            sender=original.sender,
            recipient=original.recipient,
            kind=original.kind,
            payload=original.payload,
            msg_id=original.msg_id,
            reply_to=original.reply_to,
        )
        clone.trace = original.trace
        self.owner.network.send(clone)
        window = pending.base_timeout * (
            self.backoff_factor ** (pending.attempts - 1))
        if self.jitter:
            window *= 1.0 + self.jitter * self._rng.random()
        pending.timer = self.owner.scheduler.schedule(
            window, self._expire, pending)

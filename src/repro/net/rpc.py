"""Request/response correlation over the message transport.

The paper's prototype used "a combination of distributed events and point to
point communication". The point-to-point half needs request/reply semantics
(register -> ack, query -> results, profile request -> profile). The
:class:`RequestManager` gives a :class:`~repro.net.transport.Process` that
capability: it assigns callbacks to outgoing requests and routes replies (or
timeouts, since the transport drops silently) back to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.ids import GUID
from repro.net.message import Message
from repro.net.sim import Timer
from repro.net.transport import Process


@dataclass
class PendingRequest:
    """Book-keeping for one in-flight request."""

    msg_id: int
    kind: str
    on_reply: Callable[[Message], None]
    on_timeout: Optional[Callable[[], None]] = None
    timer: Optional[Timer] = None
    #: set when resolved either way; late replies to a timed-out request are
    #: dropped rather than invoking the callback twice.
    resolved: bool = False


class RequestManager:
    """Correlates replies with requests for one owning process.

    Usage: the owner calls :meth:`request` instead of ``Process.send`` and
    gives its :meth:`dispatch_reply` first refusal on every inbound message::

        def on_message(self, message):
            if self.requests.dispatch_reply(message):
                return
            ...  # normal protocol handling
    """

    def __init__(self, owner: Process, default_timeout: float = 50.0):
        if default_timeout <= 0:
            raise ValueError(f"non-positive timeout: {default_timeout}")
        self.owner = owner
        self.default_timeout = default_timeout
        self._pending: Dict[int, PendingRequest] = {}
        self.timeouts = 0
        self.completed = 0

    def request(
        self,
        recipient: GUID,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        on_reply: Optional[Callable[[Message], None]] = None,
        on_timeout: Optional[Callable[[], None]] = None,
        timeout: Optional[float] = None,
    ) -> PendingRequest:
        """Send ``kind``/``payload`` to ``recipient`` expecting a reply."""
        message = self.owner.send(recipient, kind, payload)
        pending = PendingRequest(
            msg_id=message.msg_id,
            kind=kind,
            on_reply=on_reply or (lambda _reply: None),
            on_timeout=on_timeout,
        )
        window = timeout if timeout is not None else self.default_timeout
        pending.timer = self.owner.scheduler.schedule(window, self._expire, pending)
        self._pending[message.msg_id] = pending
        return pending

    def dispatch_reply(self, message: Message) -> bool:
        """Consume ``message`` if it answers a pending request.

        Returns True when consumed; the owner should then stop processing it.
        """
        if message.reply_to is None:
            return False
        pending = self._pending.pop(message.reply_to, None)
        if pending is None or pending.resolved:
            return False
        pending.resolved = True
        if pending.timer is not None:
            pending.timer.cancel()
        self.completed += 1
        pending.on_reply(message)
        return True

    def cancel_all(self) -> None:
        """Drop every in-flight request without firing callbacks (shutdown)."""
        for pending in self._pending.values():
            pending.resolved = True
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def _expire(self, pending: PendingRequest) -> None:
        if pending.resolved:
            return
        pending.resolved = True
        self._pending.pop(pending.msg_id, None)
        self.timeouts += 1
        if pending.on_timeout is not None:
            pending.on_timeout()

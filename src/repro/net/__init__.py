"""Deterministic discrete-event network substrate.

The authors prototyped SCI in Java over a "hybrid communication model (a
combination of distributed events and point to point communication)". We
reproduce that over a simulated network so every experiment is deterministic:
components are :class:`Process` objects attached to :class:`Host` machines,
all interaction is message passing through a :class:`Network`, and time is
driven by a :class:`Scheduler` — or, at scale, by a
:class:`PartitionedScheduler` that shards hosts across per-partition event
queues while keeping the observable event log (:class:`EventLog`)
bit-identical across partition counts and executors.
"""

from repro.net.sim import Scheduler, Timer
from repro.net.partition import CausalityError, PartitionedScheduler
from repro.net.eventlog import EventLog
from repro.net.message import Message, BROADCAST
from repro.net.transport import (
    Host,
    Network,
    Process,
    FixedLatency,
    UniformLatency,
    DistanceLatency,
    CampusLatency,
)
from repro.net.rpc import RequestManager, PendingRequest
from repro.net.stats import LaneStatsBuffer, MessageStats, summarize

__all__ = [
    "Scheduler",
    "Timer",
    "PartitionedScheduler",
    "CausalityError",
    "EventLog",
    "Message",
    "BROADCAST",
    "Host",
    "Network",
    "Process",
    "FixedLatency",
    "UniformLatency",
    "DistanceLatency",
    "CampusLatency",
    "RequestManager",
    "PendingRequest",
    "LaneStatsBuffer",
    "MessageStats",
    "summarize",
]

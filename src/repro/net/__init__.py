"""Deterministic discrete-event network substrate.

The authors prototyped SCI in Java over a "hybrid communication model (a
combination of distributed events and point to point communication)". We
reproduce that over a simulated network so every experiment is deterministic:
components are :class:`Process` objects attached to :class:`Host` machines,
all interaction is message passing through a :class:`Network`, and time is
driven by a :class:`Scheduler`.
"""

from repro.net.sim import Scheduler, Timer
from repro.net.message import Message, BROADCAST
from repro.net.transport import (
    Host,
    Network,
    Process,
    FixedLatency,
    UniformLatency,
    DistanceLatency,
    CampusLatency,
)
from repro.net.rpc import RequestManager, PendingRequest
from repro.net.stats import MessageStats, summarize

__all__ = [
    "Scheduler",
    "Timer",
    "Message",
    "BROADCAST",
    "Host",
    "Network",
    "Process",
    "FixedLatency",
    "UniformLatency",
    "DistanceLatency",
    "CampusLatency",
    "RequestManager",
    "PendingRequest",
    "MessageStats",
    "summarize",
]

"""Partitioned simulation substrate: sharded event queues, conservative lookahead.

The classic :class:`~repro.net.sim.Scheduler` is one global heap — the scale
ceiling named by ROADMAP item 3. This module shards the event population
across per-partition queues ("lanes"): every host is consistently assigned
to one lane (``crc32(host_id) % partitions``), each lane owns the events
that execute on its hosts, and lanes advance in **horizon rounds** bounded
by a conservative lookahead (the minimum cross-host link latency). Within
a round every lane may run all its events strictly below
``min(lane head times) + lookahead``, because any message one of those
events sends arrives at least a full lookahead later — i.e. at or beyond
the horizon, where the receiving lane has not yet advanced. Cross-partition
messages created during a parallel round are staged in per-lane outboxes
and exchanged at the round barrier; the serial executor pushes them
directly, which is safe for the same reason.

Determinism is the load-bearing property. Every event carries a canonical
key ``(when, origin_rank, origin_seq)``:

* ``origin_rank`` — the dense registration index of the host whose
  execution *created* the event (the sender of a delivery, the scheduling
  host of a timer), or :data:`EXTERNAL_RANK` for events created outside any
  host context;
* ``origin_seq`` — a per-origin counter, incremented on every event that
  origin creates.

Both components depend only on the originating host's own execution
history, which (by induction) is identical for every partition count — so
the key is partition-invariant, and each lane popping its heap in key
order yields the same per-host event sequence whether there is one lane or
eight, serial or parallel. The differential harness under
``tests/parallel/`` asserts exactly this.

Events created outside any host context — test drivers, the chaos
injector — go to a **control lane** executed as a global barrier: every
lane has quiesced strictly below the control event's time before it runs,
so it may mutate any host's state (fail a host, change drop rates)
without racing a lane. Control events sort before host events at time
ties in every partitioning.

Two runtime guards turn ordering mistakes into errors instead of silent
divergence (:class:`CausalityError`): a host may only send while its own
lane (or the control lane) is executing, and a cross-partition event may
never be injected below the current round horizon.
"""

from __future__ import annotations

import heapq
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.net.sim import Timer, callsite, timer_owner

_INF = float("inf")

#: origin rank for events created outside any host context (setup code, the
#: chaos injector, test drivers). Sorts before every host rank, so control
#: events win time ties in every partitioning.
EXTERNAL_RANK = -1

#: profiler site label for fast-lane deliveries (no Timer handle to carry one)
_DELIVERY_SITE = "Network._deliver"


class CausalityError(RuntimeError):
    """A cross-partition event was injected outside the horizon exchange.

    Raised when code tries to smuggle work across partitions in a way that
    would be ordered differently under a different partition count: a send
    issued from a lane that does not own the sending host, or a cross-lane
    event below the current round horizon (a lookahead violation).
    """


class _Lane:
    """One event queue: a shard of hosts, or the control lane (index -1).

    Besides the heap, a lane carries the per-context ambient state that a
    single global scheduler would keep as singletons: the tracer frame
    stack, the event-log buffer and the transport's stats staging buffer.
    Parallel rounds give each lane its own thread, so this is what makes
    the observability layer race-free without locks on every record.
    """

    __slots__ = ("index", "heap", "now", "_live", "current_rank",
                 "trace_stack", "log_buffer", "stats", "outbox", "processed")

    def __init__(self, index: int):
        self.index = index
        self.heap: List[tuple] = []
        self.now = 0.0
        #: live (non-cancelled) entries; Timer.cancel decrements this via
        #: its duck-typed ``_scheduler`` reference
        self._live = 0
        self.current_rank = EXTERNAL_RANK
        self.trace_stack: List[Any] = []
        self.log_buffer: List[tuple] = []
        self.stats: Any = None
        self.outbox: List[tuple] = []
        self.processed = 0


class PartitionedScheduler:
    """Drop-in scheduler sharding hosts across per-partition event queues.

    ``partitions=1`` (the default) degenerates to a single lane with an
    unbounded horizon — one heap, popped in key order, exactly the classic
    semantics. ``parallel=True`` (with ``partitions > 1``) runs each
    round's lane slices on a thread pool; a per-callback lock keeps shared
    model state (directories, registries crossing hosts) safe, so the
    parallel executor is an architectural validation of the exchange
    protocol rather than a single-machine speedup.

    ``lookahead`` must be a positive lower bound on cross-host delivery
    latency whenever ``partitions > 1`` — the transport derives it from
    the latency model's :meth:`~repro.net.transport.LatencyModel.min_latency`.

    Heap entries are ``(when, origin_rank, origin_seq, owner_rank, timer,
    fn, args)``. ``(when, origin_rank, origin_seq)`` is the canonical,
    partition-invariant ordering key (unique, so comparison never reaches
    the callable); ``owner_rank`` is the host whose state the callback
    touches and becomes the executing context's current rank. Deliveries
    scheduled through :meth:`schedule_delivery` carry ``timer=None`` — no
    handle, no closure, no callsite formatting — which is the fast path
    that pays for the substrate's bookkeeping.
    """

    def __init__(self, partitions: int = 1, lookahead: float = 0.0,
                 parallel: bool = False):
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1: {partitions}")
        if partitions > 1 and lookahead <= 0.0:
            raise ValueError(
                "partitioned execution needs a positive lookahead (minimum "
                f"cross-host latency), got {lookahead!r}")
        self.partitions = partitions
        self.lookahead = lookahead
        self.parallel = bool(parallel) and partitions > 1
        self._lanes = [_Lane(index) for index in range(partitions)]
        self._control = _Lane(-1)
        self._tls = threading.local()
        self._now = 0.0
        self._host_rank: Dict[str, int] = {}
        self._rank_lane: List[_Lane] = []
        self._origin_seq: List[int] = []
        self._external_seq = 0
        self._external_stack: List[Any] = []
        self._round_horizon = _INF
        self._in_parallel_round = False
        self._round_index = 0
        self._events_processed = 0
        self._quiesce_callbacks: List[Callable[[], None]] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._callback_lock = threading.Lock() if self.parallel else None
        #: duck-typed like Scheduler.profiler / Scheduler.event_log
        self.profiler = None
        self.event_log = None
        #: the Network this substrate is bound to (at most one; the lanes'
        #: staging buffers flush into that network's stats)
        self.bound_network = None

    # -- topology ------------------------------------------------------------

    def register_host(self, host_id: str) -> int:
        """Assign ``host_id`` to a lane; returns its dense origin rank.

        Assignment is consistent — ``crc32(host_id) % partitions`` — so a
        host lands on the same lane in every run, and ranks follow
        registration order, which callers keep deterministic (hosts are
        added during setup).
        """
        rank = self._host_rank.get(host_id)
        if rank is not None:
            return rank
        rank = len(self._rank_lane)
        self._host_rank[host_id] = rank
        lane = self._lanes[zlib.crc32(host_id.encode("utf-8")) % self.partitions]
        self._rank_lane.append(lane)
        self._origin_seq.append(0)
        return rank

    def lane_of(self, host_id: str) -> int:
        """The lane index ``host_id`` is sharded onto."""
        return self._rank_lane[self._host_rank[host_id]].index

    def contexts(self) -> List[_Lane]:
        """Control lane first, then host lanes — the canonical merge order
        for log buffers and stats staging (control events run before host
        events at time ties, so their records must concatenate first)."""
        return [self._control] + self._lanes

    # -- time and context ----------------------------------------------------

    @property
    def now(self) -> float:
        """Lane-local clock inside a callback, global clock outside."""
        lane = getattr(self._tls, "lane", None)
        return self._now if lane is None else lane.now

    @property
    def current_context(self) -> Optional[_Lane]:
        """The lane executing on this thread (None outside the run loop)."""
        return getattr(self._tls, "lane", None)

    @property
    def round_index(self) -> int:
        """Monotone count of horizon rounds and control barriers executed.

        Two accesses with different round indices are separated by a
        global barrier; the LaneSan sanitizer uses this to scope its
        same-round conflict window."""
        return self._round_index

    def _next_seq(self, rank: int) -> int:
        if rank < 0:
            seq = self._external_seq
            self._external_seq = seq + 1
        else:
            seq = self._origin_seq[rank]
            self._origin_seq[rank] = seq + 1
        return seq

    # -- scheduling (Timer-compatible API) -----------------------------------

    def schedule(self, delay: float, fn: Callable, *args, **kwargs) -> Timer:
        """Run ``fn(*args, **kwargs)`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args, **kwargs)

    def schedule_at(self, when: float, fn: Callable, *args, **kwargs) -> Timer:
        """Run ``fn(*args, **kwargs)`` at absolute simulated time ``when``.

        From inside a host callback the timer stays on that host's lane
        (keyed by the host's rank); from control or external context it
        goes to the control lane and runs as a global barrier.
        """
        lane = getattr(self._tls, "lane", None)
        base = self._now if lane is None else lane.now
        if when < base:
            raise ValueError(f"cannot schedule in the past: {when} < {base}")
        if args or kwargs:
            bound = lambda: fn(*args, **kwargs)  # noqa: E731 - tiny closure
        else:
            bound = fn
        if lane is None or lane.index < 0 or lane.current_rank < 0:
            rank, target = EXTERNAL_RANK, self._control
        else:
            rank, target = lane.current_rank, lane
        timer = Timer(when, bound, site=callsite(fn), created_at=base,
                      scheduler=target)
        if self.event_log is not None:
            timer.owner = timer_owner(fn)
        heapq.heappush(target.heap,
                       (when, rank, self._next_seq(rank), rank, timer,
                        bound, ()))
        target._live += 1
        return timer

    def call_soon(self, fn: Callable, *args, **kwargs) -> Timer:
        """Run a callback at the current instant, after pending same-time events."""
        return self.schedule(0.0, fn, *args, **kwargs)

    def schedule_periodic(self, interval: float, fn: Callable) -> Timer:
        """Run ``fn()`` every ``interval`` units until the returned timer is
        cancelled. The handle returned stays valid across re-arms."""
        if interval <= 0:
            raise ValueError(f"non-positive interval: {interval}")
        site = f"{callsite(fn)}[periodic]"
        handle = Timer(self.now + interval, lambda: None, site=site,
                       created_at=self.now)

        def tick():
            if handle.cancelled:
                return
            fn()
            if not handle.cancelled:
                inner = self.schedule(interval, tick)
                inner.site = site
                handle.when = inner.when

        inner = self.schedule(interval, tick)
        inner.site = site
        handle.when = inner.when
        return handle

    def schedule_delivery(self, source_host: str, target_host: str,
                          delay: float, fn: Callable, *args) -> None:
        """Transport fast path: run ``fn(*args)`` on the target host's lane.

        The canonical key uses the *sender's* rank and counter — both
        functions of the sender's own execution history, hence partition-
        invariant. No Timer handle is minted (deliveries are never
        cancelled), so the entry is a bare heap tuple.

        Raises :class:`CausalityError` when the sending host does not
        belong to the executing lane, or when a cross-lane delivery would
        land below the current round horizon (a lookahead violation).
        """
        src_rank = self._host_rank[source_host]
        tgt_rank = self._host_rank[target_host]
        lane = getattr(self._tls, "lane", None)
        if lane is None:
            base = self._now
        else:
            base = lane.now
            if lane.index >= 0 and self._rank_lane[src_rank] is not lane:
                raise CausalityError(
                    f"send from host {source_host!r} (lane "
                    f"{self._rank_lane[src_rank].index}) issued while lane "
                    f"{lane.index} was executing; cross-partition sends must "
                    "go through the horizon exchange")
        when = base + delay
        target = self._rank_lane[tgt_rank]
        entry = (when, src_rank, self._next_seq(src_rank), tgt_rank, None,
                 fn, args)
        if lane is not None and lane.index >= 0 and target is not lane:
            if when < self._round_horizon:
                raise CausalityError(
                    f"cross-partition delivery at t={when:.6f} below the "
                    f"round horizon {self._round_horizon:.6f}; the latency "
                    "model broke its min_latency() promise")
            if self._in_parallel_round:
                # staged: merged into the target heap at the round barrier
                lane.outbox.append((target, entry))
                return
        heapq.heappush(target.heap, entry)
        target._live += 1

    # -- running -------------------------------------------------------------

    def run_until_idle(self, max_time: Optional[float] = None,
                       max_events: int = 10_000_000) -> float:
        """Drain all lanes in horizon rounds; returns the final time.

        Same contract as :meth:`repro.net.sim.Scheduler.run_until_idle`:
        events beyond ``max_time`` stay queued, ``max_events`` is a
        runaway guard. Quiesce callbacks (stats staging flushes) run just
        before returning, so observers see merged totals.
        """
        processed = 0
        lanes = self._lanes
        control = self._control
        single = self.partitions == 1
        while True:
            t_ctl = control.heap[0][0] if control.heap else _INF
            t_lanes = _INF
            for lane in lanes:
                if lane.heap and lane.heap[0][0] < t_lanes:
                    t_lanes = lane.heap[0][0]
            t_min = t_ctl if t_ctl < t_lanes else t_lanes
            if t_min == _INF:
                break
            if max_time is not None and t_min > max_time:
                break
            self._round_index += 1
            if t_ctl <= t_lanes:
                # control events are global barriers: every lane has
                # quiesced strictly below t_ctl, so the callback may touch
                # any host's state
                processed += self._run_control_event()
            else:
                horizon = _INF if single else t_lanes + self.lookahead
                if t_ctl < horizon:
                    horizon = t_ctl
                self._round_horizon = horizon
                try:
                    if self.parallel:
                        processed += self._run_parallel_round(horizon, max_time)
                    else:
                        for lane in lanes:
                            if lane.heap:
                                processed += self._run_lane_slice(
                                    lane, horizon, max_time)
                finally:
                    self._round_horizon = _INF
            if processed >= max_events:
                raise RuntimeError(
                    f"scheduler exceeded {max_events} events; runaway loop?")
        self._events_processed += processed
        final = self._now
        for lane in lanes:
            if lane.now > final:
                final = lane.now
        if self._control.now > final:
            final = self._control.now
        if max_time is not None and final < max_time:
            final = max_time  # time passes even when nothing is scheduled
        self._now = final
        # remaining events are all beyond `final`, so raising every lane
        # clock to it keeps per-lane time monotone across run_* calls
        for lane in lanes:
            lane.now = final
        self._control.now = final
        for callback in self._quiesce_callbacks:
            callback()
        return final

    def run_for(self, duration: float) -> float:
        """Advance the clock ``duration`` units, firing due events."""
        return self.run_until_idle(max_time=self.now + duration)

    def run_until(self, when: float) -> float:
        """Advance the clock to absolute time ``when``, firing due events."""
        if when < self.now:
            raise ValueError(f"cannot run backwards: {when} < {self.now}")
        return self.run_until_idle(max_time=when)

    def _run_control_event(self) -> int:
        control = self._control
        when, _rank, _seq, _owner, timer, fn, args = heapq.heappop(control.heap)
        if timer is not None and timer.cancelled:
            return 0
        control._live -= 1
        if timer is not None:
            timer._scheduler = None
        control.now = when
        if when > self._now:
            self._now = when
        control.current_rank = EXTERNAL_RANK
        log = self.event_log
        if log is not None and timer is not None and timer.owner is not None:
            control.log_buffer.append((when, timer.owner, "timer", timer.site))
        profiler = self.profiler
        self._tls.lane = control
        try:
            if profiler is None:
                if args:
                    fn(*args)
                else:
                    fn()
            else:
                started = perf_counter()
                if args:
                    fn(*args)
                else:
                    fn()
                site = timer.site if timer is not None else _DELIVERY_SITE
                lag = when - timer.created_at if timer is not None else 0.0
                profiler.record(site, lag, perf_counter() - started)
        finally:
            self._tls.lane = None
        return 1

    def _run_lane_slice(self, lane: _Lane, horizon: float,
                        max_time: Optional[float]) -> int:
        """Run every event of ``lane`` strictly below ``horizon`` (and not
        beyond ``max_time``), in canonical key order. Called serially or as
        one thread of a parallel round."""
        heap = lane.heap
        profiler = self.profiler
        lock = self._callback_lock
        log = self.event_log
        count = 0
        self._tls.lane = lane
        try:
            while heap:
                entry = heap[0]
                when = entry[0]
                if when >= horizon or (max_time is not None and when > max_time):
                    break
                heapq.heappop(heap)
                timer = entry[4]
                if timer is not None:
                    if timer.cancelled:
                        continue
                    timer._scheduler = None
                lane._live -= 1
                lane.now = when
                lane.current_rank = entry[3]
                fn = entry[5]
                args = entry[6]
                if log is not None and timer is not None \
                        and timer.owner is not None:
                    lane.log_buffer.append(
                        (when, timer.owner, "timer", timer.site))
                if lock is not None:
                    # parallel round: one callback at a time — shared model
                    # state (directories, cross-host registries) stays safe
                    with lock:
                        if profiler is None:
                            if args:
                                fn(*args)
                            else:
                                fn()
                        else:
                            started = perf_counter()
                            if args:
                                fn(*args)
                            else:
                                fn()
                            if timer is not None:
                                profiler.record(timer.site,
                                                when - timer.created_at,
                                                perf_counter() - started)
                            else:
                                profiler.record(_DELIVERY_SITE, 0.0,
                                                perf_counter() - started)
                elif profiler is None:
                    if args:
                        fn(*args)
                    else:
                        fn()
                else:
                    started = perf_counter()
                    if args:
                        fn(*args)
                    else:
                        fn()
                    if timer is not None:
                        profiler.record(timer.site, when - timer.created_at,
                                        perf_counter() - started)
                    else:
                        profiler.record(_DELIVERY_SITE, 0.0,
                                        perf_counter() - started)
                count += 1
        finally:
            self._tls.lane = None
        lane.processed += count
        return count

    def _run_parallel_round(self, horizon: float,
                            max_time: Optional[float]) -> int:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.partitions, thread_name_prefix="repro-lane")
        self._in_parallel_round = True
        total = 0
        error: Optional[BaseException] = None
        try:
            futures = [self._pool.submit(self._run_lane_slice, lane, horizon,
                                         max_time)
                       for lane in self._lanes if lane.heap]
            for future in futures:
                try:
                    total += future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if error is None:
                        error = exc
        finally:
            self._in_parallel_round = False
        # horizon exchange: merge staged cross-partition events, in lane
        # order (order is cosmetic — canonical keys are unique, so heap
        # order never depends on insertion order)
        for lane in self._lanes:
            if lane.outbox:
                for target, entry in lane.outbox:
                    heapq.heappush(target.heap, entry)
                    target._live += 1
                lane.outbox.clear()
        if error is not None:
            raise error
        return total

    # -- introspection and hooks ---------------------------------------------

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events queued across all lanes (O(lanes))."""
        total = self._control._live
        for lane in self._lanes:
            total += lane._live
        return total

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def on_quiesce(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the end of every ``run_*`` drain (after the
        last event, before returning). The transport uses this to merge
        per-lane stats staging buffers deterministically."""
        self._quiesce_callbacks.append(callback)

    def ambient_stack(self) -> List[Any]:
        """The tracer frame stack for the current execution context — one
        per lane so parallel rounds cannot interleave ambient trace state
        (see :attr:`repro.obs.tracing.Tracer.stack_provider`)."""
        lane = getattr(self._tls, "lane", None)
        return self._external_stack if lane is None else lane.trace_stack

    def current_log_buffer(self) -> List[tuple]:
        """The event-log staging buffer for the current context."""
        lane = getattr(self._tls, "lane", None)
        return self._control.log_buffer if lane is None else lane.log_buffer

    def log_buffers(self) -> List[List[tuple]]:
        """All staging buffers in canonical merge order (control first)."""
        return [lane.log_buffer for lane in self.contexts()]

    def close(self) -> None:
        """Shut down the parallel executor (idempotent; serial is a no-op)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return (f"PartitionedScheduler(partitions={self.partitions}, "
                f"parallel={self.parallel}, now={self._now:.3f}, "
                f"pending={self.pending})")

"""The canonical observable event log — the substrate's determinism oracle.

An :class:`EventLog` records the two per-host observables the partitioned
substrate promises to keep invariant: message deliveries and owner-
attributable timer firings. Entries deliberately exclude everything that is
interleaving-dependent but behaviourally unobservable — ``msg_id`` values
(a global counter whose numbers depend on allocation order), trace/span
ids, wall-clock — so the log is bit-identical across partition counts and
executors whenever the *model* behaved identically.

Entry shapes::

    (time, host, "deliver", kind, sender, payload_digest)
    (time, host, "timer",   site)

Payloads are digested (canonical JSON -> blake2b) rather than embedded, so
logs stay comparably small at storm scale while still catching any payload
divergence.

The log is buffer-agnostic: standalone it appends to one internal list (the
classic :class:`~repro.net.sim.Scheduler` path); bound to a
:class:`~repro.net.partition.PartitionedScheduler` it writes into per-lane
buffers (each lane/thread appends only to its own) and concatenates them
control-lane-first at read time. :meth:`per_host` then buckets by host and
stable-sorts by time — same-instant entries for one host keep their
execution order, which the substrate guarantees is partition-invariant.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

Entry = Tuple[Any, ...]


def payload_digest(payload: Any) -> str:
    """Order-insensitive 64-bit digest of a message payload."""
    blob = json.dumps(payload, sort_keys=True, default=str,
                      separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=8).hexdigest()


class EventLog:
    """Accumulates canonical observables; compares and digests them."""

    def __init__(self):
        self._default: List[Entry] = []
        self._sink: Optional[Callable[[], List[Entry]]] = None
        self._buffers: Optional[Callable[[], List[List[Entry]]]] = None

    def bind(self, scheduler) -> None:
        """Route records through ``scheduler``'s per-lane buffers (duck-
        typed: ``current_log_buffer()`` / ``log_buffers()``)."""
        self._sink = scheduler.current_log_buffer
        self._buffers = scheduler.log_buffers

    # -- recording -----------------------------------------------------------

    def record_delivery(self, host_id: str, time: float, kind: str,
                        sender: str, payload: Any) -> None:
        buffer = self._default if self._sink is None else self._sink()
        buffer.append((time, host_id, "deliver", kind, sender,
                       payload_digest(payload)))

    def record_timer(self, host_id: str, time: float, site: str) -> None:
        buffer = self._default if self._sink is None else self._sink()
        buffer.append((time, host_id, "timer", site))

    # -- reading -------------------------------------------------------------

    def entries(self) -> List[Entry]:
        """All records, concatenated in canonical buffer order."""
        if self._buffers is None:
            return list(self._default)
        out: List[Entry] = []
        for buffer in self._buffers():
            out.extend(buffer)
        return out

    def per_host(self) -> Dict[str, List[Entry]]:
        """host -> its observable sequence in ``(time, execution)`` order.

        The sort is stable, so same-instant entries keep the order they
        were recorded in — per host, that order is the substrate's
        partition-invariant execution order.
        """
        hosts: Dict[str, List[Entry]] = {}
        for entry in self.entries():
            hosts.setdefault(entry[1], []).append(entry)
        for entries in hosts.values():
            entries.sort(key=lambda entry: entry[0])
        return hosts

    def canonical(self) -> str:
        """The whole log as canonical JSON lines, hosts in sorted order."""
        lines = []
        per_host = self.per_host()
        for host in sorted(per_host):
            for entry in per_host[host]:
                lines.append(json.dumps(list(entry), separators=(",", ":")))
        return "\n".join(lines)

    def digest(self) -> str:
        """Hash-stable fingerprint of the canonical log."""
        return hashlib.blake2b(self.canonical().encode("utf-8"),
                               digest_size=16).hexdigest()

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:
        return f"EventLog(entries={len(self)})"

"""Core building blocks: GUIDs, errors, the context-type ontology, facade."""

from repro.core.errors import (
    SCIError,
    CompositionError,
    NoProviderError,
    QueryError,
    RegistrationError,
    RoutingError,
    LocationError,
)
from repro.core.ids import GUID, GuidFactory
from repro.core.types import (
    ContextType,
    Converter,
    TypeRegistry,
    TypeSpec,
    standard_registry,
)

__all__ = [
    "GUID",
    "GuidFactory",
    "SCIError",
    "CompositionError",
    "NoProviderError",
    "QueryError",
    "RegistrationError",
    "RoutingError",
    "LocationError",
    "ContextType",
    "Converter",
    "TypeRegistry",
    "TypeSpec",
    "standard_registry",
]

"""The context-type ontology: semantic types, representations, converters.

The paper's critique of iQueue (Section 2) is that purely *syntactic* data
matching cannot exploit "data sources that have widely different syntactic
descriptions but are semantically similar" — e.g. location derived from door
sensors versus location derived from wireless detection. SCI's answer
(Sections 3.2/3.3) is type matching over CE profiles plus an "intermediate
location language" for interoperating representations.

We make that concrete with a two-level type system:

* a **semantic type** (:class:`ContextType`) names *what the information
  means* ("location", "path", "temperature", "printer-status") and may have
  ``is_a`` parents ("gps-position" is-a "location");
* a **representation** names *how it is encoded* ("symbolic", "geometric",
  "signal-strength", "celsius", ...).

A :class:`TypeSpec` pairs the two, optionally narrowed to a *subject* (whose
location?) and carrying quality-of-context attributes. A :class:`TypeRegistry`
stores the ontology plus :class:`Converter` edges between representations; the
query resolver asks the registry whether an offered spec can satisfy a wanted
spec, possibly through a chain of converters, and splices converter entities
into the configuration when needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.errors import SCIError


class TypeError_(SCIError):
    """An operation referenced an unknown semantic type or representation."""


#: Wildcard subject: the spec applies to any entity.
ANY_SUBJECT = None


@dataclass(frozen=True)
class ContextType:
    """A semantic context type in the ontology.

    ``parent`` is the ``is_a`` edge: a value of a subtype can always stand in
    where the parent type is wanted (e.g. ``gps-position`` is-a
    ``location``).
    """

    name: str
    parent: Optional[str] = None
    description: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TypeSpec:
    """A concrete (semantic type, representation) pair, possibly bound.

    ``subject`` narrows the spec to information *about* one entity — the
    resolver binds it while chaining (Figure 3: the objLocationCE output is
    ``location`` *of John*). ``None`` means unbound / any subject.

    ``quality`` carries quality-of-context attributes declared by a profile
    (accuracy in metres, freshness in seconds, ...) which the Which clause of
    a query can select on.
    """

    type_name: str
    representation: str = "any"
    subject: Optional[object] = ANY_SUBJECT
    quality: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def of(
        cls,
        type_name: str,
        representation: str = "any",
        subject: Optional[object] = ANY_SUBJECT,
        quality: Optional[Mapping[str, float]] = None,
    ) -> "TypeSpec":
        """Ergonomic constructor accepting a quality mapping."""
        items = tuple(sorted((quality or {}).items()))
        return cls(type_name, representation, subject, items)

    @property
    def quality_map(self) -> Dict[str, float]:
        return dict(self.quality)

    def bind(self, subject: object) -> "TypeSpec":
        """Return a copy of this spec narrowed to ``subject``."""
        return TypeSpec(self.type_name, self.representation, subject, self.quality)

    def with_representation(self, representation: str) -> "TypeSpec":
        return TypeSpec(self.type_name, representation, self.subject, self.quality)

    def __str__(self) -> str:
        subject = f"@{self.subject}" if self.subject is not ANY_SUBJECT else ""
        return f"{self.type_name}[{self.representation}]{subject}"


@dataclass(frozen=True)
class Converter:
    """A registered conversion between two representations of one type.

    ``cost`` is an abstract penalty the resolver minimises when several
    converter chains exist; ``fidelity`` in (0, 1] scales quality attributes
    of converted data (converting symbolic -> geometric loses precision).
    """

    type_name: str
    source_representation: str
    target_representation: str
    fn: Callable[[object], object]
    cost: float = 1.0
    fidelity: float = 1.0

    def apply(self, value: object) -> object:
        return self.fn(value)

    def __str__(self) -> str:
        return (
            f"{self.type_name}:{self.source_representation}"
            f"->{self.target_representation}"
        )


class TypeRegistry:
    """The ontology: semantic types, is_a edges and converter edges.

    The registry answers the resolver's central question,
    :meth:`conversion_path`: can an *offered* spec satisfy a *wanted* spec,
    and through which converters?
    """

    def __init__(self):
        self._types: Dict[str, ContextType] = {}
        # (type_name, source_repr) -> list of converters out of that repr
        self._converters: Dict[Tuple[str, str], List[Converter]] = {}

    # -- ontology -----------------------------------------------------------

    def register(self, ctype: ContextType) -> ContextType:
        if ctype.parent is not None and ctype.parent not in self._types:
            raise TypeError_(f"unknown parent type: {ctype.parent!r}")
        self._types[ctype.name] = ctype
        return ctype

    def define(self, name: str, parent: Optional[str] = None, description: str = "") -> ContextType:
        """Shorthand for :meth:`register`."""
        return self.register(ContextType(name, parent, description))

    def get(self, name: str) -> ContextType:
        try:
            return self._types[name]
        except KeyError:
            raise TypeError_(f"unknown context type: {name!r}") from None

    def known(self, name: str) -> bool:
        return name in self._types

    def ancestors(self, name: str) -> List[str]:
        """Return ``name`` followed by its is_a ancestors, root last."""
        chain = []
        cursor: Optional[str] = name
        while cursor is not None:
            if cursor in chain:
                raise TypeError_(f"is_a cycle at {cursor!r}")
            chain.append(cursor)
            cursor = self.get(cursor).parent
        return chain

    def is_subtype(self, candidate: str, of: str) -> bool:
        """True when ``candidate`` is ``of`` or one of its descendants."""
        return of in self.ancestors(candidate)

    # -- converters ---------------------------------------------------------

    def register_converter(self, converter: Converter) -> Converter:
        self.get(converter.type_name)  # validates the type exists
        key = (converter.type_name, converter.source_representation)
        self._converters.setdefault(key, []).append(converter)
        return converter

    def add_converter(
        self,
        type_name: str,
        source: str,
        target: str,
        fn: Callable[[object], object],
        cost: float = 1.0,
        fidelity: float = 1.0,
    ) -> Converter:
        """Shorthand for :meth:`register_converter`."""
        return self.register_converter(
            Converter(type_name, source, target, fn, cost, fidelity)
        )

    def converters_from(self, type_name: str, representation: str) -> List[Converter]:
        return list(self._converters.get((type_name, representation), []))

    def conversion_path(
        self, offered: TypeSpec, wanted: TypeSpec
    ) -> Optional[List[Converter]]:
        """Converters turning ``offered`` into something satisfying ``wanted``.

        Returns ``[]`` for a direct match, a cheapest converter chain when
        representations differ but are bridgeable, or ``None`` when the specs
        are semantically or subject-wise incompatible.

        Semantic rule: ``offered.type_name`` must be ``wanted.type_name`` or
        a subtype of it. Subject rule: a wanted subject matches an offered
        subject that is equal or unbound (the provider can be parameterised).
        Representation ``"any"`` on either side matches without conversion.
        Converter chains are searched over the *wanted* (super)type's
        converter edges as well as the offered subtype's own, cheapest-first
        (uniform-cost search; converter graphs are tiny).
        """
        if not self.is_subtype(offered.type_name, wanted.type_name):
            return None
        if wanted.subject is not ANY_SUBJECT and offered.subject is not ANY_SUBJECT:
            if wanted.subject != offered.subject:
                return None
        if "any" in (offered.representation, wanted.representation):
            return []
        if offered.representation == wanted.representation:
            return []
        # Uniform-cost search over representations reachable from the offer.
        # Converters registered against any ancestor type apply.
        applicable_types = self.ancestors(offered.type_name)
        frontier: List[Tuple[float, str, List[Converter]]] = [
            (0.0, offered.representation, [])
        ]
        best_cost: Dict[str, float] = {offered.representation: 0.0}
        while frontier:
            frontier.sort(key=lambda item: item[0])
            cost, representation, chain = frontier.pop(0)
            if representation == wanted.representation:
                return chain
            for type_name in applicable_types:
                for converter in self.converters_from(type_name, representation):
                    next_cost = cost + converter.cost
                    target = converter.target_representation
                    if next_cost < best_cost.get(target, float("inf")):
                        best_cost[target] = next_cost
                        frontier.append((next_cost, target, chain + [converter]))
        return None

    def satisfies(self, offered: TypeSpec, wanted: TypeSpec) -> bool:
        """True when ``offered`` can satisfy ``wanted`` (possibly via converters)."""
        return self.conversion_path(offered, wanted) is not None


def standard_registry() -> TypeRegistry:
    """The ontology used throughout the paper's scenarios.

    Covers the Figure-3 path example (door sensors, object location, path),
    the CAPA scenario (printer status and capabilities) and the Section-3.3
    location representations. Converters between location representations are
    placeholders at this level — the real geometry-aware conversions live in
    :mod:`repro.location.converters`, which replaces these functions when a
    deployment has a building model.
    """
    registry = TypeRegistry()
    registry.define("presence", description="an identified object passed a fixed sensor")
    registry.define("location", description="where an entity is")
    registry.define("gps-position", parent="location")
    registry.define("path", description="a route between two locations")
    registry.define("temperature", description="ambient temperature reading")
    registry.define("identity", description="an entity identifier")
    registry.define("printer-status", description="availability of a printer")
    registry.define("print-service", description="ability to print documents")
    registry.define("occupancy", description="how many entities are in a place")
    registry.define("network-signal", description="wireless signal observation")
    return registry

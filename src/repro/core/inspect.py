"""Operational introspection: human-readable snapshots of a deployment.

A running SCI deployment has a lot of moving state — registrations, live
configurations, parked queries, directory entries, claims. These helpers
render it for debugging and for the examples' narration. Everything here is
read-only.
"""

from __future__ import annotations

from typing import List

from repro.server.context_server import ContextServer


def range_report(server: ContextServer) -> str:
    """One range's state: population, utilities, configurations, parked."""
    lines = [f"Range {server.definition.name!r} (CS {server.guid})"]
    lines.append(f"  places: {', '.join(server.definition.places)}")
    lines.append(f"  machines: {', '.join(sorted(server.range_services))}")

    records = server.registrar.records()
    by_kind = {}
    for record in records:
        by_kind.setdefault(record.kind, []).append(record.profile.name)
    lines.append(f"  population: {len(records)}")
    for kind in sorted(by_kind):
        names = ", ".join(sorted(by_kind[kind])[:6])
        extra = len(by_kind[kind]) - 6
        suffix = f" (+{extra} more)" if extra > 0 else ""
        lines.append(f"    {kind:>14}: {names}{suffix}")

    lines.append(f"  mediator: {server.mediator.subscription_count} "
                 f"subscription(s), {server.mediator.published} event(s) "
                 f"published")
    lines.append(f"  location fixes: "
                 f"{len(server.location.tracked_entities())} entit(ies)")

    configs = server.configurations.configurations()
    lines.append(f"  configurations: {len(configs)} "
                 f"({server.configurations.repairs} repair(s), "
                 f"{server.configurations.reuse_hits} reuse hit(s))")
    for config in configs:
        lines.append(f"    {config.config_id}: {config.wanted} "
                     f"[{config.state.value}] depth={config.plan.depth()} "
                     f"nodes={config.plan.node_count()} "
                     f"repairs={config.repairs}")

    parked = server.parked_queries()
    if parked:
        lines.append(f"  parked queries: {len(parked)}")
        for item in parked:
            lines.append(f"    {item.query.query_id}: until "
                         f"{item.query.when}")

    lines.append(f"  queries: {server.queries_received} received / "
                 f"{server.queries_executed} executed / "
                 f"{server.queries_forwarded} forwarded / "
                 f"{server.queries_parked} parked / "
                 f"{server.queries_failed} failed")
    return "\n".join(lines)


def configuration_report(server: ContextServer, config_id: str) -> str:
    """One configuration's full subscription graph."""
    config = server.configurations.config(config_id)
    if config is None:
        return f"no such configuration: {config_id}"
    lines = [f"{config.config_id}: {config.wanted} [{config.state.value}]"]
    lines.append(config.plan.describe())
    if config.deliveries:
        lines.append("deliveries:")
        for delivery in config.deliveries:
            mode = "one-time" if delivery.one_time else "durable"
            lines.append(f"  -> {delivery.subscriber_hex[:8]} "
                         f"({mode}, query {delivery.query_id})")
    if config.excluded:
        lines.append(f"excluded providers: "
                     f"{sorted(h[:8] for h in config.excluded)}")
    return "\n".join(lines)


def system_report(sci) -> str:
    """The whole deployment: every range plus the SCINET view."""
    lines: List[str] = [f"SCI deployment @ t={sci.now:.2f} "
                        f"(building {sci.building.building_name!r})"]
    lines.append(f"SCINET: {sci.scinet.size()} node(s)")
    for node in sci.scinet.nodes():
        lines.append(f"  {node.name}: {len(node.directory)} directory "
                     f"entr(ies), routed {node.routed}")
    for name in sorted(sci.ranges):
        lines.append("")
        lines.append(range_report(sci.ranges[name]))
    world_entities = sci.world.entities()
    if world_entities:
        lines.append("")
        lines.append(f"world: {len(world_entities)} physical entit(ies)")
        for entity in world_entities:
            device = f" [{entity.device_host}]" if entity.device_host else ""
            lines.append(f"  {entity.key}: {entity.room or '<outside>'}"
                         f"{device}")
    return "\n".join(lines)

"""The SCI facade — the library's public entry point.

An :class:`SCI` instance is one simulated deployment: a building, a
network, a SCINET overlay, and any number of ranges with their Context
Servers. It wires together everything the paper describes so applications
only deal with queries and events::

    from repro import SCI

    sci = SCI()                               # synthetic Livingstone Tower
    level10 = sci.create_range("level10", places=["L10"], hosts=["lab-pc"])
    sci.add_door_sensors("level10")
    sci.add_person("bob", room="corridor")

    app = sci.create_application("pathApp", host="lab-pc")
    sci.run(5)                                # let registration settle
    query = sci.query("bob").subscribe("location", "topological",
                                       subject="bob").build()
    app.submit_query(query)
    sci.walk("bob", "L10.01")
    sci.run(60)
    print(app.last_event_value())             # "L10.01"
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import SCIError
from repro.core.ids import GuidFactory
from repro.core.types import TypeRegistry, standard_registry
from repro.composition.templates import TemplateRegistry
from repro.entities.devices import PrinterCE
from repro.entities.entity import ContextAwareApplication
from repro.entities.profile import EntityClass, Profile
from repro.entities.sensors import DoorSensorCE, WLANDetectorCE
from repro.faults.injector import FaultInjector
from repro.location.building import BuildingModel, livingstone_tower
from repro.location.converters import register_location_converters
from repro.mobility.detection import BoundaryMonitor
from repro.mobility.handoff import HandoffCoordinator
from repro.mobility.world import World
from repro.net.transport import LatencyModel, Network
from repro.overlay.scinet import SCINet
from repro.query.model import QueryBuilder
from repro.server.context_server import ContextServer
from repro.server.deployment import (
    deploy_door_sensors,
    deploy_printers,
    deploy_wlan_detector,
    standard_templates,
)
from repro.server.range import RangeDefinition

logger = logging.getLogger(__name__)


@dataclass
class SCIConfig:
    """Deployment-wide knobs."""

    seed: int = 0
    lease_duration: float = 30.0
    latency_model: Optional[LatencyModel] = None
    drop_rate: float = 0.0
    boundary_scan_interval: float = 1.0
    wlan_scan_interval: float = 5.0
    #: bound on re-compositions per configuration (future-work item 3);
    #: None = adapt forever
    max_repairs_per_config: Optional[int] = None
    #: range mediators deliver events acknowledged/sequenced (False = the
    #: fire-and-forget ablation)
    reliable_events: bool = True
    #: record every CS state change to the append-only context ledger
    #: (replay, as-of reads, query explanation); False is the
    #: no-bookkeeping ablation
    ledger: bool = True
    #: detect SCINET node failure from missed heartbeats instead of oracle
    #: ``SCINet.fail`` calls. Opt-in: the periodic heartbeats keep the
    #: scheduler busy, so ``run_until_idle``-style workloads must not
    #: enable this.
    overlay_failure_detection: bool = False
    overlay_fd_interval: float = 5.0
    overlay_fd_timeout: float = 15.0


class SCI:
    """One simulated SCI deployment."""

    def __init__(self, building: Optional[BuildingModel] = None,
                 config: Optional[SCIConfig] = None):
        self.config = config or SCIConfig()
        self.building = building or livingstone_tower()
        self.network = Network(
            latency_model=self.config.latency_model,
            drop_rate=self.config.drop_rate,
            seed=self.config.seed,
        )
        self.scheduler = self.network.scheduler
        self.guids = GuidFactory(seed=self.config.seed ^ 0xACE)
        self.registry: TypeRegistry = register_location_converters(
            standard_registry(), self.building)
        self.world = World(self.building, self.scheduler)
        self.scinet = SCINet(
            self.network,
            failure_detection=self.config.overlay_failure_detection,
            fd_interval=self.config.overlay_fd_interval,
            fd_timeout=self.config.overlay_fd_timeout,
        )
        self.injector = FaultInjector(self.network, seed=self.config.seed)
        self.ranges: Dict[str, ContextServer] = {}
        self.applications: Dict[str, ContextAwareApplication] = {}
        self.printers: Dict[str, PrinterCE] = {}
        self.door_sensors: Dict[str, DoorSensorCE] = {}
        self.handoff = HandoffCoordinator()
        self._monitor: Optional[BoundaryMonitor] = None

    # -- deployment -----------------------------------------------------------------

    def create_range(self, name: str, places: List[str],
                     hosts: Optional[List[str]] = None,
                     stations: Optional[List[str]] = None,
                     templates: Optional[TemplateRegistry] = None) -> ContextServer:
        """Create a range, its Context Server and its SCINET presence."""
        if name in self.ranges:
            raise SCIError(f"duplicate range: {name!r}")
        cs_host = f"cs-{name}"
        self.network.ensure_host(cs_host)
        definition = RangeDefinition(
            name=name,
            places=list(places),
            hosts=[cs_host] + list(hosts or []),
            stations=list(stations or []),
        )
        server = ContextServer(
            self.guids.mint(), cs_host, self.network,
            definition=definition,
            building=self.building,
            registry=self.registry,
            guid_factory=self.guids,
            templates=templates or standard_templates(self.guids, self.building),
            lease_duration=self.config.lease_duration,
            max_repairs_per_config=self.config.max_repairs_per_config,
            reliable_events=self.config.reliable_events,
            ledger=self.config.ledger,
        )
        announced = sorted(set(definition.rooms(self.building)) | set(places))
        node = self.scinet.create_node(cs_host, range_name=name,
                                       owner_cs_hex=server.guid.hex,
                                       places=announced)
        server.peer_lookup = node.lookup_place
        self.ranges[name] = server
        if self._monitor is not None:
            self._monitor.ranges.append(server)
        return server

    def range(self, name: str) -> ContextServer:
        try:
            return self.ranges[name]
        except KeyError:
            raise SCIError(f"unknown range: {name!r}") from None

    def add_door_sensors(self, range_name: str,
                         rooms: Optional[List[str]] = None,
                         miss_rate: float = 0.0) -> Dict[str, DoorSensorCE]:
        """Instrument the range's doors; sensors register automatically."""
        server = self.range(range_name)
        sensors = deploy_door_sensors(
            self.building, server.host_id, self.network, self.guids,
            rooms=rooms if rooms is not None else server.definition.rooms(self.building),
            miss_rate=miss_rate,
        )
        self.world.attach_door_sensors(sensors)
        self.door_sensors.update(sensors)
        return sensors

    def add_wlan_detector(self, range_name: str) -> WLANDetectorCE:
        server = self.range(range_name)
        return deploy_wlan_detector(
            self.building, server.host_id, self.network, self.guids,
            device_positions=self.world.device_positions,
            scan_interval=self.config.wlan_scan_interval,
        )

    def add_printers(self, range_name: str,
                     placements: Dict[str, str]) -> Dict[str, PrinterCE]:
        server = self.range(range_name)
        printers = deploy_printers(server.host_id, self.network, self.guids,
                                   placements)
        self.printers.update(printers)
        return printers

    def start_boundary_monitor(self, with_handoff: bool = True) -> BoundaryMonitor:
        """Turn on Section-3.4 arrival/departure detection."""
        if self._monitor is None:
            self._monitor = BoundaryMonitor(
                self.world, list(self.ranges.values()),
                scan_interval=self.config.boundary_scan_interval,
                handoff=self.handoff if with_handoff else None,
            )
        return self._monitor

    # -- people and applications ---------------------------------------------------------

    def add_person(self, key: str, room: Optional[str] = None,
                   device_host: Optional[str] = None, has_tag: bool = True,
                   speed: float = 1.4):
        """Add a person; with ``room=None`` they start outside the building."""
        if device_host is not None:
            self.network.ensure_host(device_host)
        if room is None:
            return self.world.add_outdoor_entity(
                key, position=self._outside_position(),
                has_tag=has_tag, device_host=device_host, speed=speed)
        return self.world.add_entity(key, room, has_tag=has_tag,
                                     device_host=device_host, speed=speed)

    def _outside_position(self):
        from repro.location.geometry import Point
        return Point(-100.0, -100.0)

    def create_application(self, name: str, host: str,
                           app_class=ContextAwareApplication,
                           owner: Optional[str] = None,
                           **kwargs) -> ContextAwareApplication:
        """Create and start a CAA on ``host`` (it registers via Figure 5)."""
        self.network.ensure_host(host)
        profile = Profile(
            entity_id=self.guids.mint(),
            name=name,
            entity_class=EntityClass.SOFTWARE,
            attributes={"owner": owner} if owner else {},
        )
        app = app_class(profile, host, self.network, **kwargs)
        app.start()
        self.applications[name] = app
        return app

    # -- movement shortcuts -----------------------------------------------------------------

    def walk(self, key: str, room: str) -> float:
        return self.world.walk_to(key, room)

    def teleport(self, key: str, room: str):
        return self.world.teleport(key, room)

    # -- queries ---------------------------------------------------------------------------

    @staticmethod
    def query(owner: str) -> QueryBuilder:
        return QueryBuilder(owner)

    # -- time ------------------------------------------------------------------------------

    def run(self, duration: float) -> float:
        """Advance simulated time by ``duration``."""
        return self.scheduler.run_for(duration)

    def run_until(self, when: float) -> float:
        return self.scheduler.run_until(when)

    @property
    def now(self) -> float:
        return self.scheduler.now

    def __repr__(self) -> str:
        return (f"SCI(ranges={list(self.ranges)}, t={self.now:.2f}, "
                f"building={self.building.building_name!r})")

"""Exception hierarchy for the SCI middleware.

Every error raised by the library derives from :class:`SCIError`, so callers
can catch one base class at the facade boundary. Subclasses mirror the
subsystems: routing (SCINET), registration (Registrar), queries, composition
and location modelling.
"""


class SCIError(Exception):
    """Base class for all errors raised by the SCI middleware."""


class RoutingError(SCIError):
    """A message could not be routed through the SCINET overlay."""


class RegistrationError(SCIError):
    """An entity could not be registered or deregistered with a Registrar."""


class QueryError(SCIError):
    """A query is malformed or cannot be interpreted."""


class QueryParseError(QueryError):
    """The XML (Figure 6) wire form of a query could not be parsed."""


class CompositionError(SCIError):
    """A configuration graph could not be built or instantiated."""


class NoProviderError(CompositionError):
    """No Context Entity (or chain of CEs) can provide a requested type.

    Raised by the Query Resolver when backward chaining over CE profiles
    bottoms out without reaching sensor-level data sources.
    """

    def __init__(self, wanted, partial_chain=()):
        self.wanted = wanted
        self.partial_chain = tuple(partial_chain)
        chain = " <- ".join(str(step) for step in self.partial_chain)
        detail = f" (while satisfying: {chain})" if chain else ""
        super().__init__(f"no provider for {wanted}{detail}")


class CycleError(CompositionError):
    """Type matching produced a cyclic dependency between Context Entities."""


class LocationError(SCIError):
    """A location expression or model conversion is invalid."""


class TransportError(SCIError):
    """A message could not be delivered by the simulated transport."""


class PartitionError(TransportError):
    """Source and destination hosts are in different network partitions."""


class EntityUnavailableError(SCIError):
    """The target Context Entity has departed, crashed or never existed."""


class LeaseExpiredError(RegistrationError):
    """An entity's registration lease lapsed without renewal."""

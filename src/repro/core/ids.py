"""Globally unique identifiers (GUIDs) for entities, ranges and messages.

Section 3 of the paper: the SCINET "provides the necessary level of
abstraction in order for entities to communicate across many heterogeneous
network types using GUIDs rather than traditional addressing schemes."

GUIDs are fixed-width unsigned integers rendered in hexadecimal. The width is
configurable (default 128 bits) and the hex rendering is what the overlay's
prefix routing operates on, so GUIDs expose digit-level helpers
(:meth:`GUID.digit`, :meth:`GUID.shared_prefix_len`).

Determinism: GUIDs are minted through a :class:`GuidFactory` seeded by the
caller. Two simulation runs with the same seed mint identical id streams,
which keeps every benchmark and test reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Number of bits in a GUID.
GUID_BITS = 128

#: Bits encoded by one hex digit.
_BITS_PER_DIGIT = 4

#: Number of hex digits in a GUID's canonical rendering.
GUID_DIGITS = GUID_BITS // _BITS_PER_DIGIT


@dataclass(frozen=True, order=True)
class GUID:
    """An immutable 128-bit identifier with hex-digit helpers.

    Instances are hashable and totally ordered by numeric value, so they can
    key dictionaries (routing tables, registrars) and sort deterministically.
    """

    value: int

    def __post_init__(self):
        if not 0 <= self.value < (1 << GUID_BITS):
            raise ValueError(f"GUID value out of range: {self.value!r}")

    @classmethod
    def from_hex(cls, text: str) -> "GUID":
        """Parse a GUID from its canonical hex rendering."""
        return cls(int(text, 16))

    @classmethod
    def from_name(cls, name: str) -> "GUID":
        """Derive a stable GUID from a human-readable name.

        Used for well-known directory keys (e.g. the range directory root)
        where every node must independently agree on the identifier. An
        FNV-1a fold provides the raw hash and a splitmix64-style finalizer
        provides avalanche, so similar names ("place:1", "place:2") land far
        apart on the GUID ring. Stable across runs and Python versions,
        unlike :func:`hash`.
        """
        mask = 0xFFFFFFFFFFFFFFFF

        def mix(value: int) -> int:
            value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & mask
            value = (value ^ (value >> 27)) * 0x94D049BB133111EB & mask
            return value ^ (value >> 31)

        acc = 0xCBF29CE484222325
        for byte in name.encode("utf-8"):
            acc = ((acc ^ byte) * 0x100000001B3) & mask
        low = mix(acc)
        high = mix(acc ^ 0x9E3779B97F4A7C15)
        return cls((high << 64) | low)

    @property
    def hex(self) -> str:
        """Canonical fixed-width lowercase hex rendering."""
        return format(self.value, f"0{GUID_DIGITS}x")

    def digit(self, index: int) -> int:
        """Return hex digit ``index`` (0 = most significant)."""
        if not 0 <= index < GUID_DIGITS:
            raise IndexError(f"digit index out of range: {index}")
        shift = (GUID_DIGITS - 1 - index) * _BITS_PER_DIGIT
        return (self.value >> shift) & 0xF

    def shared_prefix_len(self, other: "GUID") -> int:
        """Length of the common hex-digit prefix with ``other``.

        This is the quantity Pastry-style prefix routing maximises at each
        hop; it is computed arithmetically rather than via string rendering.
        """
        diff = self.value ^ other.value
        if diff == 0:
            return GUID_DIGITS
        return (GUID_BITS - diff.bit_length()) // _BITS_PER_DIGIT

    def distance(self, other: "GUID") -> int:
        """Circular numeric distance used for closest-node tie-breaking."""
        span = 1 << GUID_BITS
        raw = abs(self.value - other.value)
        return min(raw, span - raw)

    def __str__(self) -> str:
        return self.hex[:8]  # short form for logs; full form via .hex

    def __repr__(self) -> str:
        return f"GUID({self.hex[:12]}..)"


@dataclass
class GuidFactory:
    """Deterministic minting of unique GUIDs from a seed.

    >>> factory = GuidFactory(seed=7)
    >>> a, b = factory.mint(), factory.mint()
    >>> a != b
    True
    >>> GuidFactory(seed=7).mint() == a
    True
    """

    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _minted: set = field(init=False, repr=False, default_factory=set)

    def __post_init__(self):
        self._rng = random.Random(self.seed)

    def mint(self) -> GUID:
        """Mint a fresh GUID, guaranteed unique within this factory."""
        while True:
            candidate = self._rng.getrandbits(GUID_BITS)
            if candidate not in self._minted:
                self._minted.add(candidate)
                return GUID(candidate)

    def mint_many(self, count: int) -> list:
        """Mint ``count`` distinct GUIDs."""
        return [self.mint() for _ in range(count)]

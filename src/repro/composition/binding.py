"""Binding rules: how a wanted subject parameterises a provider CE.

Figure 3's objLocationCE "takes an entity ID as an input and produces
location information as an output" — the entity ID is a parameter bound at
configuration time. A profile declares how the resolver should derive its
parameter values from the *subject* of the wanted type spec, as a small
declarative record under ``profile.attributes["binding"]``:

``{"kind": "subject", "params": ["subject"]}``
    bind the whole wanted subject to one parameter (objLocationCE,
    OccupancyCE);

``{"kind": "pair", "params": ["from_subject", "to_subject"],
   "separator": "->", "bind_inputs": true}``
    split the wanted subject ("bob->john") on the separator and bind the
    halves to two parameters; with ``bind_inputs`` the provider's event
    inputs are narrowed to those subjects positionally (PathCE's two
    location inputs become location@bob and location@john).

No rule means the provider needs no binding — either it is subject-agnostic
(door sensors emit presence for whoever passes) or its output subject is
fixed (a room thermometer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import CompositionError
from repro.core.types import TypeSpec
from repro.entities.profile import Profile


@dataclass(frozen=True)
class BindingRule:
    """Parsed form of a profile's binding declaration."""

    kind: str                      # "subject" | "pair"
    params: Tuple[str, ...]
    separator: str = "->"
    bind_inputs: bool = False

    def __post_init__(self):
        if self.kind not in ("subject", "pair"):
            raise CompositionError(f"unknown binding kind: {self.kind!r}")
        if self.kind == "subject" and len(self.params) != 1:
            raise CompositionError("'subject' binding needs exactly one param")
        if self.kind == "pair" and len(self.params) != 2:
            raise CompositionError("'pair' binding needs exactly two params")

    def bind(self, subject: object) -> Dict[str, object]:
        """Parameter values for a wanted ``subject``."""
        if subject is None:
            raise CompositionError(
                f"provider requires a bound subject for params {self.params}"
            )
        if self.kind == "subject":
            return {self.params[0]: subject}
        parts = str(subject).split(self.separator)
        if len(parts) != 2:
            raise CompositionError(
                f"subject {subject!r} does not split into two on {self.separator!r}"
            )
        return {self.params[0]: parts[0], self.params[1]: parts[1]}

    def input_subjects(self, subject: object,
                       inputs: List[TypeSpec]) -> List[TypeSpec]:
        """Narrow the provider's event inputs to the bound subjects."""
        if not self.bind_inputs:
            return list(inputs)
        if self.kind == "pair":
            parts = str(subject).split(self.separator)
            if len(inputs) != 2:
                raise CompositionError(
                    f"pair binding expects two inputs, profile has {len(inputs)}"
                )
            return [inputs[0].bind(parts[0]), inputs[1].bind(parts[1])]
        return [spec.bind(subject) for spec in inputs]


def binding_rule_of(profile: Profile) -> Optional[BindingRule]:
    """The profile's binding rule, or None when it declares none."""
    raw = profile.attributes.get("binding")
    if raw is None:
        return None
    try:
        return BindingRule(
            kind=raw["kind"],
            params=tuple(raw["params"]),
            separator=raw.get("separator", "->"),
            bind_inputs=bool(raw.get("bind_inputs", False)),
        )
    except (KeyError, TypeError) as exc:
        raise CompositionError(
            f"malformed binding declaration on {profile.name}: {raw!r}"
        ) from exc

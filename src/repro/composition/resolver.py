"""The Query Resolver — backward-chaining type matching over CE profiles.

Section 3.1: "Query Resolver: Provides the means to take a high level query
and decompose it into a useful configuration of Context Entities." Section
3.2 describes the algorithm on the path example: search profiles for an
entity producing the wanted output, recursively satisfy that entity's
inputs, "down to the sensor/data level".

This resolver adds two things the paper motivates but leaves implicit:

* **representation bridging** — when a provider is semantically right but
  syntactically wrong (W-LAN geometric location vs wanted symbolic), a
  converter node is spliced in via the type registry's converter edges.
  This is exactly the capability the paper says iQueue lacks;
* **template instantiation** — processing CEs can be spawned on demand from
  registered templates, so composition is not limited to components wired
  at design time (the Context Toolkit critique).

Determinism: candidates are scored and tie-broken by name, so the same
environment always yields the same configuration.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.errors import CompositionError, NoProviderError
from repro.core.types import Converter, TypeRegistry, TypeSpec
from repro.composition.binding import BindingRule, binding_rule_of
from repro.composition.graph import ConfigurationPlan, PlanNode
from repro.composition.profile_index import ProfileIndex
from repro.composition.templates import TemplateRegistry
from repro.entities.profile import Profile

logger = logging.getLogger(__name__)

#: hard bound on provider chain depth — a cycle guard of last resort
MAX_DEPTH = 12

#: sentinel: the profile index has not been built yet
_NEVER_BUILT = object()


@dataclass
class _Candidate:
    """One provider option for a wanted spec."""

    profile: Profile
    offered: TypeSpec
    conversion: Tuple[Converter, ...]
    origin: str                 # "live" | "template"
    entity_hex: Optional[str]   # for live
    template_name: Optional[str]  # for template

    def score(self) -> Tuple:
        return (
            len(self.conversion),                 # native representation first
            0 if self.origin == "live" else 1,    # reuse before spawning
            len(self.profile.inputs),             # shallower graphs first
            self.profile.quality.get("accuracy", float("inf")),
            self.profile.name,                    # determinism
        )


class QueryResolver:
    """Builds configuration plans from profiles, templates and converters.

    ``live_profiles`` is a callable returning the current registrations (the
    Profile Manager's view); ``bindings_of`` reports the parameter bindings
    a live CE is already claimed with (the Configuration Manager's ledger),
    so two queries cannot bind one CE to different subjects.

    Candidate search runs over a :class:`ProfileIndex` keyed by offered
    output type. ``feed_version`` is the invalidation signal: a callable
    returning a token that changes whenever the profile feed changes
    (registrations, departures, lease expiries, template additions — the
    Context Server wires registrar + template version counters here). While
    the token is stable, queries reuse the built index; without a version
    feed the index is rebuilt once per ``resolve`` call, which is still
    never worse than the pre-index full scan. ``indexed=False`` keeps the
    original linear scan alive for benchmarking.
    """

    def __init__(
        self,
        registry: TypeRegistry,
        live_profiles: Callable[[], List[Profile]],
        templates: Optional[TemplateRegistry] = None,
        bindings_of: Optional[Callable[[str], Optional[Dict[str, object]]]] = None,
        feed_version: Optional[Callable[[], object]] = None,
        indexed: bool = True,
        shards: int = 1,
        metrics=None,
        range_name: str = "",
    ):
        self.registry = registry
        self.live_profiles = live_profiles
        self.templates = templates or TemplateRegistry()
        self.bindings_of = bindings_of or (lambda _hex: None)
        self.feed_version = feed_version
        self.indexed = indexed
        self._converter_counter = itertools.count(1)
        self.resolutions = 0
        self.backtracks = 0
        self.index_rebuilds = 0
        self.index_hits = 0
        self._index = ProfileIndex(registry)
        self._index_token: object = _NEVER_BUILT
        self._shard_index = None
        if shards > 1:
            if not indexed:
                raise ValueError("sharded candidate search requires indexed=True")
            if feed_version is None:
                raise ValueError(
                    "sharded candidate search needs a feed_version callable "
                    "returning (registrations_version, templates_version)")
            # imported lazily: shard_index pulls in repro.server (for the
            # ring), which imports this module back through the manager
            from repro.composition.shard_index import ShardedProfileIndex
            self._shard_index = ShardedProfileIndex(registry, shards)
        self._metrics = metrics
        self._range_label = range_name or "-"

    # -- public API ---------------------------------------------------------------

    def resolve(
        self,
        wanted: TypeSpec,
        exclude: FrozenSet[str] = frozenset(),
        provider_predicate: Optional[Callable[[Profile], bool]] = None,
    ) -> ConfigurationPlan:
        """Build a plan delivering ``wanted``.

        ``exclude`` holds entity hexes and template names to avoid (used for
        re-composition after failure). ``provider_predicate`` applies Where
        constraints to candidate providers. Raises :class:`NoProviderError`
        when no complete chain down to data sources exists.
        """
        self.resolutions += 1
        plan = ConfigurationPlan(wanted)
        key, actual = self._satisfy(plan, wanted, chain=(), depth=0,
                                    exclude=exclude,
                                    predicate=provider_predicate)
        plan.set_output(key, actual)
        plan.validate()
        logger.debug("resolved %s ->\n%s", wanted, plan.describe())
        return plan

    @property
    def shard_count(self) -> int:
        return self._shard_index.shard_count if self._shard_index else 1

    def note_profile_added(self, profile: Optional[Profile]) -> int:
        """Arrival delta for the sharded index; no-op when unsharded.

        Call *after* the feed version has been bumped for this arrival.
        ``profile`` is None for arrivals that contribute no providers
        (context-aware applications) — the version chain still advances.
        Returns the number of shard slices patched in place.
        """
        if self._shard_index is None:
            return 0
        applied = self._shard_index.apply_add(profile, self.feed_version())
        if self._metrics is not None:
            self._metrics.counter(
                "resolver.shard.deltas",
                "single-profile deltas applied in place of slice rebuilds",
                labels=("range",)).inc(range=self._range_label)
        return applied

    def note_profile_removed(self, entity_hex: Optional[str]) -> int:
        """Departure delta for the sharded index; no-op when unsharded."""
        if self._shard_index is None:
            return 0
        applied = self._shard_index.apply_remove(entity_hex,
                                                 self.feed_version())
        if self._metrics is not None:
            self._metrics.counter(
                "resolver.shard.deltas",
                "single-profile deltas applied in place of slice rebuilds",
                labels=("range",)).inc(range=self._range_label)
        return applied

    # -- search --------------------------------------------------------------------

    def _satisfy(
        self,
        plan: ConfigurationPlan,
        wanted: TypeSpec,
        chain: Tuple[str, ...],
        depth: int,
        exclude: FrozenSet[str],
        predicate: Optional[Callable[[Profile], bool]],
    ) -> Tuple[str, TypeSpec]:
        if depth > MAX_DEPTH:
            raise NoProviderError(wanted, chain)
        for candidate in self._candidates(wanted, chain, exclude, predicate):
            checkpoint = _PlanCheckpoint(plan)
            try:
                return self._expand(plan, candidate, wanted, chain, depth,
                                    exclude, predicate)
            except CompositionError:
                self.backtracks += 1
                checkpoint.rollback()
        raise NoProviderError(wanted, chain)

    def _satisfy_all(
        self,
        plan: ConfigurationPlan,
        wanted: TypeSpec,
        chain: Tuple[str, ...],
        depth: int,
        exclude: FrozenSet[str],
        predicate: Optional[Callable[[Profile], bool]],
    ) -> List[Tuple[str, TypeSpec]]:
        """Wire EVERY viable provider of an unbound-subject input.

        Figure 3: the objLocationCE "was set up to subscribe to all events
        emanating from door sensors" — a subject-less input is a broadcast
        input, so one edge per provider, not a single best chain.
        """
        if depth > MAX_DEPTH:
            raise NoProviderError(wanted, chain)
        wired: List[Tuple[str, TypeSpec]] = []
        seen_keys: set = set()
        for candidate in self._candidates(wanted, chain, exclude, predicate):
            if candidate.origin == "template" and wired:
                # Spawning extra template instances adds no new data once at
                # least one provider is wired.
                continue
            checkpoint = _PlanCheckpoint(plan)
            try:
                key, actual = self._expand(plan, candidate, wanted, chain,
                                           depth, exclude, predicate)
            except CompositionError:
                self.backtracks += 1
                checkpoint.rollback()
                continue
            if key in seen_keys:
                continue
            seen_keys.add(key)
            wired.append((key, actual))
        if not wired:
            raise NoProviderError(wanted, chain)
        return wired

    def _ensure_index(self) -> None:
        """Rebuild the profile index only when the feed version moved.

        Without a ``feed_version`` wire the resolution counter is the token,
        i.e. one rebuild per top-level ``resolve`` — backwards compatible
        with callers handing in a mutable profile list.
        """
        token = (self.feed_version() if self.feed_version is not None
                 else self.resolutions)
        if token == self._index_token:
            return
        self._index.rebuild(self.live_profiles(), self.templates)
        self._index_token = token
        self.index_rebuilds += 1
        if self._metrics is not None:
            self._metrics.counter(
                "resolver.index.rebuilds",
                "profile index rebuilds triggered by feed changes",
                labels=("range",)).inc(range=self._range_label)

    def _candidates(
        self,
        wanted: TypeSpec,
        chain: Tuple[str, ...],
        exclude: FrozenSet[str],
        predicate: Optional[Callable[[Profile], bool]],
    ) -> List[_Candidate]:
        if not self.indexed:
            return self._candidates_naive(wanted, chain, exclude, predicate)
        if self._shard_index is not None:
            entries, rebuilt = self._shard_index.providers(
                wanted.type_name, self.live_profiles, self.templates,
                self.feed_version())
            if rebuilt:
                self.index_rebuilds += 1
                if self._metrics is not None:
                    self._metrics.counter(
                        "resolver.shard.rebuilds",
                        "per-shard provider slice rebuilds on stale tokens",
                        labels=("range",)).inc(range=self._range_label)
        else:
            self._ensure_index()
            entries = self._index.providers(wanted.type_name)
        self.index_hits += 1
        if self._metrics is not None:
            self._metrics.counter(
                "resolver.index.hits",
                "candidate lookups served from the profile index",
                labels=("range",)).inc(range=self._range_label)
        found: List[_Candidate] = []
        taken: Set[Tuple[str, Optional[str]]] = set()
        for entry in entries:
            if entry.origin == "live":
                if entry.entity_hex in exclude:
                    continue
            elif entry.template_name in exclude:
                continue
            provider_key = (entry.origin, entry.entity_hex or entry.template_name)
            if provider_key in taken:
                continue  # an earlier output of this provider already matched
            profile = entry.profile
            if profile.name in chain:
                continue  # would create a cycle through this provider kind
            if predicate is not None and not predicate(profile):
                continue
            conversion = self.registry.conversion_path(entry.offered, wanted)
            if conversion is None:
                continue
            taken.add(provider_key)
            found.append(_Candidate(profile, entry.offered, tuple(conversion),
                                    entry.origin, entry.entity_hex,
                                    entry.template_name))
        found.sort(key=_Candidate.score)
        return found

    def _candidates_naive(
        self,
        wanted: TypeSpec,
        chain: Tuple[str, ...],
        exclude: FrozenSet[str],
        predicate: Optional[Callable[[Profile], bool]],
    ) -> List[_Candidate]:
        """The pre-index full scan; the benchmark/equivalence baseline."""
        found: List[_Candidate] = []

        def consider(profile: Profile, origin: str,
                     entity_hex: Optional[str], template_name: Optional[str]) -> None:
            if profile.name in chain:
                return  # would create a cycle through this provider kind
            if predicate is not None and not predicate(profile):
                return
            for offered in profile.outputs:
                conversion = self.registry.conversion_path(offered, wanted)
                if conversion is None:
                    continue
                found.append(_Candidate(profile, offered, tuple(conversion),
                                        origin, entity_hex, template_name))
                break  # one matching output per profile suffices

        for profile in self.live_profiles():
            key = profile.entity_id.hex
            if key in exclude:
                continue
            consider(profile, "live", key, None)
        for template in self.templates.all_templates():
            if template.name in exclude:
                continue
            consider(template.prototype, "template", None, template.name)

        found.sort(key=_Candidate.score)
        return found

    def _expand(
        self,
        plan: ConfigurationPlan,
        candidate: _Candidate,
        wanted: TypeSpec,
        chain: Tuple[str, ...],
        depth: int,
        exclude: FrozenSet[str],
        predicate: Optional[Callable[[Profile], bool]],
    ) -> Tuple[str, TypeSpec]:
        profile = candidate.profile
        rule = binding_rule_of(profile)
        bindings = self._bindings_for(candidate, rule, wanted)

        node = self._node_for(plan, candidate, bindings)
        # Recursively satisfy the provider's event inputs (unless the node
        # was already in the plan, in which case its inputs are wired).
        if not plan.inputs_of(node.key) and profile.inputs:
            input_specs = (rule.input_subjects(wanted.subject, profile.inputs)
                           if rule and wanted.subject is not None
                           else list(profile.inputs))
            for input_spec in input_specs:
                if input_spec.subject is None:
                    sources = self._satisfy_all(
                        plan, input_spec, chain + (profile.name,),
                        depth + 1, exclude, predicate)
                    for sub_key, sub_actual in sources:
                        plan.add_edge(sub_key, node.key, sub_actual)
                else:
                    sub_key, sub_actual = self._satisfy(
                        plan, input_spec, chain + (profile.name,),
                        depth + 1, exclude, predicate)
                    plan.add_edge(sub_key, node.key, sub_actual)

        produced = TypeSpec(
            candidate.offered.type_name,
            candidate.offered.representation,
            wanted.subject if wanted.subject is not None else candidate.offered.subject,
            candidate.offered.quality,
        )
        if not candidate.conversion:
            return node.key, produced

        # Splice a converter bridging the representation gap.
        target = produced.with_representation(wanted.representation)
        conv_key = f"conv:{next(self._converter_counter)}"
        conv_profile = Profile(
            entity_id=profile.entity_id,  # placeholder; manager mints real GUIDs
            name=f"convert:{produced.representation}->{target.representation}",
            outputs=[target],
            inputs=[produced],
        )
        conv_node = PlanNode(
            key=conv_key,
            kind="converter",
            profile=conv_profile,
            converter_chain=candidate.conversion,
            input_spec=produced,
            output_spec=target,
        )
        plan.add_node(conv_node)
        plan.add_edge(node.key, conv_key, produced)
        return conv_key, target

    def _bindings_for(self, candidate: _Candidate, rule: Optional[BindingRule],
                      wanted: TypeSpec) -> Dict[str, object]:
        """Parameter bindings this provider needs, checking claim conflicts."""
        if rule is None:
            return {}
        if wanted.subject is None:
            # No subject to bind. A live CE already claimed with bindings can
            # serve (it produces *some* subject's stream, and any-subject
            # matches); an unbound one or a fresh template instance cannot.
            if candidate.origin == "live":
                existing = self.bindings_of(candidate.entity_hex)
                if existing:
                    return dict(existing)
            raise CompositionError(
                f"{candidate.profile.name} needs a bound subject and the "
                f"wanted spec {wanted} has none"
            )
        bindings = rule.bind(wanted.subject)
        if candidate.origin == "live":
            existing = self.bindings_of(candidate.entity_hex)
            if existing is not None and existing != bindings:
                raise CompositionError(
                    f"{candidate.profile.name} already bound to {existing}, "
                    f"cannot rebind to {bindings}"
                )
        return bindings

    def _node_for(self, plan: ConfigurationPlan, candidate: _Candidate,
                  bindings: Dict[str, object]) -> PlanNode:
        if candidate.origin == "live":
            key = f"live:{candidate.entity_hex}"
            existing = plan.nodes.get(key)
            if existing is not None:
                if existing.bindings != bindings:
                    raise CompositionError(
                        f"plan would bind {candidate.profile.name} twice "
                        f"({existing.bindings} vs {bindings})"
                    )
                return existing
            return plan.add_node(PlanNode(
                key=key, kind="live", profile=candidate.profile,
                entity_hex=candidate.entity_hex, bindings=bindings))

        # Template: reuse an identical instantiation already in this plan
        # (e.g. both halves of a path share one objLocation template only if
        # bound identically — otherwise a second instance is created).
        for node in plan.nodes.values():
            if (node.kind == "template"
                    and node.template_name == candidate.template_name
                    and node.bindings == bindings):
                return node
        index = sum(1 for node in plan.nodes.values()
                    if node.kind == "template"
                    and node.template_name == candidate.template_name)
        key = f"tmpl:{candidate.template_name}#{index + 1}"
        return plan.add_node(PlanNode(
            key=key, kind="template", profile=candidate.profile,
            template_name=candidate.template_name, bindings=bindings))


class _PlanCheckpoint:
    """Undo buffer for backtracking over a partially-expanded plan."""

    def __init__(self, plan: ConfigurationPlan):
        self.plan = plan
        self.node_keys = set(plan.nodes)
        self.edge_count = len(plan.edges)

    def rollback(self) -> None:
        for key in list(self.plan.nodes):
            if key not in self.node_keys:
                del self.plan.nodes[key]
        del self.plan.edges[self.edge_count:]

"""The model of composition (Section 3.2).

"A configuration is an event subscription graph between entities where the
inputs to one CE are provided by the outputs of others. To achieve this, we
use query data along with input and output information obtained from CE
Profiles to perform type matching. When this process is complete, setting up
subscriptions between CE's to their data sources creates the required
graph."

:mod:`repro.composition.resolver` performs the backward-chaining type
matching; :mod:`repro.composition.graph` is the resulting configuration
plan; :mod:`repro.composition.manager` instantiates plans as live
subscription graphs, monitors them and re-composes on failure;
:mod:`repro.composition.templates` lets deployments register CE factories so
the infrastructure can spawn processing components on demand;
:mod:`repro.composition.binding` interprets profile binding rules.
"""

from repro.composition.binding import BindingRule, binding_rule_of
from repro.composition.templates import CETemplate, TemplateRegistry
from repro.composition.graph import ConfigurationPlan, PlanNode, PlanEdge
from repro.composition.resolver import QueryResolver
from repro.composition.manager import ConfigurationManager, Configuration, ConfigState

__all__ = [
    "BindingRule",
    "binding_rule_of",
    "CETemplate",
    "TemplateRegistry",
    "ConfigurationPlan",
    "PlanNode",
    "PlanEdge",
    "QueryResolver",
    "ConfigurationManager",
    "Configuration",
    "ConfigState",
]

"""Configuration plans — the event subscription graphs of Section 3.2.

A :class:`ConfigurationPlan` is the resolver's output: a DAG whose nodes are
providers (live CEs, template instantiations, or converter insertions) and
whose edges are the typed event streams one node consumes from another. The
Configuration Manager turns a plan into reality by instantiating template
and converter nodes and creating mediator subscriptions for every edge.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.errors import CompositionError, CycleError
from repro.core.types import Converter, TypeSpec
from repro.entities.profile import Profile

_plan_ids = itertools.count(1)


@dataclass
class PlanNode:
    """One provider in a configuration plan.

    ``kind``:

    * ``live`` — an already-registered CE (``entity_hex`` set);
    * ``template`` — to be instantiated from ``template_name``;
    * ``converter`` — to be built from ``converter_chain`` bridging
      ``input_spec`` to ``output_spec``.
    """

    key: str
    kind: str
    profile: Profile
    entity_hex: Optional[str] = None
    template_name: Optional[str] = None
    bindings: Dict[str, object] = field(default_factory=dict)
    converter_chain: Tuple[Converter, ...] = ()
    input_spec: Optional[TypeSpec] = None
    output_spec: Optional[TypeSpec] = None

    def __post_init__(self):
        if self.kind not in ("live", "template", "converter"):
            raise CompositionError(f"unknown plan node kind: {self.kind!r}")
        if self.kind == "live" and not self.entity_hex:
            raise CompositionError(f"live node {self.key} missing entity_hex")
        if self.kind == "template" and not self.template_name:
            raise CompositionError(f"template node {self.key} missing template_name")
        if self.kind == "converter" and not self.converter_chain:
            raise CompositionError(f"converter node {self.key} missing chain")

    def __str__(self) -> str:
        label = self.profile.name
        if self.bindings:
            bound = ", ".join(f"{k}={v}" for k, v in sorted(self.bindings.items()))
            label += f"({bound})"
        return f"{self.kind}:{label}"


@dataclass
class PlanEdge:
    """Consumer subscribes to producer's stream matching ``spec``."""

    producer: str
    consumer: str
    spec: TypeSpec

    def __str__(self) -> str:
        return f"{self.producer} --{self.spec}--> {self.consumer}"


class ConfigurationPlan:
    """A validated DAG of providers for one resolved type spec."""

    def __init__(self, wanted: TypeSpec):
        self.plan_id = f"plan-{next(_plan_ids)}"
        self.wanted = wanted
        self.nodes: Dict[str, PlanNode] = {}
        self.edges: List[PlanEdge] = []
        self.output_key: Optional[str] = None
        #: the spec the output node actually emits (matches ``wanted`` after
        #: any converter insertion)
        self.output_spec: Optional[TypeSpec] = None

    # -- construction ------------------------------------------------------------

    def add_node(self, node: PlanNode) -> PlanNode:
        """Add a node; re-adding the same key returns the existing node
        (shared sub-providers dedup naturally by key)."""
        existing = self.nodes.get(node.key)
        if existing is not None:
            return existing
        self.nodes[node.key] = node
        return node

    def add_edge(self, producer_key: str, consumer_key: str, spec: TypeSpec) -> PlanEdge:
        for key in (producer_key, consumer_key):
            if key not in self.nodes:
                raise CompositionError(f"edge references unknown node: {key}")
        edge = PlanEdge(producer_key, consumer_key, spec)
        if not any(e.producer == edge.producer and e.consumer == edge.consumer
                   and e.spec == edge.spec for e in self.edges):
            self.edges.append(edge)
        return edge

    def set_output(self, key: str, spec: TypeSpec) -> None:
        if key not in self.nodes:
            raise CompositionError(f"output references unknown node: {key}")
        self.output_key = key
        self.output_spec = spec

    # -- validation / introspection --------------------------------------------------

    def to_digraph(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for edge in self.edges:
            graph.add_edge(edge.producer, edge.consumer)
        return graph

    def validate(self) -> None:
        """Check the plan is a rooted DAG with live data sources at the leaves."""
        if self.output_key is None or self.output_spec is None:
            raise CompositionError("plan has no output node")
        graph = self.to_digraph()
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise CycleError(f"configuration contains a cycle: {cycle}")
        reachable = nx.ancestors(graph, self.output_key) | {self.output_key}
        unreachable = set(self.nodes) - reachable
        if unreachable:
            raise CompositionError(
                f"plan nodes do not feed the output: {sorted(unreachable)}"
            )
        for key in self.source_keys():
            node = self.nodes[key]
            if node.kind == "converter":
                raise CompositionError(f"converter {key} has no input stream")

    def source_keys(self) -> List[str]:
        """Nodes with no incoming edges — the sensor/data level."""
        consumers = {edge.consumer for edge in self.edges}
        has_producers = {edge.producer for edge in self.edges}
        keys = set(self.nodes) - consumers
        # an isolated single-node plan is its own source
        return sorted(keys) if keys else sorted(set(self.nodes) - has_producers)

    def inputs_of(self, key: str) -> List[PlanEdge]:
        return [edge for edge in self.edges if edge.consumer == key]

    def consumers_of(self, key: str) -> List[PlanEdge]:
        return [edge for edge in self.edges if edge.producer == key]

    def depth(self) -> int:
        """Longest producer chain feeding the output (1 = direct source)."""
        graph = self.to_digraph()
        if not self.nodes:
            return 0
        return nx.dag_longest_path_length(graph) + 1

    def node_count(self) -> int:
        return len(self.nodes)

    def live_entity_hexes(self) -> List[str]:
        return [node.entity_hex for node in self.nodes.values()
                if node.kind == "live" and node.entity_hex]

    def describe(self) -> str:
        """Human-readable rendering for logs and EXPERIMENTS.md."""
        lines = [f"{self.plan_id}: wanted={self.wanted} depth={self.depth()}"]
        for edge in self.edges:
            lines.append(f"  {self.nodes[edge.producer]} --{edge.spec}--> "
                         f"{self.nodes[edge.consumer]}")
        if not self.edges and self.output_key:
            lines.append(f"  {self.nodes[self.output_key]} (direct)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"ConfigurationPlan({self.plan_id}, nodes={len(self.nodes)}, "
                f"edges={len(self.edges)}, wanted={self.wanted})")

"""Offered-output-type index over CE profiles for the Query Resolver.

The naive ``_candidates`` step rescans every live profile and template for
every ``_satisfy`` call — and backward chaining calls ``_satisfy`` once per
input edge, so one resolve is O(plan_edges x profiles). This index buckets
each (profile, offered output) pair under the offered type name *and all of
its is_a ancestors*, because :meth:`TypeRegistry.conversion_path` lets a
subtype stand in for its parent (``gps-position`` satisfies a wanted
``location``). A candidate query for ``wanted`` then reads exactly the
``wanted.type_name`` bucket.

Soundness: the bucket is a pre-filter only. Representation bridging, subject
compatibility and converter search still run per entry via
``conversion_path``, so results are identical to the full scan — entries are
stored in enumeration order (live profiles first, templates after, outputs
in profile order), which makes the candidate list a subsequence of the naive
scan's and keeps the final score-sort stable-tie-identical.

Outputs whose type the registry does not know cannot be filed under
ancestors; they go to a residual list scanned on every query, which
reproduces the naive behaviour (``conversion_path`` raising for unknown
types at query time) exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.errors import SCIError
from repro.core.types import TypeRegistry, TypeSpec
from repro.composition.templates import TemplateRegistry
from repro.entities.profile import Profile


@dataclass(frozen=True)
class ProviderEntry:
    """One (profile, offered output) pair the resolver may draw on."""

    profile: Profile
    offered: TypeSpec
    offered_position: int       # index into profile.outputs, for first-match rule
    origin: str                 # "live" | "template"
    entity_hex: Optional[str]   # for live
    template_name: Optional[str]  # for template


class ProfileIndex:
    """Type-keyed provider buckets, rebuilt only when the feed changes.

    The owner (the resolver) decides *when* to rebuild — typically gated on
    registrar/template version counters so registrations, departures and
    lease expiries invalidate the index instead of every query paying a
    rebuild.
    """

    def __init__(self, registry: TypeRegistry):
        self.registry = registry
        self._buckets: Dict[str, List[ProviderEntry]] = {}
        self._residual: List[ProviderEntry] = []
        self.entries = 0

    def rebuild(self, live_profiles: List[Profile],
                templates: TemplateRegistry) -> None:
        self._buckets = {}
        self._residual = []
        self.entries = 0
        for profile in live_profiles:
            self._add_profile(profile, "live", profile.entity_id.hex, None)
        for template in templates.all_templates():
            self._add_profile(template.prototype, "template", None, template.name)

    def _add_profile(self, profile: Profile, origin: str,
                     entity_hex: Optional[str],
                     template_name: Optional[str]) -> None:
        for position, offered in enumerate(profile.outputs):
            entry = ProviderEntry(profile, offered, position, origin,
                                  entity_hex, template_name)
            self.entries += 1
            try:
                ancestors = self.registry.ancestors(offered.type_name)
            except SCIError:
                self._residual.append(entry)
                continue
            for type_name in ancestors:
                self._buckets.setdefault(type_name, []).append(entry)

    def providers(self, type_name: str) -> List[ProviderEntry]:
        """Entries whose offered output could satisfy ``type_name``.

        Bucketed entries first (enumeration order), then the residual list —
        the same relative order the naive scan visits them in.
        """
        bucket = self._buckets.get(type_name, [])
        if not self._residual:
            return bucket
        return bucket + self._residual

    @property
    def residual_size(self) -> int:
        return len(self._residual)

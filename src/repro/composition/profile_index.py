"""Offered-output-type index over CE profiles for the Query Resolver.

The naive ``_candidates`` step rescans every live profile and template for
every ``_satisfy`` call — and backward chaining calls ``_satisfy`` once per
input edge, so one resolve is O(plan_edges x profiles). This index buckets
each (profile, offered output) pair under the offered type name *and all of
its is_a ancestors*, because :meth:`TypeRegistry.conversion_path` lets a
subtype stand in for its parent (``gps-position`` satisfies a wanted
``location``). A candidate query for ``wanted`` then reads exactly the
``wanted.type_name`` bucket.

Soundness: the bucket is a pre-filter only. Representation bridging, subject
compatibility and converter search still run per entry via
``conversion_path``, so results are identical to the full scan — entries are
stored in enumeration order (live profiles first, templates after, outputs
in profile order), which makes the candidate list a subsequence of the naive
scan's and keeps the final score-sort stable-tie-identical.

Outputs whose type the registry does not know cannot be filed under
ancestors; they go to a residual list scanned on every query, which
reproduces the naive behaviour (``conversion_path`` raising for unknown
types at query time) exactly.

Buckets are insertion-ordered dicts keyed by a monotone entry token, with a
reverse map from entity hex to its tokens. That makes single-profile deltas
(``add_profile`` / ``remove_entity``) O(outputs x ancestors) instead of a
full rebuild — the sharded resolver's arrival/departure fast path. Delta
adds append after whatever is already filed; candidate correctness is
order-insensitive because per-profile outputs stay adjacent (first-match
rule) and the resolver sorts candidates by a total-order score.

``owns`` optionally restricts which bucket type names this index files
under (sharded deployments pass the ring-ownership predicate); residual
entries are always kept, since every query must scan them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.errors import SCIError
from repro.core.types import TypeRegistry, TypeSpec
from repro.composition.templates import TemplateRegistry
from repro.entities.profile import Profile


@dataclass(frozen=True)
class ProviderEntry:
    """One (profile, offered output) pair the resolver may draw on."""

    profile: Profile
    offered: TypeSpec
    offered_position: int       # index into profile.outputs, for first-match rule
    origin: str                 # "live" | "template"
    entity_hex: Optional[str]   # for live
    template_name: Optional[str]  # for template


#: reverse-map marker: the entry is filed on the residual list
_RESIDUAL = None


class ProfileIndex:
    """Type-keyed provider buckets, rebuilt only when the feed changes.

    The owner (the resolver) decides *when* to rebuild — typically gated on
    registrar/template version counters so registrations, departures and
    lease expiries invalidate the index instead of every query paying a
    rebuild. Between rebuilds, single-entity deltas can be applied in place.
    """

    def __init__(self, registry: TypeRegistry,
                 owns: Optional[Callable[[str], bool]] = None):
        self.registry = registry
        self.owns = owns
        self._tokens = itertools.count(1)
        self._buckets: Dict[str, Dict[int, ProviderEntry]] = {}
        self._residual: Dict[int, ProviderEntry] = {}
        #: entity hex -> entry token -> bucket names filed under
        #: (the _RESIDUAL marker stands for the residual list)
        self._by_entity: Dict[str, Dict[int, List[Optional[str]]]] = {}
        self.entries = 0

    def rebuild(self, live_profiles: List[Profile],
                templates: TemplateRegistry) -> None:
        self._buckets = {}
        self._residual = {}
        self._by_entity = {}
        self.entries = 0
        for profile in live_profiles:
            self.add_profile(profile, "live", profile.entity_id.hex, None)
        for template in templates.all_templates():
            self.add_profile(template.prototype, "template", None, template.name)

    def add_profile(self, profile: Profile, origin: str = "live",
                    entity_hex: Optional[str] = None,
                    template_name: Optional[str] = None) -> int:
        """File one profile's outputs; returns the number of entries filed.

        Usable both from :meth:`rebuild` and as a live delta when a single
        entity registers — new entries land after existing ones, which the
        resolver's score-sort makes order-equivalent to a full rebuild.
        """
        if origin == "live" and entity_hex is None:
            entity_hex = profile.entity_id.hex
        filed_count = 0
        for position, offered in enumerate(profile.outputs):
            entry = ProviderEntry(profile, offered, position, origin,
                                  entity_hex, template_name)
            token = next(self._tokens)
            filed: List[Optional[str]] = []
            try:
                ancestors = self.registry.ancestors(offered.type_name)
            except SCIError:
                self._residual[token] = entry
                filed.append(_RESIDUAL)
            else:
                for type_name in ancestors:
                    if self.owns is not None and not self.owns(type_name):
                        continue
                    self._buckets.setdefault(type_name, {})[token] = entry
                    filed.append(type_name)
            if not filed:
                continue  # every bucket belongs to another shard
            self.entries += 1
            filed_count += 1
            if entity_hex is not None:
                self._by_entity.setdefault(entity_hex, {})[token] = filed
        return filed_count

    def remove_entity(self, entity_hex: str) -> int:
        """Unfile every entry of a departed entity; returns entries removed."""
        tokens = self._by_entity.pop(entity_hex, None)
        if not tokens:
            return 0
        removed = 0
        for token, filed in tokens.items():
            removed += 1
            self.entries -= 1
            for type_name in filed:
                if type_name is _RESIDUAL:
                    self._residual.pop(token, None)
                    continue
                bucket = self._buckets.get(type_name)
                if bucket is not None:
                    bucket.pop(token, None)
                    if not bucket:
                        del self._buckets[type_name]
        return removed

    def providers(self, type_name: str) -> List[ProviderEntry]:
        """Entries whose offered output could satisfy ``type_name``.

        Bucketed entries first (enumeration order), then the residual list —
        the same relative order the naive scan visits them in.
        """
        bucket = self._buckets.get(type_name)
        found = list(bucket.values()) if bucket else []
        if self._residual:
            found.extend(self._residual.values())
        return found

    @property
    def residual_size(self) -> int:
        return len(self._residual)

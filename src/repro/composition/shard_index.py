"""Sharded provider index: K ProfileIndex partitions over a consistent ring.

The resolver's single :class:`~repro.composition.profile_index.ProfileIndex`
rebuilds the *whole* provider table whenever the profile feed version moves.
At registration-churn rates that matters: with N live profiles a churning
range pays O(N) per arrival. Sharding splits the table by **offered type
name** — ring key ``(type_name, None)`` — so

* a candidate query for ``wanted`` touches exactly one shard (plus that
  shard's residual list), and a stale shard rebuilds only its ~1/K slice of
  the buckets;
* single-entity arrivals/departures are applied as in-place deltas to the
  shards that are provably current, so steady-state churn costs
  O(outputs x ancestors) instead of O(N).

Delta soundness is the version-chain rule: the feed token is the pair
``(registrations_version, templates_version)``, and the registrar bumps the
registrations component by exactly one per arrival/departure. A delta
carrying token T applies to a shard only if that shard's token is the
immediate predecessor of T (same templates component, registrations one
behind). Any gap — missed delta, template registration, never built — makes
the shard token mismatch, and the lazy rebuild path catches it up on the
next query. Nothing can be silently stale.

Residual entries (offered types the registry does not know) are filed on
*every* shard, because every query must scan them; they are few by
construction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.composition.profile_index import ProfileIndex, ProviderEntry
from repro.composition.templates import TemplateRegistry
from repro.core.types import TypeRegistry
from repro.entities.profile import Profile
from repro.server.shard import ShardRing

#: sentinel: this shard's slice has never been built
_NEVER_BUILT = object()


class ShardedProfileIndex:
    """Ring-partitioned provider buckets with per-shard version tokens."""

    def __init__(self, registry: TypeRegistry, shards: int):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.registry = registry
        self.ring = ShardRing(tuple(range(shards)))
        self._shards: Dict[int, ProfileIndex] = {}
        self._shard_tokens: Dict[int, object] = {}
        for shard_id in range(shards):
            self._shards[shard_id] = ProfileIndex(
                registry, owns=self._ownership(shard_id))
            self._shard_tokens[shard_id] = _NEVER_BUILT
        self.rebuilds = 0
        self.deltas = 0

    def _ownership(self, shard_id: int) -> Callable[[str], bool]:
        def owns(type_name: str, _shard_id: int = shard_id) -> bool:
            return self.ring.owner((type_name, None)) == _shard_id
        return owns

    # -- queries --------------------------------------------------------------

    def shard_for(self, type_name: str) -> int:
        return self.ring.owner((type_name, None))

    def providers(self, type_name: str,
                  live_profiles: Callable[[], List[Profile]],
                  templates: TemplateRegistry,
                  token: object) -> Tuple[List[ProviderEntry], bool]:
        """Provider entries for ``type_name`` from the owning shard.

        Rebuilds that shard's slice first when its token is stale; returns
        ``(entries, rebuilt)`` so the resolver can count slice rebuilds.
        """
        shard_id = self.ring.owner((type_name, None))
        index = self._shards[shard_id]
        rebuilt = False
        if self._shard_tokens[shard_id] != token:
            index.rebuild(live_profiles(), templates)
            self._shard_tokens[shard_id] = token
            self.rebuilds += 1
            rebuilt = True
        return index.providers(type_name), rebuilt

    # -- deltas ---------------------------------------------------------------

    @staticmethod
    def _predecessor(token: object) -> object:
        """The feed token immediately before ``token``.

        Sharded mode requires the ``(registrations_version,
        templates_version)`` token shape; anything else cannot chain deltas.
        """
        try:
            registrations, templates_version = token
            return (registrations - 1, templates_version)
        except (TypeError, ValueError):
            raise TypeError(
                "sharded index needs a (registrations_version, "
                f"templates_version) feed token, got {token!r}") from None

    def apply_add(self, profile: Optional[Profile], token: object) -> int:
        """Register-delta: file ``profile`` on every provably-current shard.

        ``profile`` may be None for arrivals that bump the feed version but
        add nothing to the provider table (context-aware applications) — the
        token still advances so later deltas keep chaining. Returns the
        number of shards the delta applied to; the rest catch up lazily.
        """
        expected = self._predecessor(token)
        applied = 0
        for shard_id, index in self._shards.items():
            if self._shard_tokens[shard_id] != expected:
                continue
            if profile is not None:
                index.add_profile(profile, "live", profile.entity_id.hex, None)
            self._shard_tokens[shard_id] = token
            applied += 1
        self.deltas += 1
        return applied

    def apply_remove(self, entity_hex: Optional[str], token: object) -> int:
        """Departure-delta: unfile an entity on every provably-current shard."""
        expected = self._predecessor(token)
        applied = 0
        for shard_id, index in self._shards.items():
            if self._shard_tokens[shard_id] != expected:
                continue
            if entity_hex is not None:
                index.remove_entity(entity_hex)
            self._shard_tokens[shard_id] = token
            applied += 1
        self.deltas += 1
        return applied

    # -- introspection --------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def built_shards(self) -> List[int]:
        return [shard_id for shard_id, token in self._shard_tokens.items()
                if token is not _NEVER_BUILT]

    @property
    def entries(self) -> int:
        return sum(index.entries for index in self._shards.values())

    @property
    def residual_size(self) -> int:
        # residuals are replicated on every shard; report one copy's worth
        # (max, since lazily-built shards may not hold them yet)
        return max(index.residual_size for index in self._shards.values())

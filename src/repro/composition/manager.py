"""The Configuration Manager: instantiates, shares and repairs configurations.

Section 3.2: "Once a complete configuration has been discovered (i.e. down
to the sensor/data level) to fulfill a query's requirements, the Context
Server sets up event subscriptions between the CEs involved."

Section 6: the infrastructure "will also adjust the composition of these
components dynamically in the case of environment changes, thus improving
service and fault tolerance while minimising user intervention" — that is
:meth:`ConfigurationManager.handle_entity_departure`: when a CE in a live
configuration crashes or leaves the range, the manager tears down the broken
subgraph, re-runs the resolver with the lost entity excluded, and splices in
the alternative (e.g. W-LAN location plus a converter after a door-sensor
chain dies). The C1 benchmark measures this repair path.

Graph reuse (Solar's contribution, adopted by SCI): a second query wanting a
stream an active configuration already delivers gets a new output
subscription on the existing graph instead of a duplicate graph.
"""

from __future__ import annotations

import enum
import itertools
import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.errors import CompositionError, NoProviderError
from repro.core.ids import GUID, GuidFactory
from repro.core.types import TypeSpec
from repro.composition.graph import ConfigurationPlan, PlanNode
from repro.composition.resolver import QueryResolver
from repro.composition.templates import TemplateRegistry
from repro.entities.derived import ConverterCE
from repro.entities.entity import ContextEntity
from repro.events.filters import (
    AndFilter,
    EventFilter,
    SourceFilter,
    SubjectFilter,
    TypeFilter,
)
from repro.events.mediator import EventMediator
from repro.net.transport import Network

logger = logging.getLogger(__name__)

_config_ids = itertools.count(1)


class ConfigState(enum.Enum):
    ACTIVE = "active"
    REPAIRING = "repairing"
    DEAD = "dead"
    TORN_DOWN = "torn-down"


@dataclass
class _OutputDelivery:
    """One subscriber attached to a configuration's output stream."""

    subscriber_hex: str
    one_time: bool
    query_id: str


@dataclass
class Configuration:
    """A live instantiated subscription graph."""

    config_id: str
    wanted: TypeSpec
    plan: ConfigurationPlan
    state: ConfigState = ConfigState.ACTIVE
    #: plan node key -> live entity GUID hex
    node_guids: Dict[str, str] = field(default_factory=dict)
    #: GUIDs of entities this configuration spawned (and must stop)
    spawned: List[GUID] = field(default_factory=list)
    deliveries: List[_OutputDelivery] = field(default_factory=list)
    excluded: Set[str] = field(default_factory=set)
    repairs: int = 0
    created_at: float = 0.0

    def uses_entity(self, entity_hex: str) -> bool:
        return entity_hex in self.node_guids.values()


class ConfigurationManager:
    """Runs on (and is owned by) one Context Server."""

    def __init__(
        self,
        network: Network,
        host_id: str,
        mediator: EventMediator,
        resolver: QueryResolver,
        templates: TemplateRegistry,
        guid_factory: GuidFactory,
        range_addresses: Tuple[GUID, GUID, GUID],  # registrar, cs, mediator
        range_name: str,
        on_spawned: Optional[Callable[[ContextEntity], None]] = None,
        on_config_dead: Optional[Callable[[Configuration, str], None]] = None,
        max_repairs_per_config: Optional[int] = None,
    ):
        self.network = network
        self.host_id = host_id
        self.mediator = mediator
        self.resolver = resolver
        self.templates = templates
        self.guids = guid_factory
        self.range_registrar, self.range_cs, self.range_mediator = range_addresses
        self.range_name = range_name
        self.on_spawned = on_spawned or (lambda entity: None)
        self.on_config_dead = on_config_dead or (lambda config, reason: None)
        #: the paper's future-work item 3 asks for "bounds on acceptable
        #: adaptation"; this caps how often one configuration may be
        #: re-composed before it is declared dead (None = unbounded)
        self.max_repairs_per_config = max_repairs_per_config
        self._configs: Dict[str, Configuration] = {}
        #: live-entity claim ledger: hex -> (bindings, reference count)
        self._claims: Dict[str, Tuple[Dict[str, object], int]] = {}
        self.reuse_hits = 0
        self.builds = 0
        self.repairs = 0

    # -- the resolver's view of the claim ledger --------------------------------------

    def bindings_of(self, entity_hex: str) -> Optional[Dict[str, object]]:
        claim = self._claims.get(entity_hex)
        return dict(claim[0]) if claim else None

    # -- building ------------------------------------------------------------------------

    def deliver(
        self,
        wanted: TypeSpec,
        subscriber_hex: str,
        query_id: str,
        one_time: bool = False,
        provider_predicate: Optional[Callable] = None,
        reuse: bool = True,
    ) -> Configuration:
        """Ensure a configuration delivering ``wanted`` exists and attach the
        subscriber to its output. Raises :class:`NoProviderError` when no
        provider chain exists."""
        obs = self.network.obs
        if reuse:
            existing = self._reusable(wanted)
            if existing is not None:
                self.reuse_hits += 1
                obs.metrics.counter(
                    "config.graph.reuse_hits",
                    "queries served by an existing graph",
                    labels=("range",)).inc(range=self.range_name)
                with obs.tracer.span_if_active(
                        "config.resolve", range=self.range_name,
                        wanted=str(wanted), reused=existing.config_id):
                    self._attach_output(existing, subscriber_hex, one_time,
                                        query_id)
                return existing
        with obs.tracer.span_if_active(
                "config.resolve", range=self.range_name,
                wanted=str(wanted)) as span:
            plan = self.resolver.resolve(wanted,
                                         provider_predicate=provider_predicate)
            config = Configuration(
                config_id=f"cfg-{next(_config_ids)}",
                wanted=wanted,
                plan=plan,
                created_at=self.network.scheduler.now,
            )
            self._configs[config.config_id] = config
            self._instantiate(config)
            self._attach_output(config, subscriber_hex, one_time, query_id)
            self.builds += 1
            obs.metrics.counter(
                "config.graph.builds", "configuration graphs instantiated",
                labels=("range",)).inc(range=self.range_name)
            if span is not None:
                span.set(config=config.config_id, nodes=len(plan.nodes))
        return config

    def _reusable(self, wanted: TypeSpec) -> Optional[Configuration]:
        for config in self._configs.values():
            if config.state == ConfigState.ACTIVE and config.wanted == wanted:
                return config
        return None

    # -- instantiation -----------------------------------------------------------------------

    def _instantiate(self, config: Configuration) -> None:
        """Turn the plan into live entities, params and subscriptions."""
        plan = config.plan
        for key, node in plan.nodes.items():
            if node.kind == "live":
                config.node_guids[key] = node.entity_hex
                self._claim(node.entity_hex, node.bindings)
                self._apply_params(node.entity_hex, node.bindings)
            else:
                entity = self._spawn(node)
                config.spawned.append(entity.guid)
                config.node_guids[key] = entity.guid.hex
                # claim the instance's bindings too: once this objLocation is
                # bound to bob, a later query must not hijack and re-bind it
                self._claim(entity.guid.hex, node.bindings)
                if node.bindings:
                    self._apply_params(entity.guid.hex, node.bindings)
        for edge in plan.edges:
            producer_hex = config.node_guids[edge.producer]
            consumer_hex = config.node_guids[edge.consumer]
            self.mediator.add_subscription(
                subscriber=GUID.from_hex(consumer_hex),
                event_filter=self._edge_filter(producer_hex, edge.spec),
                owner=config.config_id,
            )

    def _spawn(self, node: PlanNode) -> ContextEntity:
        guid = self.guids.mint()
        if node.kind == "template":
            template = self.templates.get(node.template_name)
            entity = template.instantiate(guid, self.host_id, self.network)
        else:  # converter
            entity = ConverterCE(
                guid, self.host_id, self.network,
                input_spec=node.input_spec,
                output_spec=node.output_spec,
                chain=node.converter_chain,
            )
        entity.attach_to_range(self.range_registrar, self.range_cs,
                               self.range_mediator, self.range_name)
        self.on_spawned(entity)
        return entity

    def _apply_params(self, entity_hex: str, bindings: Dict[str, object]) -> None:
        if not bindings:
            return
        process = self.network.process(GUID.from_hex(entity_hex))
        if process is not None and hasattr(process, "set_param"):
            # Local fast path: binding before any subscription replay keeps
            # instantiation race-free. A fully remote deployment would use
            # the set-param message below instead.
            for name, value in sorted(bindings.items()):
                process.set_param(name, value)
        else:
            for name, value in sorted(bindings.items()):
                self.mediator.send(GUID.from_hex(entity_hex), "set-param",
                                   {"name": name, "value": value})

    @staticmethod
    def _edge_filter(producer_hex: str, spec: TypeSpec) -> EventFilter:
        parts: List[EventFilter] = [
            SourceFilter(producer_hex),
            TypeFilter(spec.type_name,
                       None if spec.representation == "any" else spec.representation),
        ]
        if spec.subject is not None:
            parts.append(SubjectFilter(spec.subject))
        return AndFilter(parts)

    def _attach_output(self, config: Configuration, subscriber_hex: str,
                       one_time: bool, query_id: str) -> None:
        output_hex = config.node_guids[config.plan.output_key]
        self.mediator.add_subscription(
            subscriber=GUID.from_hex(subscriber_hex),
            event_filter=self._edge_filter(output_hex, config.plan.output_spec),
            one_time=one_time,
            owner=config.config_id,
        )
        config.deliveries.append(_OutputDelivery(subscriber_hex, one_time, query_id))

    # -- claims ------------------------------------------------------------------------------

    def _claim(self, entity_hex: str, bindings: Dict[str, object]) -> None:
        existing = self._claims.get(entity_hex)
        if existing is None:
            self._claims[entity_hex] = (dict(bindings), 1)
            return
        held, count = existing
        if bindings and held != bindings:
            raise CompositionError(
                f"claim conflict on {entity_hex[:8]}: {held} vs {bindings}"
            )
        self._claims[entity_hex] = (held, count + 1)

    def _release_claims(self, config: Configuration) -> None:
        for entity_hex in config.node_guids.values():
            claim = self._claims.get(entity_hex)
            if claim is None:
                continue
            held, count = claim
            if count <= 1:
                del self._claims[entity_hex]
            else:
                self._claims[entity_hex] = (held, count - 1)

    # -- teardown -------------------------------------------------------------------------------

    def teardown(self, config_id: str) -> None:
        config = self._configs.get(config_id)
        if config is None or config.state == ConfigState.TORN_DOWN:
            return
        self._dismantle(config)
        config.state = ConfigState.TORN_DOWN
        del self._configs[config_id]

    def cancel_query(self, query_id: str) -> None:
        """Detach one query's deliveries; tear down configs nobody uses."""
        for config in list(self._configs.values()):
            before = len(config.deliveries)
            config.deliveries = [d for d in config.deliveries
                                 if d.query_id != query_id]
            if before and not config.deliveries:
                self.teardown(config.config_id)

    def _dismantle(self, config: Configuration) -> None:
        self.mediator.remove_subscriptions_of(config.config_id)
        self._release_claims(config)
        for guid in config.spawned:
            process = self.network.process(guid)
            if process is not None and hasattr(process, "stop"):
                process.stop()
        config.spawned.clear()
        config.node_guids.clear()

    # -- adaptivity -----------------------------------------------------------------------------

    def handle_entity_departure(self, entity_hex: str) -> List[Configuration]:
        """Re-compose every configuration that used a departed/crashed CE.

        Returns the configurations that were affected (repaired or dead).
        """
        affected = [config for config in self._configs.values()
                    if config.state == ConfigState.ACTIVE
                    and config.uses_entity(entity_hex)]
        for config in affected:
            self._repair(config, entity_hex)
        return affected

    def _repair(self, config: Configuration, failed_hex: str) -> None:
        # Repair is triggered by lease expiry / departure notices, outside
        # any query trace — so this span roots a fresh trace that the C1
        # benchmark (and test_adaptivity) reads the repair latency from.
        with self.network.obs.tracer.span(
                "config.repair", range=self.range_name,
                config=config.config_id, failed=failed_hex[:12]) as span:
            self._repair_inner(config, failed_hex, span)

    def _repair_inner(self, config: Configuration, failed_hex: str,
                      span) -> None:
        if (self.max_repairs_per_config is not None
                and config.repairs >= self.max_repairs_per_config):
            config.state = ConfigState.DEAD
            reason = (f"adaptation bound reached "
                      f"({self.max_repairs_per_config} repairs)")
            logger.warning("configuration %s: %s", config.config_id, reason)
            if span is not None:
                span.set(outcome="dead", reason=reason)
            self._dismantle(config)
            self.on_config_dead(config, reason)
            return
        config.state = ConfigState.REPAIRING
        config.excluded.add(failed_hex)
        # the spawned CEs we are about to stop stay registered until their
        # deregistration propagates; exclude them so re-resolution cannot
        # wire a freshly-killed instance back in
        config.excluded.update(guid.hex for guid in config.spawned)
        deliveries = list(config.deliveries)
        self._dismantle(config)
        try:
            config.plan = self.resolver.resolve(
                config.wanted, exclude=frozenset(config.excluded))
        except NoProviderError as exc:
            config.state = ConfigState.DEAD
            logger.warning("configuration %s unrepairable: %s",
                           config.config_id, exc)
            if span is not None:
                span.set(outcome="unrepairable", reason=str(exc))
            self.on_config_dead(config, str(exc))
            return
        self._instantiate(config)
        config.deliveries = []
        for delivery in deliveries:
            self._attach_output(config, delivery.subscriber_hex,
                                delivery.one_time, delivery.query_id)
        config.state = ConfigState.ACTIVE
        config.repairs += 1
        self.repairs += 1
        self.network.obs.metrics.counter(
            "config.graph.repairs",
            "configurations re-composed after a failure",
            labels=("range",)).inc(range=self.range_name)
        if span is not None:
            span.set(outcome="repaired", repair_number=config.repairs)
        logger.info("configuration %s repaired around %s (repair #%d)",
                    config.config_id, failed_hex[:8], config.repairs)

    # -- introspection ------------------------------------------------------------------------------

    def configurations(self) -> List[Configuration]:
        return list(self._configs.values())

    def config(self, config_id: str) -> Optional[Configuration]:
        return self._configs.get(config_id)

    def active_count(self) -> int:
        return sum(1 for c in self._configs.values()
                   if c.state == ConfigState.ACTIVE)

"""CE templates: factories the infrastructure can instantiate on demand.

The Context Toolkit's weakness (Section 2) is that components "become fixed"
at design time. SCI's answer is that the infrastructure "will compose the
context processing components and data sources automatically". For that the
Context Server must be able to *create* processing components — a second
objLocationCE when two queries track different people, a replacement when
one crashes. Deployments therefore register templates: a prototype profile
(what instances will look like, for the resolver's type matching) plus a
factory that builds a live CE.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.errors import CompositionError
from repro.core.ids import GUID
from repro.entities.entity import ContextEntity
from repro.entities.profile import Profile
from repro.net.transport import Network

#: factory signature: (guid, host_id, network) -> live ContextEntity
CEFactory = Callable[[GUID, str, Network], ContextEntity]


@dataclass
class CETemplate:
    """A named, instantiable kind of Context Entity."""

    name: str
    prototype: Profile
    factory: CEFactory
    #: upper bound on concurrently live instances (None = unbounded)
    max_instances: Optional[int] = None
    instances_created: int = field(default=0, init=False)

    def instantiate(self, guid: GUID, host_id: str, network: Network) -> ContextEntity:
        if self.max_instances is not None and self.instances_created >= self.max_instances:
            raise CompositionError(
                f"template {self.name!r} exhausted ({self.max_instances} instances)"
            )
        entity = self.factory(guid, host_id, network)
        self.instances_created += 1
        return entity


class TemplateRegistry:
    """The templates one Context Server can draw on."""

    def __init__(self):
        self._templates: Dict[str, CETemplate] = {}
        #: bumped on every registration; feeds resolver index invalidation
        self.version = 0

    def register(self, template: CETemplate) -> CETemplate:
        if template.name in self._templates:
            raise CompositionError(f"duplicate template: {template.name!r}")
        self._templates[template.name] = template
        self.version += 1
        return template

    def add(self, name: str, prototype: Profile, factory: CEFactory,
            max_instances: Optional[int] = None) -> CETemplate:
        """Shorthand for :meth:`register`."""
        return self.register(CETemplate(name, prototype, factory, max_instances))

    def get(self, name: str) -> CETemplate:
        try:
            return self._templates[name]
        except KeyError:
            raise CompositionError(f"unknown template: {name!r}") from None

    def known(self, name: str) -> bool:
        return name in self._templates

    def all_templates(self) -> List[CETemplate]:
        return list(self._templates.values())

    def prototypes(self) -> List[Profile]:
        return [template.prototype for template in self._templates.values()]

    def __len__(self) -> int:
        return len(self._templates)

"""SCI — the Strathclyde Context Infrastructure, reproduced in Python.

This package reproduces the middleware described in

    Glassey, Stevenson, Richmond, Nixon, Terzis, Wang, Ferguson.
    "Towards a Middleware for Generalised Context Management."
    First International Workshop on Middleware for Pervasive and Ad Hoc
    Computing, Middleware 2003.

The public entry point is :class:`repro.core.api.SCI`, a facade that builds a
simulated deployment (physical world, ranges, context servers, the SCINET
overlay) and lets applications submit context queries.

Layout
------
``repro.core``
    GUIDs, error hierarchy, the context-type ontology, and the SCI facade.
``repro.net``
    Deterministic discrete-event network substrate.
``repro.overlay``
    The SCINET overlay (prefix routing, range directory) and the
    hierarchical comparator used by the Figure-1 benchmark.
``repro.events``
    Typed context events, filters, subscriptions, the Event Mediator.
``repro.entities``
    Context Entities, Context Aware Applications, profiles, advertisements,
    sensor/derived/device entities.
``repro.query``
    The What/Where/When/Which/Mode query model and its XML wire format.
``repro.composition``
    Type-matching query resolver, configuration graphs, live re-composition.
``repro.location``
    Geometric / symbolic / topological / signal-strength location models and
    the intermediate location language.
``repro.mobility``
    The simulated physical world, movement, boundary detection and handoff.
``repro.server``
    Ranges, Context Servers and the core Context Utilities.
``repro.faults``
    Failure injection and liveness monitoring.
``repro.baselines``
    Miniature Context Toolkit, Solar and iQueue for the Section-2
    comparisons.
``repro.apps``
    CAPA (context-aware printing) and the path-display application.
"""

from repro.core.api import SCI, SCIConfig

__all__ = ["SCI", "SCIConfig"]
__version__ = "1.0.0"

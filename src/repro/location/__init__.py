"""Location models and their interoperation (Section 3.3).

The paper: "it is preferable to support many types of location model and
interoperate between them if necessary. For example it may be necessary to
convert geometric information to a hierarchical model or similarly convert
network signal strength to a geometric position. To facilitate this it will
be necessary to develop an intermediate location language."

Four models coexist here:

* **geometric** (:mod:`repro.location.geometry`) — 2-D points and polygons;
* **symbolic** (:mod:`repro.location.symbolic`) — the campus/building/floor/
  room hierarchy;
* **topological** (:mod:`repro.location.topology`) — places joined by doors,
  with access control and shortest paths;
* **signal-strength** (:mod:`repro.location.signalmap`) — W-LAN base-station
  observations.

:mod:`repro.location.building` binds them into one synthetic building;
:mod:`repro.location.converters` registers the cross-model conversions into
the type registry; :mod:`repro.location.language` is the intermediate
location language; :mod:`repro.location.service` is the Location Service
Context Utility.
"""

from repro.location.geometry import Point, Polygon, Rect
from repro.location.symbolic import SymbolicHierarchy
from repro.location.topology import Topology, Door
from repro.location.signalmap import BaseStation, SignalMap, SignalObservation
from repro.location.building import BuildingModel, RoomSpec
from repro.location.language import LocationExpr, parse_location
from repro.location.converters import register_location_converters
from repro.location.service import LocationService

__all__ = [
    "Point",
    "Polygon",
    "Rect",
    "SymbolicHierarchy",
    "Topology",
    "Door",
    "BaseStation",
    "SignalMap",
    "SignalObservation",
    "BuildingModel",
    "RoomSpec",
    "LocationExpr",
    "parse_location",
    "register_location_converters",
    "LocationService",
]

"""Symbolic (hierarchical) location model.

Places are named nodes in a containment tree — campus > building > floor >
room — addressed by slash paths like ``"strathclyde/livingstone/L10/L10.01"``
or by their unique leaf name (``"L10.01"``) when unambiguous. This is the
"hierarchical model" of Section 3.3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.errors import LocationError


class SymbolicHierarchy:
    """A containment tree over named places."""

    def __init__(self, root: str):
        self.root = root
        self._parent: Dict[str, Optional[str]] = {root: None}
        self._children: Dict[str, List[str]] = {root: []}

    # -- construction ---------------------------------------------------------

    def add_place(self, name: str, parent: str) -> str:
        """Add ``name`` beneath ``parent``; names must be globally unique."""
        if name in self._parent:
            raise LocationError(f"duplicate place name: {name!r}")
        if parent not in self._parent:
            raise LocationError(f"unknown parent place: {parent!r}")
        self._parent[name] = parent
        self._children[name] = []
        self._children[parent].append(name)
        return name

    def add_path(self, path: str) -> str:
        """Ensure every component of ``"a/b/c"`` exists (rooted at the tree root)."""
        cursor = self.root
        for component in [part for part in path.split("/") if part]:
            if component == cursor:
                continue
            if component not in self._parent:
                self.add_place(component, cursor)
            elif self._parent[component] != cursor:
                raise LocationError(
                    f"place {component!r} already exists under "
                    f"{self._parent[component]!r}, not {cursor!r}"
                )
            cursor = component
        return cursor

    # -- queries --------------------------------------------------------------

    def known(self, name: str) -> bool:
        return name in self._parent

    def parent(self, name: str) -> Optional[str]:
        self._require(name)
        return self._parent[name]

    def children(self, name: str) -> List[str]:
        self._require(name)
        return list(self._children[name])

    def ancestors(self, name: str) -> List[str]:
        """``name`` first, root last."""
        self._require(name)
        chain = [name]
        cursor = self._parent[name]
        while cursor is not None:
            chain.append(cursor)
            cursor = self._parent[cursor]
        return chain

    def path_of(self, name: str) -> str:
        """Full slash path from the root to ``name``."""
        return "/".join(reversed(self.ancestors(name)))

    def depth(self, name: str) -> int:
        return len(self.ancestors(name)) - 1

    def contains(self, outer: str, inner: str) -> bool:
        """True when ``inner`` is ``outer`` or lies beneath it."""
        return outer in self.ancestors(inner)

    def common_ancestor(self, first: str, second: str) -> str:
        """Lowest common ancestor — the basis of symbolic distance."""
        first_chain = self.ancestors(first)
        second_chain = set(self.ancestors(second))
        for place in first_chain:
            if place in second_chain:
                return place
        return self.root

    def symbolic_distance(self, first: str, second: str) -> int:
        """Tree hop count between two places (0 when identical).

        A coarse but total distance: rooms on one floor are closer than
        rooms on different floors, which suffices for Which policies when no
        geometric model is attached.
        """
        ancestor = self.common_ancestor(first, second)
        return (self.depth(first) - self.depth(ancestor)) + (
            self.depth(second) - self.depth(ancestor)
        )

    def leaves(self) -> List[str]:
        return [name for name, kids in self._children.items() if not kids]

    def descendants(self, name: str) -> List[str]:
        """All places beneath ``name`` (not including it), depth-first."""
        self._require(name)
        found: List[str] = []
        stack = list(self._children[name])
        while stack:
            place = stack.pop()
            found.append(place)
            stack.extend(self._children[place])
        return found

    def all_places(self) -> List[str]:
        return list(self._parent)

    def _require(self, name: str) -> None:
        if name not in self._parent:
            raise LocationError(f"unknown place: {name!r}")

    def __contains__(self, name: str) -> bool:
        return self.known(name)

    def __len__(self) -> int:
        return len(self._parent)

    def __repr__(self) -> str:
        return f"SymbolicHierarchy(root={self.root!r}, places={len(self)})"

"""Signal-strength location model (W-LAN detection).

Section 3.4: "a user with a W-LAN equipped device could be detected leaving
the effective operating range of a wireless network"; Section 3.3 asks to
"convert network signal strength to a geometric position". Base stations
observe received signal strength from devices; the map turns a set of
observations into a position estimate (weighted centroid) or a coverage
decision. A log-distance path-loss model with deterministic per-pair noise
stands in for real radio hardware (see DESIGN.md substitutions).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.errors import LocationError
from repro.location.geometry import Point


@dataclass(frozen=True)
class BaseStation:
    """A fixed wireless access point."""

    station_id: str
    position: Point
    #: transmit power at 1 m, in dBm (typical indoor AP)
    tx_power_dbm: float = -30.0
    #: path-loss exponent; ~2 free space, 3+ indoors
    path_loss_exponent: float = 3.0
    #: weakest usable signal — beyond this the device is "out of range"
    sensitivity_dbm: float = -90.0

    def rssi_at(self, position: Point, noise_db: float = 0.0) -> Optional[float]:
        """Received signal strength for a device at ``position``.

        Returns None when below sensitivity (device undetectable).
        """
        distance = max(self.position.distance_to(position), 0.1)
        rssi = self.tx_power_dbm - 10.0 * self.path_loss_exponent * math.log10(distance)
        rssi += noise_db
        return rssi if rssi >= self.sensitivity_dbm else None

    def coverage_radius(self) -> float:
        """Distance at which the noiseless signal hits sensitivity."""
        budget = self.tx_power_dbm - self.sensitivity_dbm
        return 10.0 ** (budget / (10.0 * self.path_loss_exponent))


@dataclass(frozen=True)
class SignalObservation:
    """One (station, rssi) reading for a device."""

    station_id: str
    rssi_dbm: float


class SignalMap:
    """A set of base stations and signal->position estimation."""

    def __init__(self, stations: Iterable[BaseStation] = (), noise_db: float = 0.0, seed: int = 0):
        self._stations: Dict[str, BaseStation] = {}
        self.noise_db = noise_db
        self._rng = random.Random(seed)
        for station in stations:
            self.add_station(station)

    def add_station(self, station: BaseStation) -> BaseStation:
        if station.station_id in self._stations:
            raise LocationError(f"duplicate base station: {station.station_id!r}")
        self._stations[station.station_id] = station
        return station

    def station(self, station_id: str) -> BaseStation:
        try:
            return self._stations[station_id]
        except KeyError:
            raise LocationError(f"unknown base station: {station_id!r}") from None

    def stations(self) -> List[BaseStation]:
        return list(self._stations.values())

    # -- forward model: position -> observations -------------------------------

    def observe(self, position: Point) -> List[SignalObservation]:
        """All stations that can hear a device at ``position``."""
        observations = []
        for station in self._stations.values():
            noise = self._rng.gauss(0.0, self.noise_db) if self.noise_db else 0.0
            rssi = station.rssi_at(position, noise)
            if rssi is not None:
                observations.append(SignalObservation(station.station_id, rssi))
        return observations

    def in_coverage(self, position: Point) -> bool:
        """True when at least one station hears the device (Section 3.4's
        boundary test for W-LAN ranges)."""
        return any(
            station.rssi_at(position) is not None
            for station in self._stations.values()
        )

    # -- inverse model: observations -> position --------------------------------

    def estimate_position(self, observations: Iterable[SignalObservation]) -> Point:
        """Weighted-centroid position estimate from RSSI observations.

        Each heard station contributes its position weighted by the inverse
        of its implied distance. Simple, bounded-error and adequate for the
        paper's conversion claim; accuracy is reported by the C4 benchmark.
        """
        weights: List[float] = []
        points: List[Point] = []
        for observation in observations:
            station = self.station(observation.station_id)
            distance = self._implied_distance(station, observation.rssi_dbm)
            weights.append(1.0 / max(distance, 0.1))
            points.append(station.position)
        if not points:
            raise LocationError("cannot estimate position from zero observations")
        total = sum(weights)
        x = sum(w * p.x for w, p in zip(weights, points)) / total
        y = sum(w * p.y for w, p in zip(weights, points)) / total
        return Point(x, y)

    def estimate_error_bound(self, observations: Iterable[SignalObservation]) -> float:
        """A coarse accuracy figure (metres) attached as QoC to estimates:
        the implied distance to the strongest heard station."""
        best = float("inf")
        for observation in observations:
            station = self.station(observation.station_id)
            best = min(best, self._implied_distance(station, observation.rssi_dbm))
        if best == float("inf"):
            raise LocationError("cannot bound error with zero observations")
        return best

    @staticmethod
    def _implied_distance(station: BaseStation, rssi_dbm: float) -> float:
        exponent = (station.tx_power_dbm - rssi_dbm) / (10.0 * station.path_loss_exponent)
        return 10.0 ** exponent

    def __len__(self) -> int:
        return len(self._stations)

    def __repr__(self) -> str:
        return f"SignalMap(stations={len(self)}, noise={self.noise_db}dB)"

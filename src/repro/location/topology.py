"""Topological location model: places joined by doors.

Captures the "topological ... spatial relations" of the paper's future-work
item 4 and everything CAPA needs: doors connect rooms/corridors, doors can be
locked against particular entities (printer P3 "behind a locked door to which
John has no access"), and paths are shortest routes that respect access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.errors import LocationError


@dataclass
class Door:
    """A traversable connection between two places.

    ``access`` is None for a public door, otherwise the set of entity keys
    allowed through. ``sensor_id`` names the door-sensor Context Entity
    mounted on it, if any (the Figure-3 doorSensorCEs).
    """

    door_id: str
    place_a: str
    place_b: str
    length: float = 1.0
    access: Optional[Set[object]] = None
    sensor_id: Optional[str] = None

    def other_side(self, place: str) -> str:
        if place == self.place_a:
            return self.place_b
        if place == self.place_b:
            return self.place_a
        raise LocationError(f"door {self.door_id} does not touch {place!r}")

    def allows(self, entity_key: object) -> bool:
        return self.access is None or entity_key in self.access

    def lock(self, allowed: Set[object]) -> None:
        """Restrict the door to ``allowed`` entity keys."""
        self.access = set(allowed)

    def unlock(self) -> None:
        self.access = None


class Topology:
    """An undirected multigraph of places and doors with path queries."""

    def __init__(self):
        self._graph = nx.MultiGraph()
        self._doors: Dict[str, Door] = {}

    # -- construction ---------------------------------------------------------

    def add_place(self, name: str) -> str:
        self._graph.add_node(name)
        return name

    def add_door(self, door: Door) -> Door:
        if door.door_id in self._doors:
            raise LocationError(f"duplicate door: {door.door_id!r}")
        if door.length <= 0:
            raise LocationError(f"non-positive door length: {door.length}")
        self.add_place(door.place_a)
        self.add_place(door.place_b)
        self._doors[door.door_id] = door
        self._graph.add_edge(door.place_a, door.place_b,
                             key=door.door_id, weight=door.length)
        return door

    def connect(self, place_a: str, place_b: str, door_id: Optional[str] = None,
                length: float = 1.0, sensor_id: Optional[str] = None) -> Door:
        """Shorthand for :meth:`add_door`."""
        door_id = door_id or f"door:{place_a}--{place_b}"
        return self.add_door(Door(door_id, place_a, place_b, length,
                                  sensor_id=sensor_id))

    # -- queries --------------------------------------------------------------

    def door(self, door_id: str) -> Door:
        try:
            return self._doors[door_id]
        except KeyError:
            raise LocationError(f"unknown door: {door_id!r}") from None

    def doors(self) -> List[Door]:
        return list(self._doors.values())

    def doors_of(self, place: str) -> List[Door]:
        self._require(place)
        return [door for door in self._doors.values()
                if place in (door.place_a, door.place_b)]

    def places(self) -> List[str]:
        return list(self._graph.nodes)

    def known(self, place: str) -> bool:
        return self._graph.has_node(place)

    def neighbours(self, place: str, entity_key: object = None) -> List[str]:
        """Places reachable in one hop, respecting door access for ``entity_key``."""
        self._require(place)
        reachable = []
        for door in self.doors_of(place):
            if entity_key is None or door.allows(entity_key):
                reachable.append(door.other_side(place))
        return reachable

    def shortest_path(self, source: str, target: str,
                      entity_key: object = None) -> Tuple[List[str], float]:
        """Cheapest place sequence from ``source`` to ``target``.

        Doors the entity may not pass are excluded. Raises
        :class:`LocationError` when no route exists.
        """
        self._require(source)
        self._require(target)
        view = self._accessible_view(entity_key)
        try:
            path = nx.shortest_path(view, source, target, weight="weight")
        except nx.NetworkXNoPath:
            raise LocationError(
                f"no accessible route from {source!r} to {target!r}"
            ) from None
        return path, self._path_cost(view, path)

    def distance(self, source: str, target: str, entity_key: object = None) -> float:
        """Shortest accessible route length; inf when unreachable."""
        try:
            _, cost = self.shortest_path(source, target, entity_key)
            return cost
        except LocationError:
            return float("inf")

    def reachable(self, source: str, target: str, entity_key: object = None) -> bool:
        return self.distance(source, target, entity_key) != float("inf")

    def path_doors(self, path: List[str], entity_key: object = None) -> List[Door]:
        """The cheapest accessible door for each consecutive place pair."""
        chosen: List[Door] = []
        for place, nxt in zip(path, path[1:]):
            candidates = [
                door for door in self.doors_of(place)
                if door.other_side(place) == nxt
                and (entity_key is None or door.allows(entity_key))
            ]
            if not candidates:
                raise LocationError(f"no accessible door between {place!r} and {nxt!r}")
            chosen.append(min(candidates, key=lambda door: door.length))
        return chosen

    def _accessible_view(self, entity_key: object):
        if entity_key is None:
            return self._graph
        blocked = {
            (door.place_a, door.place_b, door.door_id)
            for door in self._doors.values()
            if not door.allows(entity_key)
        }
        if not blocked:
            return self._graph
        return nx.restricted_view(self._graph, [], blocked)

    @staticmethod
    def _path_cost(graph, path: List[str]) -> float:
        total = 0.0
        for place, nxt in zip(path, path[1:]):
            edges = graph.get_edge_data(place, nxt)
            total += min(data["weight"] for data in edges.values())
        return total

    def _require(self, place: str) -> None:
        if not self._graph.has_node(place):
            raise LocationError(f"unknown place: {place!r}")

    def __repr__(self) -> str:
        return f"Topology(places={self._graph.number_of_nodes()}, doors={len(self._doors)})"

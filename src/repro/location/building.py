"""A building model binding the four location models together.

The paper grounds its scenarios in the Livingstone Tower (lift lobby, Level
10, room L10.01, printers P1..P4). :class:`BuildingModel` holds, for one
deployment: room geometry (polygons), the symbolic hierarchy, the door
topology and the W-LAN signal map — and the cross-model lookups the
converters and the Location Service need. :func:`livingstone_tower` builds
the synthetic instance used by examples, tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import LocationError
from repro.location.geometry import Point, Polygon, Rect, path_length
from repro.location.signalmap import BaseStation, SignalMap
from repro.location.symbolic import SymbolicHierarchy
from repro.location.topology import Door, Topology


@dataclass
class RoomSpec:
    """One room: symbolic name + footprint + the floor it belongs to."""

    name: str
    shape: Polygon
    floor: str


class BuildingModel:
    """Geometry + symbolic hierarchy + topology + signal map for one site."""

    def __init__(self, site_name: str, building_name: str):
        self.site_name = site_name
        self.building_name = building_name
        self.hierarchy = SymbolicHierarchy(site_name)
        self.hierarchy.add_place(building_name, site_name)
        self.topology = Topology()
        self.signal_map = SignalMap()
        self._rooms: Dict[str, RoomSpec] = {}
        self._door_positions: Dict[str, Point] = {}

    # -- construction ---------------------------------------------------------

    def add_floor(self, floor_name: str) -> str:
        self.hierarchy.add_place(floor_name, self.building_name)
        return floor_name

    def add_room(self, name: str, shape: Polygon, floor: str) -> RoomSpec:
        if name in self._rooms:
            raise LocationError(f"duplicate room: {name!r}")
        if floor not in self.hierarchy:
            raise LocationError(f"unknown floor: {floor!r}")
        self.hierarchy.add_place(name, floor)
        self.topology.add_place(name)
        spec = RoomSpec(name, shape, floor)
        self._rooms[name] = spec
        return spec

    def add_door(
        self,
        room_a: str,
        room_b: str,
        position: Optional[Point] = None,
        door_id: Optional[str] = None,
        sensor_id: Optional[str] = None,
        length: Optional[float] = None,
    ) -> Door:
        """Connect two rooms; door position defaults to the centroid midpoint."""
        self.room(room_a)
        self.room(room_b)
        if position is None:
            position = self.room_centroid(room_a).midpoint(self.room_centroid(room_b))
        if length is None:
            length = self.room_centroid(room_a).distance_to(self.room_centroid(room_b))
        door_id = door_id or f"door:{room_a}--{room_b}"
        door = self.topology.add_door(
            Door(door_id, room_a, room_b, max(length, 0.1), sensor_id=sensor_id)
        )
        self._door_positions[door_id] = position
        return door

    def add_base_station(self, station: BaseStation) -> BaseStation:
        return self.signal_map.add_station(station)

    # -- room lookups -----------------------------------------------------------

    def room(self, name: str) -> RoomSpec:
        try:
            return self._rooms[name]
        except KeyError:
            raise LocationError(f"unknown room: {name!r}") from None

    def rooms(self) -> List[RoomSpec]:
        return list(self._rooms.values())

    def room_names(self) -> List[str]:
        return list(self._rooms)

    def room_centroid(self, name: str) -> Point:
        return self.room(name).shape.centroid()

    def room_at(self, point: Point) -> Optional[str]:
        """The room containing ``point`` (None when outside every room)."""
        for spec in self._rooms.values():
            if spec.shape.contains(point):
                return spec.name
        return None

    def nearest_room(self, point: Point) -> str:
        """The room containing ``point``, else the closest by edge distance."""
        containing = self.room_at(point)
        if containing is not None:
            return containing
        if not self._rooms:
            raise LocationError("building has no rooms")
        return min(
            self._rooms.values(),
            key=lambda spec: spec.shape.distance_to_point(point),
        ).name

    def door_position(self, door_id: str) -> Point:
        try:
            return self._door_positions[door_id]
        except KeyError:
            raise LocationError(f"unknown door: {door_id!r}") from None

    # -- routing ----------------------------------------------------------------

    def route(self, from_room: str, to_room: str,
              entity_key: object = None) -> Tuple[List[str], float]:
        """Room sequence and cost, respecting door access."""
        return self.topology.shortest_path(from_room, to_room, entity_key)

    def route_polyline(self, from_room: str, to_room: str,
                       entity_key: object = None) -> List[Point]:
        """Geometric waypoints for the route: centroids joined via doors.

        This is the representation a floor-map CAA (Figure 3's pathApp)
        renders.
        """
        rooms, _ = self.route(from_room, to_room, entity_key)
        waypoints = [self.room_centroid(rooms[0])]
        for door in self.topology.path_doors(rooms, entity_key):
            waypoints.append(self._door_positions.get(
                door.door_id, waypoints[-1]))
        waypoints.append(self.room_centroid(rooms[-1]))
        return waypoints

    def walking_distance(self, from_room: str, to_room: str,
                         entity_key: object = None) -> float:
        """Polyline length of the accessible route; inf when unreachable."""
        try:
            return path_length(self.route_polyline(from_room, to_room, entity_key))
        except LocationError:
            return float("inf")

    def __repr__(self) -> str:
        return (
            f"BuildingModel({self.building_name!r}: rooms={len(self._rooms)}, "
            f"doors={len(self.topology.doors())}, aps={len(self.signal_map)})"
        )


def livingstone_tower() -> BuildingModel:
    """The synthetic Livingstone Tower used throughout the reproduction.

    Layout (Level 10, metres):

    * a lift lobby feeding a long corridor,
    * offices ``L10.01`` (Bob) and ``L10.02`` (John) off the corridor,
    * a print room ``L10.03`` (printers P1, P2), an open area (P4) and a
      locked store room ``L10.05`` (P3),
    * W-LAN base stations in the lobby and mid-corridor.

    All doors carry sensors (named ``sensor:<door-id>``) so the Figure-3
    doorSensorCE layer can be instantiated mechanically from the model.
    """
    building = BuildingModel("strathclyde", "livingstone")
    level10 = building.add_floor("L10")
    lobby_floor = building.add_floor("L1")

    building.add_room("lobby", Rect(0, 0, 10, 10), lobby_floor)
    building.add_room("corridor", Rect(10, 0, 40, 4), level10)
    building.add_room("L10.01", Rect(10, 4, 8, 6), level10)   # Bob's office
    building.add_room("L10.02", Rect(18, 4, 8, 6), level10)   # John's office
    building.add_room("L10.03", Rect(26, 4, 8, 6), level10)   # print room: P1, P2
    building.add_room("open-area", Rect(34, 4, 10, 6), level10)  # P4
    building.add_room("L10.05", Rect(44, 4, 6, 6), level10)   # locked store: P3

    def door(room_a: str, room_b: str, x: float, y: float) -> Door:
        door_id = f"door:{room_a}--{room_b}"
        return building.add_door(
            room_a, room_b, position=Point(x, y),
            door_id=door_id, sensor_id=f"sensor:{door_id}",
        )

    door("lobby", "corridor", 10, 2)
    door("corridor", "L10.01", 14, 4)
    door("corridor", "L10.02", 22, 4)
    door("corridor", "L10.03", 30, 4)
    door("corridor", "open-area", 39, 4)
    door("corridor", "L10.05", 47, 4)

    building.add_base_station(BaseStation("ap-lobby", Point(5, 5)))
    building.add_base_station(BaseStation("ap-corridor", Point(30, 2)))
    return building

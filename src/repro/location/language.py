"""The intermediate location language (Section 3.3).

"To facilitate this it will be necessary to develop an intermediate location
language." — the paper leaves it at that, so we define a small, explicit
expression language that every location model can produce and consume. It is
the form the Where clause of a query (Figure 6) is written in.

Textual forms::

    anywhere                    no constraint
    me                          the query owner's current location
    room:L10.01                 a symbolic place
    point:12.5,3.0              a geometric position (metres)
    entity:bob                  wherever entity "bob" currently is
    within(room:L10)            containment in a (possibly non-leaf) place
    near(entity:bob, 5.0)       within a radius (metres) of another location

Expressions nest: ``near(room:lobby, 3)``, ``within(room:L10)``. Parsing is
by a tiny recursive-descent reader; :func:`parse_location` and ``str()`` are
inverses, which is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.errors import LocationError

#: The expression kinds understood by the language.
KINDS = ("anywhere", "me", "room", "point", "entity", "within", "near")


@dataclass(frozen=True)
class LocationExpr:
    """One node of the intermediate location language."""

    kind: str
    name: Optional[str] = None              # room / entity name
    point: Optional[Tuple[float, float]] = None
    inner: Optional["LocationExpr"] = None  # within / near operand
    radius: Optional[float] = None          # near

    def __post_init__(self):
        if self.kind not in KINDS:
            raise LocationError(f"unknown location expression kind: {self.kind!r}")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def anywhere(cls) -> "LocationExpr":
        return cls("anywhere")

    @classmethod
    def me(cls) -> "LocationExpr":
        return cls("me")

    @classmethod
    def room(cls, name: str) -> "LocationExpr":
        return cls("room", name=name)

    @classmethod
    def at_point(cls, x: float, y: float) -> "LocationExpr":
        return cls("point", point=(float(x), float(y)))

    @classmethod
    def entity(cls, name: str) -> "LocationExpr":
        return cls("entity", name=name)

    @classmethod
    def within(cls, inner: "LocationExpr") -> "LocationExpr":
        return cls("within", inner=inner)

    @classmethod
    def near(cls, inner: "LocationExpr", radius: float) -> "LocationExpr":
        if radius <= 0:
            raise LocationError(f"non-positive radius: {radius}")
        return cls("near", inner=inner, radius=float(radius))

    # -- properties ---------------------------------------------------------------

    @property
    def is_constraint_free(self) -> bool:
        return self.kind == "anywhere"

    def references_owner(self) -> bool:
        """Does this expression depend on who asked (``me``)?"""
        if self.kind == "me":
            return True
        return self.inner.references_owner() if self.inner is not None else False

    # -- rendering ---------------------------------------------------------------

    def __str__(self) -> str:
        if self.kind == "anywhere":
            return "anywhere"
        if self.kind == "me":
            return "me"
        if self.kind == "room":
            return f"room:{self.name}"
        if self.kind == "point":
            # repr() round-trips floats exactly; %g truncates to 6 digits
            return f"point:{self.point[0]!r},{self.point[1]!r}"
        if self.kind == "entity":
            return f"entity:{self.name}"
        if self.kind == "within":
            return f"within({self.inner})"
        if self.kind == "near":
            return f"near({self.inner}, {self.radius!r})"
        raise LocationError(f"unrenderable kind: {self.kind!r}")  # pragma: no cover


def parse_location(text: str) -> LocationExpr:
    """Parse the textual form back into a :class:`LocationExpr`.

    >>> parse_location("near(entity:bob, 5)")
    LocationExpr(kind='near', ..., radius=5.0)
    """
    expr, rest = _parse_expr(text.strip())
    if rest.strip():
        raise LocationError(f"trailing input in location expression: {rest!r}")
    return expr


def _parse_expr(text: str) -> Tuple[LocationExpr, str]:
    text = text.lstrip()
    if not text:
        raise LocationError("empty location expression")

    for literal, builder in (("anywhere", LocationExpr.anywhere), ("me", LocationExpr.me)):
        if text.startswith(literal) and _ends_token(text, len(literal)):
            return builder(), text[len(literal):]

    if text.startswith("within("):
        inner, rest = _parse_expr(text[len("within("):])
        rest = _expect(rest, ")")
        return LocationExpr.within(inner), rest

    if text.startswith("near("):
        inner, rest = _parse_expr(text[len("near("):])
        rest = _expect(rest, ",")
        number, rest = _parse_number(rest)
        rest = _expect(rest, ")")
        return LocationExpr.near(inner, number), rest

    if text.startswith("room:"):
        name, rest = _parse_name(text[len("room:"):])
        return LocationExpr.room(name), rest

    if text.startswith("entity:"):
        name, rest = _parse_name(text[len("entity:"):])
        return LocationExpr.entity(name), rest

    if text.startswith("point:"):
        x, rest = _parse_number(text[len("point:"):])
        rest = _expect(rest, ",")
        y, rest = _parse_number(rest)
        return LocationExpr.at_point(x, y), rest

    raise LocationError(f"unparseable location expression: {text!r}")


def _ends_token(text: str, index: int) -> bool:
    return index >= len(text) or text[index] in ",) \t"


def _parse_name(text: str) -> Tuple[str, str]:
    index = 0
    while index < len(text) and text[index] not in ",) \t":
        index += 1
    name = text[:index]
    if not name:
        raise LocationError(f"expected a name in location expression: {text!r}")
    return name, text[index:]


def _parse_number(text: str) -> Tuple[float, str]:
    text = text.lstrip()
    index = 0
    while index < len(text) and (text[index].isdigit() or text[index] in "+-.eE"):
        index += 1
    token = text[:index]
    try:
        return float(token), text[index:]
    except ValueError:
        raise LocationError(f"expected a number in location expression: {text!r}") from None


def _expect(text: str, token: str) -> str:
    text = text.lstrip()
    if not text.startswith(token):
        raise LocationError(f"expected {token!r} in location expression: {text!r}")
    return text[len(token):]

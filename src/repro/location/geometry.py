"""Geometric location model: 2-D points and polygonal regions.

The geometric model is the finest-grained of the Section-3.3 location models;
room polygons give the symbolic<->geometric conversion, and point distance
feeds the "closest" Which policy in CAPA.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.errors import LocationError


@dataclass(frozen=True, order=True)
class Point:
    """A 2-D position in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translate(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def __str__(self) -> str:
        return f"({self.x:.2f}, {self.y:.2f})"


class Polygon:
    """A simple (non-self-intersecting) polygon with containment tests."""

    def __init__(self, vertices: Sequence[Point]):
        if len(vertices) < 3:
            raise LocationError(f"polygon needs >= 3 vertices, got {len(vertices)}")
        self.vertices: List[Point] = list(vertices)

    def contains(self, point: Point) -> bool:
        """Ray-casting point-in-polygon; boundary points count as inside."""
        if self.on_boundary(point):
            return True
        inside = False
        count = len(self.vertices)
        for index in range(count):
            a = self.vertices[index]
            b = self.vertices[(index + 1) % count]
            intersects = (a.y > point.y) != (b.y > point.y)
            if intersects:
                x_cross = a.x + (point.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if point.x < x_cross:
                    inside = not inside
        return inside

    def on_boundary(self, point: Point, tolerance: float = 1e-9) -> bool:
        count = len(self.vertices)
        for index in range(count):
            a = self.vertices[index]
            b = self.vertices[(index + 1) % count]
            if _point_on_segment(point, a, b, tolerance):
                return True
        return False

    def centroid(self) -> Point:
        """Area-weighted centroid (falls back to vertex mean for degenerate area)."""
        doubled_area = 0.0
        cx = 0.0
        cy = 0.0
        count = len(self.vertices)
        for index in range(count):
            a = self.vertices[index]
            b = self.vertices[(index + 1) % count]
            cross = a.x * b.y - b.x * a.y
            doubled_area += cross
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        if abs(doubled_area) < 1e-12:
            mean_x = sum(v.x for v in self.vertices) / count
            mean_y = sum(v.y for v in self.vertices) / count
            return Point(mean_x, mean_y)
        factor = 1.0 / (3.0 * doubled_area)
        return Point(cx * factor, cy * factor)

    def area(self) -> float:
        doubled = 0.0
        count = len(self.vertices)
        for index in range(count):
            a = self.vertices[index]
            b = self.vertices[(index + 1) % count]
            doubled += a.x * b.y - b.x * a.y
        return abs(doubled) / 2.0

    def bounding_box(self) -> Tuple[Point, Point]:
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return Point(min(xs), min(ys)), Point(max(xs), max(ys))

    def distance_to_point(self, point: Point) -> float:
        """0 when inside; otherwise the distance to the nearest edge."""
        if self.contains(point):
            return 0.0
        count = len(self.vertices)
        best = float("inf")
        for index in range(count):
            a = self.vertices[index]
            b = self.vertices[(index + 1) % count]
            best = min(best, _segment_distance(point, a, b))
        return best

    def __repr__(self) -> str:
        return f"Polygon({len(self.vertices)} vertices, area={self.area():.1f})"


class Rect(Polygon):
    """Axis-aligned rectangle — the common room shape."""

    def __init__(self, x: float, y: float, width: float, height: float):
        if width <= 0 or height <= 0:
            raise LocationError(f"degenerate rect: {width}x{height}")
        super().__init__([
            Point(x, y),
            Point(x + width, y),
            Point(x + width, y + height),
            Point(x, y + height),
        ])
        self.x = x
        self.y = y
        self.width = width
        self.height = height

    def contains(self, point: Point) -> bool:
        return (self.x <= point.x <= self.x + self.width
                and self.y <= point.y <= self.y + self.height)

    def centroid(self) -> Point:
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)


def _point_on_segment(p: Point, a: Point, b: Point, tolerance: float) -> bool:
    return _segment_distance(p, a, b) <= tolerance


def _segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the segment ``a``–``b``."""
    ab_x = b.x - a.x
    ab_y = b.y - a.y
    length_sq = ab_x * ab_x + ab_y * ab_y
    if length_sq == 0.0:
        return p.distance_to(a)
    t = ((p.x - a.x) * ab_x + (p.y - a.y) * ab_y) / length_sq
    t = max(0.0, min(1.0, t))
    nearest = Point(a.x + t * ab_x, a.y + t * ab_y)
    return p.distance_to(nearest)


def path_length(points: Iterable[Point]) -> float:
    """Total polyline length — used to compare candidate paths."""
    total = 0.0
    previous = None
    for point in points:
        if previous is not None:
            total += previous.distance_to(point)
        previous = point
    return total

"""The Location Service Context Utility.

Section 3.1: "Location Service: Handles the resolution of location related
tasks." Concretely it (a) tracks the last-known location of every entity in
the range by consuming location events, (b) evaluates Where expressions of
the intermediate location language against candidate places, and (c) answers
distance/path questions for Which policies ("closest to me") and for the
Figure-3 path configuration.

It is a :class:`~repro.net.transport.Process`, so remote Context Servers can
interrogate it with ``locate`` / ``resolve-where`` / ``route`` messages, and
it exposes the same operations as direct methods for its co-located server.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import LocationError
from repro.core.ids import GUID
from repro.location.building import BuildingModel
from repro.location.geometry import Point
from repro.location.language import LocationExpr, parse_location
from repro.net.message import Message
from repro.net.transport import Network, Process

logger = logging.getLogger(__name__)


@dataclass
class EntityFix:
    """Last-known location of one entity."""

    entity_key: str
    room: str
    point: Point
    timestamp: float


class LocationService(Process):
    """Per-range location tracking and Where-expression resolution."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 building: BuildingModel, range_name: str = ""):
        super().__init__(guid, host_id, network, name=f"location:{range_name or guid}")
        self.building = building
        self._fixes: Dict[str, EntityFix] = {}
        #: callbacks fired on every fix: (fix, previous_room) — the Context
        #: Server listens here for the "enters(entity, place)" When triggers
        self.observers: List = []

    # -- tracking ---------------------------------------------------------------

    def update(self, entity_key: str, room: Optional[str] = None,
               point: Optional[Point] = None, timestamp: Optional[float] = None) -> EntityFix:
        """Record a location fix from a room name, a point, or both."""
        if room is None and point is None:
            raise LocationError("a fix needs a room or a point")
        if room is None:
            room = self.building.nearest_room(point)
        elif point is None:
            point = self.building.room_centroid(room)
        previous = self._fixes.get(entity_key)
        previous_room = previous.room if previous else None
        fix = EntityFix(entity_key, room, point,
                        self.now if timestamp is None else timestamp)
        self._fixes[entity_key] = fix
        for observer in list(self.observers):
            observer(fix, previous_room)
        return fix

    def forget(self, entity_key: str) -> None:
        """Drop tracking for a departed entity."""
        self._fixes.pop(entity_key, None)

    def locate(self, entity_key: str) -> Optional[EntityFix]:
        return self._fixes.get(entity_key)

    def tracked_entities(self) -> List[str]:
        return list(self._fixes)

    def entities_in(self, place: str) -> List[str]:
        """Entities whose last fix lies in ``place`` (or beneath it)."""
        return [
            key for key, fix in self._fixes.items()
            if self.building.hierarchy.contains(place, fix.room)
        ]

    # -- Where-expression evaluation ----------------------------------------------

    def resolve_point(self, expr: LocationExpr, owner: Optional[str] = None) -> Point:
        """Collapse an expression to a representative point."""
        if expr.kind == "room":
            return self.building.room_centroid(self._validated_room(expr.name))
        if expr.kind == "point":
            return Point(expr.point[0], expr.point[1])
        if expr.kind in ("entity", "me"):
            key = owner if expr.kind == "me" else expr.name
            if key is None:
                raise LocationError("'me' used without a query owner")
            fix = self.locate(key)
            if fix is None:
                raise LocationError(f"no known location for entity {key!r}")
            return fix.point
        if expr.kind in ("within", "near"):
            return self.resolve_point(expr.inner, owner)
        raise LocationError(f"expression has no point: {expr}")

    def resolve_rooms(self, expr: LocationExpr, owner: Optional[str] = None) -> List[str]:
        """All rooms satisfying the expression (empty only for dead regions)."""
        if expr.kind == "anywhere":
            return self.building.room_names()
        if expr.kind == "near":
            centre = self.resolve_point(expr.inner, owner)
            return [
                spec.name for spec in self.building.rooms()
                if spec.shape.distance_to_point(centre) <= expr.radius
            ]
        if expr.kind == "within":
            return self._rooms_within(expr.inner, owner)
        # point-like expressions resolve to the single containing room
        return [self.building.nearest_room(self.resolve_point(expr, owner))]

    def _rooms_within(self, inner: LocationExpr, owner: Optional[str]) -> List[str]:
        if inner.kind == "room":
            place = inner.name
            if not self.building.hierarchy.known(place):
                raise LocationError(f"unknown place: {place!r}")
            return [
                name for name in self.building.room_names()
                if self.building.hierarchy.contains(place, name)
            ]
        return self.resolve_rooms(inner, owner)

    def place_matches(self, expr: LocationExpr, room: str,
                      owner: Optional[str] = None) -> bool:
        """Does candidate ``room`` satisfy the Where expression?"""
        if expr.kind == "anywhere":
            return True
        return room in self.resolve_rooms(expr, owner)

    # -- distance / routing ---------------------------------------------------------

    def distance_between(self, expr_a: LocationExpr, expr_b: LocationExpr,
                         owner: Optional[str] = None,
                         entity_key: object = None) -> float:
        """Walking distance between two expressions (inf if unreachable)."""
        room_a = self.building.nearest_room(self.resolve_point(expr_a, owner))
        room_b = self.building.nearest_room(self.resolve_point(expr_b, owner))
        return self.building.walking_distance(room_a, room_b, entity_key)

    def route_between(self, expr_a: LocationExpr, expr_b: LocationExpr,
                      owner: Optional[str] = None,
                      entity_key: object = None) -> Tuple[List[str], List[Point]]:
        """Room sequence plus geometric polyline between two expressions."""
        room_a = self.building.nearest_room(self.resolve_point(expr_a, owner))
        room_b = self.building.nearest_room(self.resolve_point(expr_b, owner))
        rooms, _ = self.building.route(room_a, room_b, entity_key)
        polyline = self.building.route_polyline(room_a, room_b, entity_key)
        return rooms, polyline

    def _validated_room(self, name: str) -> str:
        if not self.building.hierarchy.known(name):
            raise LocationError(f"unknown place: {name!r}")
        return name

    # -- message protocol --------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == "event":
            self._consume_location_event(message)
        elif message.kind == "locate":
            self._handle_locate(message)
        elif message.kind == "resolve-where":
            self._handle_resolve_where(message)
        elif message.kind == "route":
            self._handle_route(message)
        else:
            logger.debug("%s ignoring %s", self.name, message)

    def _consume_location_event(self, message: Message) -> None:
        """Fold a location or presence event into tracking.

        The service subscribes to both: ``location`` events from location
        providers, and raw door-sensor ``presence`` events — a tagged person
        crossing a sensed door is the range's primary movement signal, and
        keeping it here is what lets the Context Server evaluate
        ``enters(entity, place)`` triggers and ``closest-to(me)`` policies
        without per-person tracking configurations.

        Sequenced deliveries (reliable mediator) are acked; a fix older
        than the one already tracked — a retransmission arriving after a
        newer event — is ignored rather than rolling the entity back.
        """
        if "seq" in message.payload:
            self.reply(message, "event-ack",
                       {"sub_id": message.payload.get("sub_id")})
        wire = message.payload["event"]
        if wire["type"] == "presence" and isinstance(wire["value"], dict):
            to_room = wire["value"].get("to")
            entity = wire["value"].get("entity")
            if to_room and entity:
                try:
                    self._ingest(str(entity), room=to_room,
                                 timestamp=wire["timestamp"])
                except LocationError as exc:
                    logger.warning("%s could not ingest presence %s: %s",
                                   self.name, wire, exc)
            return
        if wire["type"] != "location" or wire["subject"] is None:
            return
        value = wire["value"]
        representation = wire["representation"]
        try:
            if representation in ("topological", "symbolic"):
                room = str(value).rsplit("/", 1)[-1]
                self._ingest(str(wire["subject"]), room=room,
                             timestamp=wire["timestamp"])
            elif representation == "geometric":
                self._ingest(str(wire["subject"]),
                             point=Point(value[0], value[1]),
                             timestamp=wire["timestamp"])
        except LocationError as exc:
            logger.warning("%s could not ingest %s: %s", self.name, wire, exc)

    def _ingest(self, entity_key: str, room: Optional[str] = None,
                point: Optional[Point] = None,
                timestamp: Optional[float] = None) -> Optional[EntityFix]:
        """Fold an event-borne fix in unless a newer one is already held."""
        current = self._fixes.get(entity_key)
        if (current is not None and timestamp is not None
                and timestamp < current.timestamp):
            logger.debug("%s dropping stale fix for %s (%.2f < %.2f)",
                         self.name, entity_key, timestamp, current.timestamp)
            return None
        return self.update(entity_key, room=room, point=point,
                           timestamp=timestamp)

    def _handle_locate(self, message: Message) -> None:
        fix = self.locate(message.payload["entity"])
        if fix is None:
            self.reply(message, "location", {"found": False})
        else:
            self.reply(message, "location", {
                "found": True,
                "room": fix.room,
                "point": fix.point.as_tuple(),
                "timestamp": fix.timestamp,
            })

    def _handle_resolve_where(self, message: Message) -> None:
        try:
            expr = parse_location(message.payload["expr"])
            rooms = self.resolve_rooms(expr, message.payload.get("owner"))
            self.reply(message, "where-resolved", {"ok": True, "rooms": rooms})
        except LocationError as exc:
            self.reply(message, "where-resolved", {"ok": False, "error": str(exc)})

    def _handle_route(self, message: Message) -> None:
        try:
            expr_a = parse_location(message.payload["from"])
            expr_b = parse_location(message.payload["to"])
            rooms, polyline = self.route_between(
                expr_a, expr_b,
                owner=message.payload.get("owner"),
                entity_key=message.payload.get("entity_key"),
            )
            self.reply(message, "route-result", {
                "ok": True,
                "rooms": rooms,
                "polyline": [p.as_tuple() for p in polyline],
            })
        except LocationError as exc:
            self.reply(message, "route-result", {"ok": False, "error": str(exc)})

"""Cross-model location conversions, registered into the type ontology.

Section 3.3: "it may be necessary to convert geometric information to a
hierarchical model or similarly convert network signal strength to a
geometric position". Each conversion is a :class:`~repro.core.types.Converter`
edge between representations of the semantic type ``location``; the query
resolver composes chains of them automatically (e.g. ``signal`` ->
``geometric`` -> ``topological`` -> ``symbolic``).

Value encodings per representation:

``symbolic``     full slash path, e.g. ``"strathclyde/livingstone/L10/L10.01"``
``topological``  place node name, e.g. ``"L10.01"``
``geometric``    an ``(x, y)`` tuple in metres
``signal``       a list of ``(station_id, rssi_dbm)`` pairs
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.types import TypeRegistry
from repro.location.building import BuildingModel
from repro.location.geometry import Point
from repro.location.signalmap import SignalObservation


def register_location_converters(registry: TypeRegistry, building: BuildingModel) -> TypeRegistry:
    """Install the location conversions for ``building`` into ``registry``.

    Fidelity reflects information loss: collapsing a point to a room loses
    in-room position (0.8); expanding a room to its centroid invents one
    (0.7); signal-strength estimation is the coarsest (0.6).
    """

    def geometric_to_topological(value: Tuple[float, float]) -> str:
        return building.nearest_room(Point(value[0], value[1]))

    def topological_to_geometric(value: str) -> Tuple[float, float]:
        centroid = building.room_centroid(value)
        return (centroid.x, centroid.y)

    def topological_to_symbolic(value: str) -> str:
        return building.hierarchy.path_of(value)

    def symbolic_to_topological(value: str) -> str:
        leaf = value.rsplit("/", 1)[-1]
        building.room(leaf)  # validate it names a real room
        return leaf

    def signal_to_geometric(value: List[Tuple[str, float]]) -> Tuple[float, float]:
        observations = [SignalObservation(station, rssi) for station, rssi in value]
        estimate = building.signal_map.estimate_position(observations)
        return (estimate.x, estimate.y)

    registry.add_converter("location", "geometric", "topological",
                           geometric_to_topological, cost=1.0, fidelity=0.8)
    registry.add_converter("location", "topological", "geometric",
                           topological_to_geometric, cost=1.0, fidelity=0.7)
    registry.add_converter("location", "topological", "symbolic",
                           topological_to_symbolic, cost=0.5, fidelity=1.0)
    registry.add_converter("location", "symbolic", "topological",
                           symbolic_to_topological, cost=0.5, fidelity=1.0)
    registry.add_converter("location", "signal", "geometric",
                           signal_to_geometric, cost=2.0, fidelity=0.6)
    return registry

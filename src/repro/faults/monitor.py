"""Delivery observation: measuring continuity of context streams.

The adaptivity claim (C1) is about what a CAA *experiences* when a provider
dies: how long its stream goes quiet before re-composition restores it. The
:class:`StreamProbe` wraps a CAA's event feed with timestamps and computes
delivery gaps against the stream's expected cadence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.entities.entity import ContextAwareApplication
from repro.events.event import ContextEvent


@dataclass
class DeliveryGap:
    """A quiet period longer than the expected cadence."""

    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start


class StreamProbe:
    """Records event arrival times at one CAA for one event type."""

    def __init__(self, app: ContextAwareApplication,
                 type_name: Optional[str] = None):
        self.app = app
        self.type_name = type_name
        #: when observation began — the anchor the first gap is measured
        #: from; a stream that is quiet from the moment the probe attaches
        #: is a gap even though no arrival has been recorded yet
        self.attached_at = app.now
        self.arrivals: List[float] = []
        self._previous_on_event = app.on_event

        def hook(event: ContextEvent, sub_id) -> None:
            if self.type_name is None or event.type_name == self.type_name:
                self.arrivals.append(app.now)
            self._previous_on_event(event, sub_id)

        app.on_event = hook

    def count(self) -> int:
        return len(self.arrivals)

    def arrivals_between(self, start: float, end: float) -> List[float]:
        return [t for t in self.arrivals if start <= t <= end]

    def gaps(self, expected_interval: float,
             until: Optional[float] = None) -> List[DeliveryGap]:
        """Quiet periods longer than ``expected_interval``."""
        if expected_interval <= 0:
            raise ValueError(f"non-positive interval: {expected_interval}")
        end_time = until if until is not None else self.app.now
        found: List[DeliveryGap] = []
        # anchor at attach time, not the first arrival: a stream that takes
        # longer than one cadence to start delivering was already gapped,
        # and an empty arrival list is one long gap — previously the first
        # arrival was silently treated as the epoch, hiding both cases
        previous = self.attached_at
        for arrival in self.arrivals:
            if arrival - previous > expected_interval:
                found.append(DeliveryGap(previous, arrival))
            previous = arrival
        if end_time - previous > expected_interval:
            found.append(DeliveryGap(previous, end_time))
        return found

    def longest_gap(self, expected_interval: float,
                    until: Optional[float] = None) -> float:
        gaps = self.gaps(expected_interval, until)
        return max((gap.length for gap in gaps), default=0.0)

    def recovery_time(self, failure_at: float) -> Optional[float]:
        """Time from ``failure_at`` to the first subsequent delivery."""
        for arrival in self.arrivals:
            if arrival > failure_at:
                return arrival - failure_at
        return None

"""Failure injection and observation.

Section 2 calls out robustness as the gap in prior systems: "the same
context may come from several sources and the data sources may become
available or unavailable due to user movement or component failure." These
tools create those failures (crashes, loss episodes, partitions) and measure
how delivery recovers — the instrumentation behind the C1 adaptivity
benchmark.
"""

from repro.faults.injector import FaultInjector
from repro.faults.monitor import StreamProbe, DeliveryGap

__all__ = ["FaultInjector", "StreamProbe", "DeliveryGap"]

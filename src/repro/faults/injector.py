"""Deterministic fault injection for the simulated deployment."""

from __future__ import annotations

import logging
import random
from typing import Iterable, List, Optional

from repro.entities.entity import BaseComponent
from repro.net.transport import Network

logger = logging.getLogger(__name__)


class FaultInjector:
    """Crashes components and degrades the network, reproducibly."""

    def __init__(self, network: Network, seed: int = 0):
        self.network = network
        self.rng = random.Random(seed)
        self.crashes: List[str] = []

    # -- component failure ---------------------------------------------------------

    def crash(self, component: BaseComponent) -> None:
        """Fail-stop one component: it vanishes without deregistering.

        The range notices through lease expiry (the Registrar's sweep), which
        is what triggers configuration repair.
        """
        logger.info("fault: crashing %s at t=%.2f", component.name,
                    self.network.scheduler.now)
        self.crashes.append(component.name)
        component.crash()

    def crash_random(self, components: Iterable[BaseComponent]) -> Optional[BaseComponent]:
        pool = [component for component in components
                if component.network.process(component.guid) is not None]
        if not pool:
            return None
        victim = self.rng.choice(sorted(pool, key=lambda c: c.name))
        self.crash(victim)
        return victim

    # -- network degradation ------------------------------------------------------------

    def loss_episode(self, drop_rate: float, duration: float) -> None:
        """Raise the drop rate for ``duration``, then restore it."""
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate out of range: {drop_rate}")
        previous = self.network.drop_rate
        self.network.drop_rate = drop_rate
        logger.info("fault: loss episode %.0f%% for %.1f", drop_rate * 100, duration)
        self.network.scheduler.schedule(
            duration, lambda: setattr(self.network, "drop_rate", previous))

    def partition_episode(self, groups: List[List[str]], duration: float) -> None:
        """Partition host groups for ``duration``, then heal."""
        self.network.set_partitions(groups)
        logger.info("fault: partition %s for %.1f", groups, duration)
        self.network.scheduler.schedule(duration, self.network.heal_partitions)

    def host_outage(self, host_id: str, duration: float) -> None:
        """Take one machine down for ``duration``."""
        self.network.fail_host(host_id)
        logger.info("fault: host %s down for %.1f", host_id, duration)
        self.network.scheduler.schedule(
            duration, self.network.restore_host, host_id)

"""Deterministic fault injection for the simulated deployment.

Episodes overlap. A chaos schedule routinely starts a second loss episode
while the first is still running, nests a host outage inside a partition, or
lets two outages of the same host interleave. Restoring by "put back the
value I saw when I started" is wrong under overlap — the value seen mid-way
through another episode is the *degraded* one, and whichever restore fires
last wins, leaving the network permanently degraded (or healed too early).

The injector therefore tracks every active episode in a ledger and derives
the network state from the ledger on every change:

* loss episodes: the effective drop rate is ``max(base, active episodes)``;
  the base rate is whatever the network had when the ledger was empty.
* partitions: a stack — the most recently started episode still active
  defines the partition map; when the last one ends the network heals.
* host outages: refcounted per host — a host comes back only when *every*
  outage covering it has ended.
"""

from __future__ import annotations

import itertools
import logging
import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.entities.entity import BaseComponent
from repro.net.transport import Network

logger = logging.getLogger(__name__)


class FaultInjector:
    """Crashes components and degrades the network, reproducibly."""

    def __init__(self, network: Network, seed: int = 0):
        self.network = network
        self.rng = random.Random(seed)
        self.crashes: List[str] = []
        self._tokens = itertools.count(1)
        #: active loss episodes: token -> episode drop rate
        self._loss_active: Dict[int, float] = {}
        self._loss_base = 0.0
        #: active partition episodes, oldest first: (token, groups)
        self._partition_active: List[Tuple[int, List[List[str]]]] = []
        #: downed hosts: host_id -> number of covering outages
        self._outage_counts: Dict[str, int] = {}

    # -- component failure ---------------------------------------------------------

    def crash(self, component: BaseComponent) -> None:
        """Fail-stop one component: it vanishes without deregistering.

        The range notices through lease expiry (the Registrar's sweep), which
        is what triggers configuration repair.
        """
        logger.info("fault: crashing %s at t=%.2f", component.name,
                    self.network.scheduler.now)
        self.crashes.append(component.name)
        component.crash()

    def crash_random(self, components: Iterable[BaseComponent]) -> Optional[BaseComponent]:
        pool = [component for component in components
                if component.network.process(component.guid) is not None]
        if not pool:
            return None
        victim = self.rng.choice(sorted(pool, key=lambda c: c.name))
        self.crash(victim)
        return victim

    # -- network degradation ------------------------------------------------------------

    def loss_episode(self, drop_rate: float, duration: float) -> int:
        """Raise the drop rate for ``duration``, then restore it.

        Overlap-safe: concurrent episodes compose as ``max`` and the base
        rate returns only when the last episode ends.
        """
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate out of range: {drop_rate}")
        if not self._loss_active:
            self._loss_base = self.network.drop_rate
        token = next(self._tokens)
        self._loss_active[token] = drop_rate
        self._apply_loss()
        logger.info("fault: loss episode %.0f%% for %.1f", drop_rate * 100, duration)
        self.network.scheduler.schedule(duration, self._end_loss, token)
        return token

    def _end_loss(self, token: int) -> None:
        self._loss_active.pop(token, None)
        self._apply_loss()

    def _apply_loss(self) -> None:
        self.network.drop_rate = max([self._loss_base,
                                      *self._loss_active.values()])

    def partition_episode(self, groups: List[List[str]], duration: float) -> int:
        """Partition host groups for ``duration``, then heal.

        Overlap-safe: the most recently started episode still active defines
        the partition map; the network heals when the last one ends.
        """
        token = next(self._tokens)
        self._partition_active.append((token, [list(group) for group in groups]))
        self.network.set_partitions(groups)
        logger.info("fault: partition %s for %.1f", groups, duration)
        self.network.scheduler.schedule(duration, self._end_partition, token)
        return token

    def _end_partition(self, token: int) -> None:
        self._partition_active = [(active, groups)
                                  for active, groups in self._partition_active
                                  if active != token]
        if self._partition_active:
            self.network.set_partitions(self._partition_active[-1][1])
        else:
            self.network.heal_partitions()

    def host_outage(self, host_id: str, duration: float) -> int:
        """Take one machine down for ``duration``.

        Overlap-safe: interleaved outages of the same host are refcounted,
        so the host comes back only when every covering outage has ended.
        """
        token = next(self._tokens)
        self._outage_counts[host_id] = self._outage_counts.get(host_id, 0) + 1
        self.network.fail_host(host_id)
        logger.info("fault: host %s down for %.1f", host_id, duration)
        self.network.scheduler.schedule(duration, self._end_outage, host_id)
        return token

    def _end_outage(self, host_id: str) -> None:
        remaining = self._outage_counts.get(host_id, 0) - 1
        if remaining > 0:
            self._outage_counts[host_id] = remaining
            return
        self._outage_counts.pop(host_id, None)
        self.network.restore_host(host_id)

    # -- introspection -------------------------------------------------------------------

    def active_faults(self) -> Dict[str, int]:
        """Counts of currently active episodes, by kind (for assertions)."""
        return {
            "loss": len(self._loss_active),
            "partition": len(self._partition_active),
            "outage": sum(self._outage_counts.values()),
        }

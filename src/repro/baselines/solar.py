"""A miniature Solar (Chen & Kotz — the paper's ref [5]).

Quoting the SCI paper: "all the communication between context components is
through events. Solar supports dynamic composition of context components ...
It requires the application developer to explicitly specify the composition
graph of context components. The infrastructure will try to find the common
parts of context processing graphs of different applications and will reuse
them, thus improving scalability."

And the critique under test: "they have not addressed the issue of
robustness ... The requirement that the application developer has to
explicitly choose data source, context operators and specify the
context-processing graph will affect the robustness of the context system."

So: applications hand the platform explicit operator trees naming concrete
sources; the platform deduplicates structurally identical subtrees (measured
by ``operators_instantiated`` vs ``operators_requested``); when a named
source dies the subscription simply goes quiet until the *developer* submits
a replacement graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import SCIError
from repro.baselines.common import DataSource, Environment


@dataclass(frozen=True)
class OperatorSpec:
    """An explicit operator-tree specification.

    Leaves name concrete sources (``source_name`` set); interior nodes name
    an operator and its children. This is the "composition graph of context
    components" the developer must write by hand.
    """

    operator: str = ""
    source_name: Optional[str] = None
    children: Tuple["OperatorSpec", ...] = ()

    @classmethod
    def source(cls, name: str) -> "OperatorSpec":
        return cls(source_name=name)

    @classmethod
    def op(cls, operator: str, *children: "OperatorSpec") -> "OperatorSpec":
        return cls(operator=operator, children=tuple(children))

    def signature(self) -> str:
        """Canonical form used for common-subgraph detection."""
        if self.source_name is not None:
            return f"src:{self.source_name}"
        inner = ",".join(child.signature() for child in self.children)
        return f"{self.operator}({inner})"


class _Operator:
    """One instantiated node of a Solar graph."""

    def __init__(self, spec: OperatorSpec, fn: Optional[Callable] = None):
        self.spec = spec
        self.fn = fn or (lambda values: values[-1])
        self.last_inputs: Dict[int, Any] = {}
        self._callbacks: List[Callable[[Any], None]] = []
        self.events_out = 0

    def feed(self, child_index: int, value: Any) -> None:
        self.last_inputs[child_index] = value
        ordered = [self.last_inputs[index]
                   for index in sorted(self.last_inputs)]
        result = self.fn(ordered)
        self.events_out += 1
        for callback in list(self._callbacks):
            callback(result)

    def register_callback(self, callback: Callable[[Any], None]) -> None:
        self._callbacks.append(callback)


class SolarPlatform:
    """Instantiates explicit operator graphs with common-subgraph reuse."""

    def __init__(self, environment: Environment,
                 operator_functions: Optional[Dict[str, Callable]] = None):
        self.environment = environment
        self.operator_functions = dict(operator_functions or {})
        self._instantiated: Dict[str, _Operator] = {}
        self.operators_requested = 0
        self.operators_instantiated = 0

    def deploy(self, spec: OperatorSpec,
               deliver: Callable[[Any], None]) -> "_Operator":
        """Instantiate (or reuse) the graph for ``spec``; wire delivery."""
        root = self._instantiate(spec)
        root.register_callback(deliver)
        return root

    def _instantiate(self, spec: OperatorSpec) -> _Operator:
        self.operators_requested += 1
        signature = spec.signature()
        existing = self._instantiated.get(signature)
        if existing is not None:
            return existing  # common subgraph reuse

        if spec.source_name is not None:
            source = self.environment.source(spec.source_name)
            operator = _Operator(spec)
            source.subscribe(
                lambda _source, value, op=operator: op.feed(0, value))
            if not source.alive:
                # Solar accepts the spec; the subscription just never fires.
                pass
        else:
            fn = self.operator_functions.get(spec.operator)
            operator = _Operator(spec, fn)
            for index, child_spec in enumerate(spec.children):
                child = self._instantiate(child_spec)
                child.register_callback(
                    lambda value, op=operator, i=index: op.feed(i, value))
        self._instantiated[signature] = operator
        self.operators_instantiated += 1
        return operator

    def reuse_ratio(self) -> float:
        """requested/instantiated: > 1 means sharing paid off."""
        if not self.operators_instantiated:
            return 0.0
        return self.operators_requested / self.operators_instantiated


class SolarApp:
    """An application that must author its own graphs (and re-author them
    after failures — that is Solar's robustness story)."""

    def __init__(self, name: str, platform: SolarPlatform):
        self.name = name
        self.platform = platform
        self.received: List[Any] = []
        self._specs: List[OperatorSpec] = []
        self.graphs_authored = 0

    def subscribe_graph(self, spec: OperatorSpec) -> None:
        self._specs.append(spec)
        self.graphs_authored += 1
        self.platform.deploy(spec, self.received.append)

    def live_leaf_sources(self) -> List[DataSource]:
        found: List[DataSource] = []

        def walk(spec: OperatorSpec) -> None:
            if spec.source_name is not None:
                source = self.platform.environment.source(spec.source_name)
                if source.alive:
                    found.append(source)
            for child in spec.children:
                walk(child)

        for spec in self._specs:
            walk(spec)
        return found

    def satisfied(self) -> bool:
        """All leaves of all authored graphs still alive?"""
        def leaves_alive(spec: OperatorSpec) -> bool:
            if spec.source_name is not None:
                return self.platform.environment.source(spec.source_name).alive
            return all(leaves_alive(child) for child in spec.children)

        return bool(self._specs) and all(leaves_alive(spec)
                                         for spec in self._specs)

"""SCI's composition model over the baseline environment.

The fourth column of the C3 comparison: semantic type matching with
converter insertion, re-composed automatically on environmental change. The
adapter runs the real :class:`~repro.composition.resolver.QueryResolver`
against profiles synthesised from the environment's live sources, so the
comparison exercises exactly the matching logic the full middleware uses —
without dragging the network substrate into what is a composition-model
benchmark.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import NoProviderError
from repro.core.ids import GuidFactory
from repro.core.types import TypeRegistry, TypeSpec
from repro.composition.resolver import QueryResolver
from repro.baselines.common import DataSource, Environment
from repro.entities.profile import EntityClass, Profile


class SCIComposition:
    """Resolver-backed bindings over a baseline environment."""

    def __init__(self, environment: Environment, registry: TypeRegistry,
                 seed: int = 0):
        self.environment = environment
        self.registry = registry
        self._guids = GuidFactory(seed=seed)
        self._profile_of: Dict[str, Profile] = {}
        self._source_of_hex: Dict[str, DataSource] = {}
        self.resolver = QueryResolver(registry, live_profiles=self._live_profiles)
        #: wanted spec -> currently bound source (after converters)
        self.bindings: Dict[TypeSpec, Optional[DataSource]] = {}
        self.recompositions = 0

    def _profile_for(self, source: DataSource) -> Profile:
        profile = self._profile_of.get(source.name)
        if profile is None:
            profile = Profile(
                entity_id=self._guids.mint(),
                name=source.name,
                entity_class=EntityClass.DEVICE,
                outputs=[TypeSpec(source.type_name, source.representation,
                                  source.subject)],
            )
            self._profile_of[source.name] = profile
            self._source_of_hex[profile.entity_id.hex] = source
        return profile

    def _live_profiles(self) -> List[Profile]:
        return [self._profile_for(source)
                for source in self.environment.live_sources()]

    # -- the composition operations the C3 workload drives ------------------------

    def demand(self, wanted: TypeSpec) -> Optional[DataSource]:
        """Bind a demand; returns the chosen root source (None on failure)."""
        try:
            plan = self.resolver.resolve(wanted)
        except NoProviderError:
            self.bindings[wanted] = None
            return None
        root_source = self._root_source(plan)
        self.bindings[wanted] = root_source
        return root_source

    def _root_source(self, plan) -> Optional[DataSource]:
        for key in plan.source_keys():
            node = plan.nodes[key]
            if node.kind == "live" and node.entity_hex in self._source_of_hex:
                return self._source_of_hex[node.entity_hex]
        return None

    def environment_changed(self) -> int:
        """Re-compose every demand whose bound source died.

        Returns how many demands were re-resolved (successfully or not) —
        SCI's analogue of iQueue's rebinding pass, but semantic.
        """
        repaired = 0
        for wanted, source in list(self.bindings.items()):
            if source is not None and source.alive:
                continue
            repaired += 1
            self.recompositions += 1
            self.demand(wanted)
        return repaired

    def satisfied(self) -> bool:
        return bool(self.bindings) and all(
            source is not None and source.alive
            for source in self.bindings.values())

    def satisfied_count(self) -> int:
        return sum(1 for source in self.bindings.values()
                   if source is not None and source.alive)

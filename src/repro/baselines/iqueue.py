"""A miniature iQueue (Cohen et al. — the paper's ref [6]).

Quoting the SCI paper: "An iQueue application obtains its data from
composers. A composer combines data sources to produce a particular result.
Data sources are described by data specifications, which are descriptions of
data type required by the composer, rather than explicitly where to find the
data ... iQueue supports the continual rebinding of data specifications to
the most appropriate data sources."

And the critique under test: "iQueue faces this issue when presented with
data sources that have widely different syntactic descriptions but are
semantically similar. For example an iQueue application that has been
developed to request location data from a network of door sensors cannot
take advantage of an environment that provides location information using a
wireless detection scheme."

So: a :class:`DataSpec` matches sources *syntactically* (type name AND
representation must agree); composers rebind automatically whenever a bound
source dies — but only to syntactic matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.baselines.common import DataSource, Environment


@dataclass(frozen=True)
class DataSpec:
    """A syntactic description of the data a composer needs."""

    type_name: str
    representation: str
    subject: Optional[str] = None

    def __str__(self) -> str:
        subject = f"@{self.subject}" if self.subject else ""
        return f"{self.type_name}[{self.representation}]{subject}"


class Composer:
    """Combines bound data specs into one produced value."""

    def __init__(self, platform: "IQueuePlatform", specs: List[DataSpec],
                 fn: Optional[Callable[[List[Any]], Any]] = None):
        self.platform = platform
        self.specs = list(specs)
        self.fn = fn or (lambda values: values[-1])
        self.bound: Dict[int, Optional[DataSource]] = {
            index: None for index in range(len(specs))}
        self._latest: Dict[int, Any] = {}
        self._subscribers: List[Callable[[Any], None]] = []
        self.values_produced = 0
        self.rebinds = 0
        for index in range(len(specs)):
            self._bind(index)

    # -- binding --------------------------------------------------------------------

    def _bind(self, index: int) -> bool:
        spec = self.specs[index]
        candidates = self.platform.environment.find_syntactic(
            spec.type_name, spec.representation, spec.subject)
        previous = self.bound[index]
        if previous is not None:
            previous.unsubscribe(self._make_callback(index))
        if not candidates:
            self.bound[index] = None
            return False
        chosen = candidates[0]
        self.bound[index] = chosen
        chosen.subscribe(self._make_callback(index))
        return True

    def _make_callback(self, index: int):
        # One stable callback object per slot so unsubscribe works.
        cache = getattr(self, "_callbacks", None)
        if cache is None:
            cache = {}
            self._callbacks = cache
        if index not in cache:
            def callback(source: DataSource, value: Any, _index=index) -> None:
                self._on_value(_index, value)
            cache[index] = callback
        return cache[index]

    def _on_value(self, index: int, value: Any) -> None:
        self._latest[index] = value
        if len(self._latest) == len(self.specs):
            produced = self.fn([self._latest[i] for i in sorted(self._latest)])
            self.values_produced += 1
            for subscriber in list(self._subscribers):
                subscriber(produced)

    def rebind_if_needed(self) -> bool:
        """Continual rebinding: repair slots whose source died.

        Returns True when every slot is bound afterwards. Called by the
        platform whenever the environment changes (iQueue's 'rebinding of
        data specifications to the most appropriate data sources').
        """
        all_bound = True
        for index in range(len(self.specs)):
            source = self.bound[index]
            if source is None or not source.alive:
                self.rebinds += 1
                if not self._bind(index):
                    all_bound = False
        return all_bound

    def fully_bound(self) -> bool:
        return all(source is not None and source.alive
                   for source in self.bound.values())

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        self._subscribers.append(callback)


class IQueuePlatform:
    """Owns composers and drives continual rebinding."""

    def __init__(self, environment: Environment):
        self.environment = environment
        self.composers: List[Composer] = []

    def create_composer(self, specs: List[DataSpec],
                        fn: Optional[Callable[[List[Any]], Any]] = None) -> Composer:
        composer = Composer(self, specs, fn)
        self.composers.append(composer)
        return composer

    def environment_changed(self) -> None:
        """Notify all composers that sources appeared/disappeared."""
        for composer in self.composers:
            composer.rebind_if_needed()

    def satisfied(self) -> bool:
        return bool(self.composers) and all(composer.fully_bound()
                                            for composer in self.composers)

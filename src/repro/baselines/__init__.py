"""Miniature reimplementations of the Section-2 comparison systems.

The paper positions SCI against three prior systems; to measure the claimed
differences rather than assert them, each system's *composition model* is
implemented over a common source environment:

* :mod:`repro.baselines.contexttoolkit` — Dey et al.'s Context Toolkit:
  widgets / interpreters / aggregators wired at design time ("after the
  decision has been made and these context components are built, they
  become fixed");
* :mod:`repro.baselines.solar` — Chen & Kotz's Solar: applications submit
  explicit operator-graph specifications; the platform deduplicates common
  subgraphs ("will try to find the common parts of context processing
  graphs ... and will reuse them"), but robustness is the developer's
  problem;
* :mod:`repro.baselines.iqueue` — Cohen et al.'s iQueue: composers bind to
  data specifications and continually rebind to the best matching source —
  but matching is syntactic, so a semantically-equivalent source with a
  different representation is invisible;
* :mod:`repro.baselines.sciadapter` — SCI's resolver over the same
  environment, with semantic matching and converter insertion.

The C3 benchmark drives all four with the same environment-change workload.
"""

from repro.baselines.common import DataSource, Environment
from repro.baselines.contexttoolkit import Widget, Interpreter, Aggregator, ToolkitApp
from repro.baselines.solar import SolarPlatform, OperatorSpec, SolarApp
from repro.baselines.iqueue import IQueuePlatform, DataSpec, Composer
from repro.baselines.sciadapter import SCIComposition

__all__ = [
    "DataSource",
    "Environment",
    "Widget",
    "Interpreter",
    "Aggregator",
    "ToolkitApp",
    "SolarPlatform",
    "OperatorSpec",
    "SolarApp",
    "IQueuePlatform",
    "DataSpec",
    "Composer",
    "SCIComposition",
]

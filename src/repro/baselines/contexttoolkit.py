"""A miniature Context Toolkit (Dey, Salber, Abowd — the paper's ref [4]).

Three component kinds, quoting the SCI paper's summary: "widgets,
aggregators, and interpreters. The Context Toolkit provides common
functionality such as communication between context components and encoding
of context data."

The property under test is the critique: "after the decision has been made
and these context components are built, they become fixed. This means that
the developer has to foresee all the requirements of applications at design
time". Accordingly, a :class:`Widget` binds to exactly the source it was
built on; when that source dies the widget goes quiet and nothing in the
framework rebinds it.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.baselines.common import DataSource


class Widget:
    """Wraps one concrete sensor, chosen at design time."""

    def __init__(self, source: DataSource):
        self.source = source
        self.last_value: Any = None
        self.updates = 0
        self._callbacks: List[Callable[[Any], None]] = []
        source.subscribe(self._on_source)

    def _on_source(self, source: DataSource, value: Any) -> None:
        self.last_value = value
        self.updates += 1
        for callback in list(self._callbacks):
            callback(value)

    def register_callback(self, callback: Callable[[Any], None]) -> None:
        self._callbacks.append(callback)

    @property
    def operational(self) -> bool:
        """Is the design-time source still alive? (The widget itself has no
        way to notice or react — this is the experimenter's view.)"""
        return self.source.alive

    def __repr__(self) -> str:
        return f"Widget({self.source.name})"


class Interpreter:
    """A fixed transformation applied to widget output."""

    def __init__(self, fn: Callable[[Any], Any], label: str = "interpreter"):
        self.fn = fn
        self.label = label
        self.interpretations = 0

    def interpret(self, value: Any) -> Any:
        self.interpretations += 1
        return self.fn(value)


class Aggregator:
    """Collects context about one entity from a fixed set of widgets."""

    def __init__(self, entity: str, widgets: List[Widget],
                 interpreter: Optional[Interpreter] = None):
        self.entity = entity
        self.widgets = list(widgets)
        self.interpreter = interpreter
        self.last_value: Any = None
        self.updates = 0
        self._callbacks: List[Callable[[Any], None]] = []
        for widget in self.widgets:
            widget.register_callback(self._on_widget)

    def _on_widget(self, value: Any) -> None:
        if self.interpreter is not None:
            value = self.interpreter.interpret(value)
        self.last_value = value
        self.updates += 1
        for callback in list(self._callbacks):
            callback(value)

    def register_callback(self, callback: Callable[[Any], None]) -> None:
        self._callbacks.append(callback)

    @property
    def operational(self) -> bool:
        """At least one constituent widget still has a live source."""
        return any(widget.operational for widget in self.widgets)


class ToolkitApp:
    """An application holding design-time references to aggregators."""

    def __init__(self, name: str):
        self.name = name
        self.aggregators: List[Aggregator] = []
        self.received: List[Any] = []

    def use(self, aggregator: Aggregator) -> Aggregator:
        self.aggregators.append(aggregator)
        aggregator.register_callback(self.received.append)
        return aggregator

    def satisfied(self) -> bool:
        """Are all of the app's context needs still being met?

        With the Toolkit, this is simply whether the fixed wiring still has
        live sources behind it — there is no mechanism that could make it
        true again once it goes false.
        """
        return bool(self.aggregators) and all(
            aggregator.operational for aggregator in self.aggregators)

"""The shared source environment the baseline comparisons run over.

A :class:`DataSource` stands for one sensor-level producer (a door-sensor
network, a wireless positioning system, a thermometer). Sources are typed
exactly like SCI's specs — semantic type plus representation plus subject —
so every composition model sees the same world and differs only in how it
binds to it. The environment can kill and revive sources, which is the
"environmental change" of the C3 workload.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import SCIError


class DataSource:
    """One sensor-level producer in the baseline environment."""

    def __init__(self, name: str, type_name: str, representation: str,
                 subject: Optional[str] = None):
        self.name = name
        self.type_name = type_name
        self.representation = representation
        self.subject = subject
        self.alive = True
        self._subscribers: List[Callable[["DataSource", Any], None]] = []
        self.pushes = 0

    def subscribe(self, callback: Callable[["DataSource", Any], None]) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[["DataSource", Any], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def push(self, value: Any) -> int:
        """Emit one value to live subscribers; dead sources emit nothing."""
        if not self.alive:
            return 0
        self.pushes += 1
        for callback in list(self._subscribers):
            callback(self, value)
        return len(self._subscribers)

    def matches_syntactically(self, type_name: str, representation: str,
                              subject: Optional[str] = None) -> bool:
        """iQueue-style matching: representation must agree exactly."""
        if not self.alive:
            return False
        if self.type_name != type_name:
            return False
        if self.representation != representation:
            return False
        if subject is not None and self.subject not in (None, subject):
            return False
        return True

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return (f"DataSource({self.name}: {self.type_name}"
                f"[{self.representation}] {state})")


class Environment:
    """All sources visible to the composition models, with kill/revive."""

    def __init__(self):
        self._sources: Dict[str, DataSource] = {}

    def add_source(self, source: DataSource) -> DataSource:
        if source.name in self._sources:
            raise SCIError(f"duplicate source: {source.name!r}")
        self._sources[source.name] = source
        return source

    def create(self, name: str, type_name: str, representation: str,
               subject: Optional[str] = None) -> DataSource:
        return self.add_source(DataSource(name, type_name, representation, subject))

    def source(self, name: str) -> DataSource:
        try:
            return self._sources[name]
        except KeyError:
            raise SCIError(f"unknown source: {name!r}") from None

    def sources(self) -> List[DataSource]:
        return list(self._sources.values())

    def live_sources(self) -> List[DataSource]:
        return [source for source in self._sources.values() if source.alive]

    def kill(self, name: str) -> DataSource:
        """Environmental change: a source becomes unavailable."""
        source = self.source(name)
        source.alive = False
        return source

    def revive(self, name: str) -> DataSource:
        source = self.source(name)
        source.alive = True
        return source

    def find_syntactic(self, type_name: str, representation: str,
                       subject: Optional[str] = None) -> List[DataSource]:
        """Live sources matching a spec exactly (sorted for determinism)."""
        found = [source for source in self._sources.values()
                 if source.matches_syntactically(type_name, representation, subject)]
        return sorted(found, key=lambda source: source.name)

    def find_semantic(self, type_name: str,
                      subject: Optional[str] = None) -> List[DataSource]:
        """Live sources matching by semantic type regardless of representation."""
        found = [
            source for source in self._sources.values()
            if source.alive and source.type_name == type_name
            and (subject is None or source.subject in (None, subject))
        ]
        return sorted(found, key=lambda source: source.name)

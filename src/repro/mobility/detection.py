"""Range boundary monitoring — arrival and departure detection.

Section 3.4: "each range monitors internal activity as well as activity at
its boundaries in order to detect the arrival and departure of entities. For
example, a user wearing an id tag arriving or leaving their range by walking
through a door equipped with a sensor for detecting id tags would be
discovered. Similarly a user with a W-LAN equipped device could be detected
leaving the effective operating range of a wireless network."

The :class:`BoundaryMonitor` periodically evaluates which range governs each
mobile entity's position (room containment for physically-bounded ranges,
base-station coverage for W-LAN-bounded ones). On a transition it:

* asks the new range's Context Server to **admit** the entity's device host
  (its Range Service offers registration to the components on the machine —
  the CAPA lobby scenario), and
* asks the old range's Context Server to **expel** the components that
  registered from that host (plus runs handoff, if configured).
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Tuple

from repro.mobility.world import PhysicalEntity, World
from repro.net.sim import Timer
from repro.server.context_server import ContextServer

logger = logging.getLogger(__name__)


class BoundaryMonitor:
    """Watches world positions and drives range admission/expulsion."""

    def __init__(self, world: World, ranges: List[ContextServer],
                 scan_interval: float = 1.0, handoff=None):
        if scan_interval <= 0:
            raise ValueError(f"non-positive scan interval: {scan_interval}")
        self.world = world
        self.ranges = list(ranges)
        self.handoff = handoff
        #: entity key -> range name it is currently attributed to (or None)
        self._range_of: Dict[str, Optional[str]] = {}
        self.transitions = 0
        self._timer: Timer = world.scheduler.schedule_periodic(
            scan_interval, self.scan)

    def stop(self) -> None:
        self._timer.cancel()

    def range_of(self, entity_key: str) -> Optional[str]:
        return self._range_of.get(entity_key)

    # -- scanning ---------------------------------------------------------------------

    def scan(self) -> int:
        """One sweep; returns the number of transitions detected."""
        changed = 0
        for entity in self.world.entities():
            if entity.device_host is None:
                continue  # only device-carrying entities register components
            current = self._governing_range(entity)
            previous = self._range_of.get(entity.key)
            current_name = current.definition.name if current else None
            if current_name == previous:
                continue
            changed += 1
            self.transitions += 1
            self._transition(entity, previous, current)
            self._range_of[entity.key] = current_name
        return changed

    def _governing_range(self, entity: PhysicalEntity) -> Optional[ContextServer]:
        """The range responsible for the entity's position.

        Room containment beats radio coverage: a W-LAN-bounded range (the
        lift lobby's base station) can overhear devices deep inside another
        range's rooms, but the room's own range governs there. Station
        coverage decides only where no room-based range claims the point.
        """
        building = self.world.building
        room = building.room_at(entity.position)
        if room is not None:
            for server in self.ranges:
                if server.definition.governs_place(building, room):
                    return server
        for server in self.ranges:
            if server.definition.governs_point(building, entity.position):
                return server
        return None

    def _transition(self, entity: PhysicalEntity,
                    previous_name: Optional[str],
                    current: Optional[ContextServer]) -> None:
        previous = next((server for server in self.ranges
                         if server.definition.name == previous_name), None)
        logger.info("boundary: %s %s -> %s", entity.key,
                    previous_name or "<no range>",
                    current.definition.name if current else "<no range>")
        if previous is not None:
            departing = [record for record in previous.registrar.records()
                         if record.host_id == entity.device_host]
            if self.handoff is not None and current is not None:
                for record in departing:
                    self.handoff.carry(record, previous, current)
            for record in departing:
                previous.expel_entity(record.entity_hex, reason="left-range")
        if current is not None:
            current.admit_host(entity.device_host)

    # -- introspection -----------------------------------------------------------------

    def attribution(self) -> Dict[str, Optional[str]]:
        return dict(self._range_of)

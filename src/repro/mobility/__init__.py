"""The model of mobility (Section 3.4) over a simulated physical world.

"In a dynamic environment entities will move in and between Ranges
throughout their lifecycle. To allow for this mobility each range monitors
internal activity as well as activity at its boundaries in order to detect
the arrival and departure of entities."

:mod:`repro.mobility.world` simulates people/devices with positions and
walking movement, firing door sensors as they cross doors;
:mod:`repro.mobility.detection` is the boundary monitor that admits a mobile
machine's components to a range (the lobby base station detecting Bob's PDA)
and expels them on exit; :mod:`repro.mobility.handoff` carries server-side
profile attributes between ranges.
"""

from repro.mobility.world import World, PhysicalEntity
from repro.mobility.detection import BoundaryMonitor
from repro.mobility.handoff import HandoffCoordinator

__all__ = ["World", "PhysicalEntity", "BoundaryMonitor", "HandoffCoordinator"]

"""The simulated physical world: entities, positions, walking, door events.

This is the substitution for the paper's physical deployment (DESIGN.md):
people wearing ID badges and carrying W-LAN devices move through the
building; crossing a sensed door fires that door's
:class:`~repro.entities.sensors.DoorSensorCE`; the W-LAN detector reads
device positions through :meth:`World.device_positions`. Movement is
scheduled on the simulation clock, so an entity's walk produces door events
at the times its legs actually cross each door.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.errors import LocationError, SCIError
from repro.entities.sensors import DoorSensorCE
from repro.location.building import BuildingModel
from repro.location.geometry import Point
from repro.net.sim import Scheduler

logger = logging.getLogger(__name__)


@dataclass
class PhysicalEntity:
    """A person or thing with a position in the world."""

    key: str
    room: str
    position: Point
    #: readable by door sensors (the paper's electronic ID badge)
    has_tag: bool = True
    #: the machine travelling with the entity (a PDA), if any
    device_host: Optional[str] = None
    #: walking speed, metres per simulated time unit
    speed: float = 1.4
    #: strictly increasing token; a new move cancels scheduled steps of the old
    move_token: int = 0
    moving: bool = False


class World:
    """All physical state plus movement simulation for one deployment."""

    def __init__(self, building: BuildingModel, scheduler: Scheduler):
        self.building = building
        self.scheduler = scheduler
        self._entities: Dict[str, PhysicalEntity] = {}
        #: door_id -> sensor CE; deployments wire these in
        self.door_sensors: Dict[str, DoorSensorCE] = {}
        #: callbacks (entity, old_room, new_room) on every room change
        self.on_room_change: List[Callable[[PhysicalEntity, str, str], None]] = []
        #: callbacks (entity, room) when a walk completes
        self.on_arrival: List[Callable[[PhysicalEntity, str], None]] = []

    # -- population -----------------------------------------------------------------

    def add_entity(self, key: str, room: str, has_tag: bool = True,
                   device_host: Optional[str] = None,
                   speed: float = 1.4) -> PhysicalEntity:
        if key in self._entities:
            raise SCIError(f"duplicate world entity: {key!r}")
        if speed <= 0:
            raise SCIError(f"non-positive speed: {speed}")
        self.building.room(room)  # validate
        entity = PhysicalEntity(
            key=key, room=room,
            position=self.building.room_centroid(room),
            has_tag=has_tag, device_host=device_host, speed=speed,
        )
        self._entities[key] = entity
        return entity

    def add_outdoor_entity(self, key: str, position: Point,
                           has_tag: bool = True,
                           device_host: Optional[str] = None,
                           speed: float = 1.4) -> PhysicalEntity:
        """An entity outside every room (Bob on the train)."""
        if key in self._entities:
            raise SCIError(f"duplicate world entity: {key!r}")
        entity = PhysicalEntity(
            key=key, room="", position=position,
            has_tag=has_tag, device_host=device_host, speed=speed,
        )
        self._entities[key] = entity
        return entity

    def entity(self, key: str) -> PhysicalEntity:
        try:
            return self._entities[key]
        except KeyError:
            raise SCIError(f"unknown world entity: {key!r}") from None

    def entities(self) -> List[PhysicalEntity]:
        return list(self._entities.values())

    def device_positions(self) -> Dict[str, Point]:
        """Positions of entities carrying a device (the W-LAN's view)."""
        return {entity.key: entity.position
                for entity in self._entities.values()
                if entity.device_host is not None}

    def attach_door_sensor(self, sensor: DoorSensorCE) -> None:
        self.door_sensors[sensor.door_id] = sensor

    def attach_door_sensors(self, sensors: Dict[str, DoorSensorCE]) -> None:
        self.door_sensors.update(sensors)

    # -- movement --------------------------------------------------------------------

    def teleport(self, key: str, room: str) -> PhysicalEntity:
        """Place an entity in a room with no walking and no door events
        (arriving from outside the instrumented area)."""
        entity = self.entity(key)
        self.building.room(room)
        entity.move_token += 1  # cancel any walk in progress
        entity.moving = False
        old_room = entity.room
        entity.room = room
        entity.position = self.building.room_centroid(room)
        if old_room != room:
            self._fire_room_change(entity, old_room, room)
        return entity

    def walk_to(self, key: str, target_room: str) -> float:
        """Start a walk; returns the estimated arrival time.

        The walk proceeds room by room along the accessible shortest route:
        each leg goes centroid -> door -> next centroid at the entity's
        speed; the door sensor (if any) fires at the moment of crossing.
        Issuing a new movement command cancels the remainder of the walk.
        """
        entity = self.entity(key)
        if not entity.room:
            raise LocationError(
                f"{key!r} is outside the building; teleport it to an entrance first")
        rooms, _ = self.building.route(entity.room, target_room,
                                       entity_key=key)
        doors = self.building.topology.path_doors(rooms, entity_key=key)
        entity.move_token += 1
        entity.moving = len(rooms) > 1
        token = entity.move_token
        when = self.scheduler.now
        for index, door in enumerate(doors):
            here = self.building.room_centroid(rooms[index])
            door_point = self.building.door_position(door.door_id)
            there = self.building.room_centroid(rooms[index + 1])
            to_door = here.distance_to(door_point) / entity.speed
            to_centre = door_point.distance_to(there) / entity.speed
            when += to_door
            self.scheduler.schedule_at(when, self._cross_door, entity, token,
                                       door.door_id, rooms[index],
                                       rooms[index + 1])
            when += to_centre
            self.scheduler.schedule_at(when, self._reach_centre, entity, token,
                                       rooms[index + 1],
                                       index == len(doors) - 1)
        if not doors:
            entity.moving = False
            for callback in list(self.on_arrival):
                callback(entity, target_room)
        return when

    def _cross_door(self, entity: PhysicalEntity, token: int,
                    door_id: str, from_room: str, to_room: str) -> None:
        if entity.move_token != token:
            return  # walk superseded
        entity.room = to_room
        entity.position = self.building.door_position(door_id)
        if entity.has_tag:
            sensor = self.door_sensors.get(door_id)
            if sensor is not None and sensor.registered:
                sensor.detect(entity.key, from_room, to_room)
        self._fire_room_change(entity, from_room, to_room)

    def _reach_centre(self, entity: PhysicalEntity, token: int,
                      room: str, final: bool) -> None:
        if entity.move_token != token:
            return
        entity.position = self.building.room_centroid(room)
        if final:
            entity.moving = False
            for callback in list(self.on_arrival):
                callback(entity, room)

    def _fire_room_change(self, entity: PhysicalEntity,
                          old_room: str, new_room: str) -> None:
        logger.debug("world: %s %s -> %s at t=%.2f", entity.key,
                     old_room or "<outside>", new_room, self.scheduler.now)
        for callback in list(self.on_room_change):
            callback(entity, old_room, new_room)

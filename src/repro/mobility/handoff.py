"""Profile handoff between ranges.

When a component moves between ranges it re-registers with its own profile
(the Figure-5 handshake repeats), but attributes the *old* range's Profile
Manager accumulated server-side — preferences learned by CAAs, usage
counters, annotations — would be lost. Section 3.1 motivates keeping them:
"a CAA can make use of a users Profile stored in their CE to determine
previous behaviour or preferences in order to provide a more useful
service."

The coordinator buffers the departing record's attributes and replays them
onto the new range's Profile Manager once the component has re-registered
there (retrying briefly, since re-registration takes a round-trip).
"""

from __future__ import annotations

import logging
from typing import Dict

from repro.server.context_server import ContextServer
from repro.server.registrar import RegistrationRecord

logger = logging.getLogger(__name__)

#: how long to keep retrying attribute replay after a transition
REPLAY_WINDOW = 30.0
REPLAY_INTERVAL = 2.0


class HandoffCoordinator:
    """Carries server-side profile attributes across range transitions."""

    def __init__(self):
        self.handoffs = 0
        self.replays = 0

    def carry(self, record: RegistrationRecord,
              source: ContextServer, target: ContextServer) -> None:
        """Schedule attribute replay for one departing component."""
        attributes = dict(record.profile.attributes)
        if not attributes:
            return
        self.handoffs += 1
        entity_hex = record.entity_hex
        deadline = target.scheduler.now + REPLAY_WINDOW

        def replay() -> None:
            profile = target.profiles.get(entity_hex)
            if profile is not None:
                merged = dict(attributes)
                merged.update(profile.attributes)  # fresh values win
                profile.attributes.update(merged)
                self.replays += 1
                logger.debug("handoff: replayed %d attribute(s) for %s into %s",
                             len(attributes), profile.name,
                             target.definition.name)
                return
            if target.scheduler.now < deadline:
                target.scheduler.schedule(REPLAY_INTERVAL, replay)

        target.scheduler.schedule(REPLAY_INTERVAL, replay)

"""Subscription records held by an Event Mediator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.ids import GUID
from repro.events.filters import EventFilter, MatchAll

_subscription_ids = itertools.count(1)


@dataclass
class Subscription:
    """One subscriber's interest in a stream of events.

    ``one_time`` implements the paper's "One-time subscription" query mode:
    "As above, but the subscription is cancelled after the CAA receives an
    event."

    ``owner`` identifies who established the subscription (usually the
    Context Server on behalf of a configuration) so all subscriptions
    belonging to a torn-down configuration can be removed together.
    """

    subscriber: GUID
    filter: EventFilter = field(default_factory=MatchAll)
    one_time: bool = False
    owner: Optional[object] = None
    created_at: float = 0.0
    sub_id: int = field(default_factory=lambda: next(_subscription_ids))
    delivered: int = 0
    active: bool = True
    #: last sequence number stamped on a reliable delivery for this
    #: subscription; subscribers detect silent loss as holes in the sequence
    seq: int = 0
    #: wire-level continuous-query spec (``engine="opgraph"`` mediators
    #: compile it into an operator plan); None for plain filter subscriptions
    query: Optional[dict] = None

    def record_delivery(self) -> None:
        self.delivered += 1
        if self.one_time:
            self.active = False

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def __str__(self) -> str:
        mode = "one-time" if self.one_time else "durable"
        return f"Sub#{self.sub_id}({mode} -> {self.subscriber})"

"""Typed context events, filters, subscriptions and the Event Mediator.

Section 3.1: "Event Mediator: Manages the establishment, maintenance and
removal of event subscriptions between Context Entities and Context Aware
Applications." All context data in SCI flows as typed events through a
range's mediator.
"""

from repro.events.event import ContextEvent
from repro.events.dispatch_index import (
    DispatchIndex,
    FilterConstraints,
    analyse_filter,
)
from repro.events.filters import (
    EventFilter,
    TypeFilter,
    SubjectFilter,
    SourceFilter,
    AttributeFilter,
    AndFilter,
    OrFilter,
    NotFilter,
    MatchAll,
    filter_from_spec,
)
from repro.events.subscription import Subscription
from repro.events.mediator import EventMediator

__all__ = [
    "ContextEvent",
    "DispatchIndex",
    "FilterConstraints",
    "analyse_filter",
    "EventFilter",
    "TypeFilter",
    "SubjectFilter",
    "SourceFilter",
    "AttributeFilter",
    "AndFilter",
    "OrFilter",
    "NotFilter",
    "MatchAll",
    "filter_from_spec",
    "Subscription",
    "EventMediator",
]

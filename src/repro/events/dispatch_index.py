"""Content-keyed dispatch index for the Event Mediator's hot path.

The naive mediator evaluates every subscription filter against every
published event — O(subscriptions) per publish, the scaling wall that
content-based pub/sub systems avoid with predicate indexing (compare the
content-keyed lookup structures in P2P context lookup services). This module
does the middleware equivalent: it statically analyses a filter tree into
*equality constraints* that are sound over-approximations of the filter —
every event the filter can match is guaranteed to satisfy the constraints —
and files the subscription in the most selective dict bucket those
constraints allow:

======================  =========================================
constraints extracted   bucket
======================  =========================================
type AND subject        ``(type_name, subject)``
type only               ``(type_name,)``
subject only            ``(subject,)``
source only             ``(source_hex,)``
none (Or/Not/attr/all)  residual scan list
======================  =========================================

Dispatch then looks up the event's own ``(type, subject)``, ``type``,
``subject`` and ``source`` keys plus the residual list — O(matching +
residual) instead of O(all). Because bucketing is only a pre-filter, the
mediator still runs ``filter.matches(event)`` on every candidate, so exotic
filters (representation-narrowed :class:`TypeFilter`, attribute guards
inside an And) keep their exact semantics.

Analysis rules (documented in DESIGN.md):

* :class:`~repro.events.filters.TypeFilter` yields a ``type`` constraint
  (its representation narrowing is re-checked at match time);
* :class:`~repro.events.filters.SubjectFilter` yields a ``subject``
  constraint when the subject is hashable;
* :class:`~repro.events.filters.SourceFilter` yields a ``source`` constraint;
* :class:`~repro.events.filters.AndFilter` unions its parts' constraints
  (a conjunction matches only events satisfying every part, so any part's
  constraint is sound for the whole);
* everything else — ``Or``, ``Not``, ``AttributeFilter``, ``MatchAll``,
  unknown filter classes — yields no constraints and falls to the residual
  list.

Entries are keyed by a monotonically increasing integer id (subscription or
bridge id). Each id lives in exactly one bucket, so concatenating bucket
hits and sorting by id reproduces the exact iteration order of the naive
linear scan over an insertion-ordered dict — which is what lets the
property suite assert byte-identical delivery order.

Filter analysis is memoised per index on the filter's **canonical key**
(:meth:`~repro.events.filters.EventFilter.canonical_key`): a workload that
files thousands of spec-identical subscriptions — the template-pool shape
the operator-graph engine dedups — analyses each distinct filter shape once,
regardless of construction order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.events.event import ContextEvent
from repro.events.filters import (
    AndFilter,
    EventFilter,
    SourceFilter,
    SubjectFilter,
    TypeFilter,
)

#: sentinel for "no constraint extracted on this axis"
_UNSET = object()


def _hashable(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


@dataclass(frozen=True)
class FilterConstraints:
    """Equality facts every event matching a filter must satisfy.

    ``type_name``/``source_hex`` are ``None`` when unconstrained.
    ``subject`` uses a presence flag because ``None`` is a legal subject.
    """

    type_name: Optional[str] = None
    has_subject: bool = False
    subject: object = None
    source_hex: Optional[str] = None

    @property
    def indexable(self) -> bool:
        return (self.type_name is not None or self.has_subject
                or self.source_hex is not None)


def analyse_filter(event_filter: EventFilter) -> FilterConstraints:
    """Extract sound equality constraints from a filter tree.

    Conjunctions with internally conflicting constraints (two different
    ``TypeFilter``\\ s ANDed together) match no event at all, so keeping the
    first constraint seen remains sound — the bucket simply never fires.
    """
    type_name: object = _UNSET
    subject: object = _UNSET
    source_hex: object = _UNSET

    def walk(node: EventFilter) -> None:
        nonlocal type_name, subject, source_hex
        if isinstance(node, AndFilter):
            for part in node.parts:
                walk(part)
        elif isinstance(node, TypeFilter):
            if type_name is _UNSET:
                type_name = node.type_name
        elif isinstance(node, SubjectFilter):
            if subject is _UNSET and _hashable(node.subject):
                subject = node.subject
        elif isinstance(node, SourceFilter):
            if source_hex is _UNSET:
                source_hex = node.source_hex
        # Or / Not / AttributeFilter / MatchAll / anything unknown: no
        # constraint — a disjunction's branches each promise different
        # things and a negation promises the opposite, so neither yields
        # an equality that is sound for every matching event.

    walk(event_filter)
    return FilterConstraints(
        type_name=None if type_name is _UNSET else type_name,
        has_subject=subject is not _UNSET,
        subject=None if subject is _UNSET else subject,
        source_hex=None if source_hex is _UNSET else source_hex,
    )


class DispatchIndex:
    """Bucketed filter index with incremental add/remove.

    Used twice by the mediator: once over subscriptions, once over bridges.
    ``candidates(event)`` returns ids in ascending order, which — ids being
    minted by monotonically increasing counters — is exactly the insertion
    order a naive scan over the mediator's dict would visit.
    """

    #: constraint-memo bound: dedup helps while distinct filter shapes are
    #: few; a pathological stream of unique shapes must not grow unbounded
    CONSTRAINTS_CACHE_CAP = 8192

    __slots__ = ("_by_type_subject", "_by_type", "_by_subject", "_by_source",
                 "_residual", "_bucket_of", "_constraints_cache")

    def __init__(self):
        self._by_type_subject: Dict[Tuple[str, object], Dict[int, None]] = {}
        self._by_type: Dict[str, Dict[int, None]] = {}
        self._by_subject: Dict[object, Dict[int, None]] = {}
        self._by_source: Dict[str, Dict[int, None]] = {}
        self._residual: Dict[int, None] = {}
        #: id -> (bucket dict, key) for O(1) removal; key is None for residual
        self._bucket_of: Dict[int, Tuple[Dict, object]] = {}
        #: filter canonical key -> FilterConstraints (analysis is pure)
        self._constraints_cache: Dict[str, FilterConstraints] = {}

    def analyse(self, event_filter: EventFilter) -> FilterConstraints:
        """Memoised :func:`analyse_filter`, keyed on the canonical form.

        Spec-identical filters (whatever their construction order) share
        one analysis; :class:`FilterConstraints` is frozen, so sharing the
        instance is safe.
        """
        key = event_filter.canonical_key()
        constraints = self._constraints_cache.get(key)
        if constraints is None:
            if len(self._constraints_cache) >= self.CONSTRAINTS_CACHE_CAP:
                self._constraints_cache.clear()
            constraints = analyse_filter(event_filter)
            self._constraints_cache[key] = constraints
        return constraints

    def __len__(self) -> int:
        return len(self._bucket_of)

    @property
    def residual_size(self) -> int:
        """How many entries every single dispatch must still scan."""
        return len(self._residual)

    @property
    def indexed_size(self) -> int:
        return len(self._bucket_of) - len(self._residual)

    def add(self, entry_id: int, event_filter: EventFilter) -> FilterConstraints:
        """File ``entry_id`` in the most selective bucket its filter allows."""
        if entry_id in self._bucket_of:
            self.remove(entry_id)
        constraints = self.analyse(event_filter)
        if constraints.type_name is not None and constraints.has_subject:
            store = self._by_type_subject
            key: object = (constraints.type_name, constraints.subject)
        elif constraints.type_name is not None:
            store, key = self._by_type, constraints.type_name
        elif constraints.has_subject:
            store, key = self._by_subject, constraints.subject
        elif constraints.source_hex is not None:
            store, key = self._by_source, constraints.source_hex
        else:
            self._residual[entry_id] = None
            self._bucket_of[entry_id] = (self._residual, None)
            return constraints
        bucket = store.setdefault(key, {})
        bucket[entry_id] = None
        self._bucket_of[entry_id] = (store, key)
        return constraints

    def remove(self, entry_id: int) -> bool:
        located = self._bucket_of.pop(entry_id, None)
        if located is None:
            return False
        store, key = located
        if key is None:
            store.pop(entry_id, None)
            return True
        bucket = store.get(key)
        if bucket is not None:
            bucket.pop(entry_id, None)
            if not bucket:
                del store[key]  # keep empty buckets from accumulating
        return True

    def candidates(self, event: ContextEvent) -> Tuple[List[int], int, int]:
        """Ids whose filters *may* match ``event``, in naive-scan order.

        Returns ``(ids, indexed_hits, residual_scanned)`` so the caller can
        feed the ``mediator.index.*`` counters without recomputing.
        """
        ids: List[int] = []
        subject_ok = _hashable(event.subject)
        if subject_ok:
            bucket = self._by_type_subject.get((event.type_name, event.subject))
            if bucket:
                ids.extend(bucket)
        bucket = self._by_type.get(event.type_name)
        if bucket:
            ids.extend(bucket)
        if subject_ok:
            bucket = self._by_subject.get(event.subject)
            if bucket:
                ids.extend(bucket)
        bucket = self._by_source.get(event.source.hex)
        if bucket:
            ids.extend(bucket)
        indexed_hits = len(ids)
        residual = len(self._residual)
        if residual:
            ids.extend(self._residual)
        ids.sort()
        return ids, indexed_hits, residual

"""The Event Mediator — per-range pub/sub hub.

Section 3.1: the Event Mediator "manages the establishment, maintenance and
removal of event subscriptions between Context Entities and Context Aware
Applications". CEs publish typed events to their range's mediator; the
mediator evaluates subscription filters and forwards matching events.

Protocol verbs (all message-based, so remote Context Servers can drive a
mediator exactly like local components do):

``publish``            {"event": <wire event>}
``subscribe``          {"subscriber", "filter", "one_time", "owner"} -> ``subscribe-ack``
``unsubscribe``        {"sub_id"} -> ``unsubscribe-ack``
``unsubscribe-owner``  {"owner"} -> ``unsubscribe-owner-ack``
``bridge-add``         {"peer", "filter"} -> ``bridge-ack``
``bridge-remove``      {"bridge_id"} -> ``bridge-ack``
``resync``             {"sub_id"} -> ``resync-ack`` (reliable mode)

Reliable mode (``reliable=True``): every delivery carries a
per-subscription sequence number and is sent as an acknowledged request —
the subscriber replies ``event-ack``, unanswered deliveries are
retransmitted with backoff up to a bounded budget (transport-level dedup
keeps observable delivery exactly-once; see
:class:`repro.net.rpc.RequestManager`). Subscribers that still find a hole
in the sequence (the budget ran dry) send ``resync``: the mediator replays
the retained events matching that subscription under fresh sequence
numbers and answers with the baseline seq to fast-forward past. The
default stays unreliable fire-and-forget — identical wire behaviour to the
seed — and the Context Server opts its range mediator in.

Bridges republish matching events to a peer mediator in another range; a
``bridged`` marker stops an event from being re-bridged, so two mediators
bridging each other do not loop.

Dispatch is driven by a :class:`~repro.events.dispatch_index.DispatchIndex`:
subscriptions and bridges whose filters carry exact type/subject/source
constraints live in dict buckets, everything else in a small residual list,
so a publish costs O(matching + residual) instead of O(all subscriptions).
``indexed=False`` keeps the original linear scan alive for benchmarking and
for the equivalence property suite; both paths must deliver identical
(subscription, event) sequences.

``engine`` selects among three dispatch engines: ``"classic"`` (the naive
linear scan, == ``indexed=False``), ``"indexed"`` (the dispatch index,
the default) and ``"opgraph"`` — subscriptions compile into a shared
incremental operator DAG (:mod:`repro.query.opgraph`) where structurally
identical filters/queries share one node, so ten thousand look-alike
subscriptions cost one predicate evaluation per publish plus fan-out.
The opgraph engine additionally accepts continuous *queries* (windowed
aggregates, joins, qualitative selectors) through the ``query`` entry of
the subscribe payload; retained replay, one-time arbitration and
``reliable=True`` sequencing compose unchanged for plain filter
subscriptions, and delivery order stays entry-identical to the classic
scan (proven by ``tests/opgraph``).
"""

from __future__ import annotations

import logging
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.ids import GUID
from repro.net.message import Message
from repro.net.rpc import RequestManager
from repro.net.transport import Network, Process
from repro.events.event import ContextEvent
from repro.events.dispatch_index import DispatchIndex, analyse_filter
from repro.events.filters import EventFilter, filter_from_spec
from repro.events.subscription import Subscription
from repro.query.opgraph.compile import analyse_opspec, compile_query
from repro.query.opgraph.engine import OperatorGraph
from repro.query.opgraph.specs import filter_op

logger = logging.getLogger(__name__)

#: default bound on retained events per mediator; oldest-first eviction
DEFAULT_RETAINED_CAP = 4096

#: reliable-mode delivery defaults: first ack wait, retransmission budget
#: and backoff. Sized so the full retransmit window (~190 time units)
#: comfortably outlives any bounded loss episode the chaos experiments run.
DEFAULT_ACK_TIMEOUT = 6.0
DEFAULT_DELIVERY_RETRIES = 6
DELIVERY_BACKOFF = 1.5

#: recognised dispatch engines (see module docstring)
ENGINES = ("classic", "indexed", "opgraph")


@dataclass
class Bridge:
    """Forwarding rule to a peer mediator in another range."""

    bridge_id: int
    peer: GUID
    filter: EventFilter
    forwarded: int = 0


class EventMediator(Process):
    """Pub/sub hub for one range."""

    #: whether :meth:`_fan_out` stores published events in the retained
    #: store. The sharded router (:mod:`repro.events.sharding`) turns this
    #: off — retention is owned by the shard that owns the event's key, and
    #: the router only re-dispatches events a shard forwarded to it.
    retain_events = True

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 range_name: str = "",
                 retained_cap: int = DEFAULT_RETAINED_CAP,
                 indexed: bool = True,
                 reliable: bool = False,
                 ack_timeout: float = DEFAULT_ACK_TIMEOUT,
                 delivery_retries: int = DEFAULT_DELIVERY_RETRIES,
                 engine: Optional[str] = None,
                 ledger=None):
        super().__init__(guid, host_id, network, name=f"mediator:{range_name or guid}")
        if retained_cap < 1:
            raise ValueError(f"retained_cap must be >= 1, got {retained_cap}")
        if engine is None:
            engine = "indexed" if indexed else "classic"
        elif engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}, expected one of {ENGINES}")
        self.range_name = range_name
        self.retained_cap = retained_cap
        self.engine = engine
        #: context-ledger chain this mediator appends to (a shard holds its
        #: own rank so chains never cross scheduler lanes); None disables
        self._ledger = ledger
        #: the opgraph engine keeps the index for bridges and retained
        #: replay; only "classic" opts into the naive linear scan
        self.indexed = engine != "classic"
        self.reliable = reliable
        self.requests = RequestManager(
            self, default_timeout=ack_timeout, max_retries=delivery_retries,
            backoff_factor=DELIVERY_BACKOFF)
        self._subscriptions: Dict[int, Subscription] = {}
        self._bridges: Dict[int, Bridge] = {}
        self._next_bridge_id = 1
        self._sub_index = DispatchIndex()
        self._bridge_index = DispatchIndex()
        #: reverse maps so teardown by owner/subscriber is O(own subs), not O(S)
        self._subs_by_owner: Dict[object, Dict[int, None]] = {}
        self._subs_by_subscriber: Dict[GUID, Dict[int, None]] = {}
        self.published = 0
        self.deliveries = 0
        self.retained_evictions = 0
        self.by_type: Counter = Counter()
        #: most recent event per (type, representation, subject) — served to
        #: late joiners so a new subscriber does not wait for the next change.
        #: Insertion-ordered; bounded by ``retained_cap`` with oldest-first
        #: (first-retained) eviction. Updates stay in place, preserving the
        #: replay order the naive scan produced.
        self._retained: Dict[tuple, ContextEvent] = {}
        #: type_name -> ordered set of retained keys, so replay for a
        #: type-constrained subscription scans only that type's entries
        self._retained_by_type: Dict[str, Dict[tuple, None]] = {}
        #: key -> seq of the event that *first* created the entry (kept
        #: across in-place updates). A global stamp of retention order, so
        #: retained stores split across shards can be merged back into the
        #: order a single mediator would have replayed them in.
        self._retained_first: Dict[tuple, int] = {}
        # hot-path counter handles, resolved once (registry lookup is not free)
        metrics = network.obs.metrics
        self._published_counter = metrics.counter(
            "mediator.events.published", "events published per range",
            labels=("range",))
        self._deliveries_counter = metrics.counter(
            "mediator.events.delivered",
            "matched events forwarded to subscribers",
            labels=("range",))
        self._index_hits_counter = metrics.counter(
            "mediator.index.hits",
            "dispatch candidates served from exact-match index buckets",
            labels=("range",))
        self._index_residual_counter = metrics.counter(
            "mediator.index.residual_scans",
            "dispatch candidates scanned from the non-indexable residual list",
            labels=("range",))
        self._retained_evicted_counter = metrics.counter(
            "mediator.retained.evicted",
            "retained events dropped by the oldest-first cap",
            labels=("range",))
        self._ack_exhausted_counter = metrics.counter(
            "mediator.seq.ack_exhausted",
            "reliable deliveries whose whole retransmission budget expired",
            labels=("range",))
        self._resync_replays_counter = metrics.counter(
            "mediator.seq.resync_replays",
            "retained events replayed to resync a gapped subscriber",
            labels=("range",))
        self.resyncs_served = 0
        self.deliveries_exhausted = 0
        self._opgraph: Optional[OperatorGraph] = None
        if engine == "opgraph":
            self._opgraph = OperatorGraph(
                self._graph_deliver, label=self.range_name or "-",
                nodes_gauge=metrics.gauge(
                    "mediator.opgraph.nodes",
                    "live deduplicated operator-graph nodes",
                    labels=("range",)),
                reuse_counter=metrics.counter(
                    "mediator.opgraph.reuse_hits",
                    "operator materialisations served by an existing node",
                    labels=("range",)),
                evals_counter=metrics.counter(
                    "mediator.opgraph.evals",
                    "incremental operator evaluations on the publish path",
                    labels=("range",)),
                fanout_counter=metrics.counter(
                    "mediator.opgraph.fanout",
                    "operator-graph result deliveries fanned out to sinks",
                    labels=("range",)))

    # -- direct API (used by co-located Context Server and by tests) ---------

    def add_subscription(
        self,
        subscriber: GUID,
        event_filter: EventFilter,
        one_time: bool = False,
        owner: Optional[object] = None,
        replay_retained: bool = True,
        query: Optional[dict] = None,
    ) -> Subscription:
        """Establish a subscription; optionally replay the retained event.

        Replay gives a newly wired configuration its initial values (the
        paper's Figure-3 graph must produce a first path without waiting for
        Bob or John to move).

        ``query`` (opgraph engine only) attaches a continuous-query plan —
        windowed aggregates, joins, qualitative selectors — instead of the
        plain filter; query subscriptions receive derived results, so
        retained replay does not apply to them.
        """
        if query is not None and self._opgraph is None:
            raise ValueError("continuous queries require engine='opgraph'")
        subscription = Subscription(
            subscriber=subscriber,
            filter=event_filter,
            one_time=one_time,
            owner=owner,
            created_at=self.now,
            query=query,
        )
        self._subscriptions[subscription.sub_id] = subscription
        if self._ledger is not None:
            self._ledger.append(self.now, "subscribe", {
                "sub_id": subscription.sub_id,
                "subscriber": subscriber.hex,
                "filter": event_filter.to_spec(),
                "one_time": one_time,
                "owner": None if owner is None else str(owner),
                "query": query,
            })
        if self._opgraph is not None:
            plan = (compile_query(query) if query is not None
                    else filter_op(event_filter))
            self._opgraph.attach(subscription.sub_id, plan)
            constraints = analyse_opspec(plan)
        else:
            constraints = self._sub_index.add(subscription.sub_id, event_filter)
        if owner is not None:
            self._reverse_add(self._subs_by_owner, owner, subscription.sub_id)
        self._reverse_add(self._subs_by_subscriber, subscriber, subscription.sub_id)
        if replay_retained and query is None:
            self._replay_retained(subscription, constraints)
            if not subscription.active:
                self._drop_subscription(subscription)
        return subscription

    def _replay_retained(self, subscription: Subscription, constraints) -> None:
        """Deliver retained events matching a fresh subscription.

        A type-constrained filter only ever matches events of that type, so
        the per-type retained index bounds the scan; per-type insertion order
        equals the global insertion order restricted to that type, keeping
        replay order identical to the pre-index full scan.
        """
        if self.indexed and constraints.type_name is not None:
            keys = list(self._retained_by_type.get(constraints.type_name, ()))
            events = [self._retained[key] for key in keys if key in self._retained]
            self._index_hits_counter.inc(len(events), range=self.range_name or "-")
        else:
            events = list(self._retained.values())
            self._index_residual_counter.inc(len(events),
                                             range=self.range_name or "-")
        for event in events:
            if subscription.active and subscription.filter.matches(event):
                self._deliver(subscription, event)

    def remove_subscription(self, sub_id: int) -> bool:
        subscription = self._subscriptions.get(sub_id)
        if subscription is None:
            return False
        self._drop_subscription(subscription)
        return True

    def remove_subscriptions_of(self, owner: object) -> int:
        """Tear down every subscription established for ``owner``."""
        bucket = self._subs_by_owner.get(owner)
        if bucket is None:
            return 0
        doomed = [self._subscriptions[sub_id] for sub_id in list(bucket)]
        for subscription in doomed:
            self._drop_subscription(subscription)
        return len(doomed)

    def remove_subscriber(self, subscriber: GUID) -> int:
        """Drop all subscriptions delivering to ``subscriber`` (it departed)."""
        bucket = self._subs_by_subscriber.get(subscriber)
        if bucket is None:
            return 0
        doomed = [self._subscriptions[sub_id] for sub_id in list(bucket)]
        for subscription in doomed:
            self._drop_subscription(subscription)
        return len(doomed)

    def _drop_subscription(self, subscription: Subscription,
                           record: bool = True) -> None:
        """Remove one subscription from the store, index and reverse maps.

        ``record=False`` keeps the drop out of the ledger — shard
        migration releases a subscription on one shard only to adopt it
        on another, and the ledger must see the subscription as
        continuously alive through the move.
        """
        if record and self._ledger is not None:
            self._ledger.append(self.now, "unsubscribe",
                                {"sub_id": subscription.sub_id})
        self._subscriptions.pop(subscription.sub_id, None)
        self._sub_index.remove(subscription.sub_id)
        if self._opgraph is not None:
            self._opgraph.detach(subscription.sub_id)
        if subscription.owner is not None:
            self._reverse_remove(self._subs_by_owner, subscription.owner,
                                 subscription.sub_id)
        self._reverse_remove(self._subs_by_subscriber, subscription.subscriber,
                             subscription.sub_id)

    @staticmethod
    def _reverse_add(store: Dict[object, Dict[int, None]], key: object,
                     sub_id: int) -> None:
        try:
            store.setdefault(key, {})[sub_id] = None
        except TypeError:
            # unhashable owner: legal but unmappable; remove_subscriptions_of
            # then simply finds no bucket (such owners cannot be looked up
            # by equal-but-distinct keys anyway)
            pass

    @staticmethod
    def _reverse_remove(store: Dict[object, Dict[int, None]], key: object,
                        sub_id: int) -> None:
        try:
            bucket = store.get(key)
        except TypeError:
            return
        if bucket is None:
            return
        bucket.pop(sub_id, None)
        if not bucket:
            del store[key]

    def add_bridge(self, peer: GUID, event_filter: EventFilter) -> Bridge:
        bridge = Bridge(self._next_bridge_id, peer, event_filter)
        self._next_bridge_id += 1
        self._bridges[bridge.bridge_id] = bridge
        self._bridge_index.add(bridge.bridge_id, event_filter)
        return bridge

    def remove_bridge(self, bridge_id: int) -> bool:
        self._bridge_index.remove(bridge_id)
        return self._bridges.pop(bridge_id, None) is not None

    def publish(self, event: ContextEvent, bridged: bool = False) -> int:
        """Distribute ``event``; returns the number of local deliveries."""
        self.published += 1
        self.by_type[event.type_name] += 1
        self._published_counter.inc(range=self.range_name or "-")
        # span only when this publication is part of a traced operation
        # (query replay, bridged delivery...); background sensor chatter
        # stays span-free so it cannot flood the trace store
        with self.network.obs.tracer.span_if_active(
                "mediator.publish", range=self.range_name,
                type=event.type_name, bridged=bridged) as span:
            delivered = self._fan_out(event, bridged)
            if span is not None:
                span.set(delivered=delivered)
        return delivered

    def _fan_out(self, event: ContextEvent, bridged: bool) -> int:
        if self.retain_events:
            self._store_retained(event)
        if self._opgraph is not None:
            delivered = self._opgraph.publish(event)
            if not bridged:
                self._forward_bridges_indexed(event)
            return delivered
        if not self.indexed:
            return self._fan_out_naive(event, bridged)
        label = self.range_name or "-"
        sub_ids, hits, residual = self._sub_index.candidates(event)
        delivered = 0
        for sub_id in sub_ids:
            subscription = self._subscriptions.get(sub_id)
            if subscription is None or not subscription.active:
                continue
            if subscription.filter.matches(event):
                self._deliver(subscription, event)
                delivered += 1
                if not subscription.active:
                    self._drop_subscription(subscription)
        if not bridged:
            bridge_ids, bridge_hits, bridge_residual = \
                self._bridge_index.candidates(event)
            hits += bridge_hits
            residual += bridge_residual
            for bridge_id in bridge_ids:
                bridge = self._bridges.get(bridge_id)
                if bridge is not None and bridge.filter.matches(event):
                    self._forward(bridge, event)
        if hits:
            self._index_hits_counter.inc(hits, range=label)
        if residual:
            self._index_residual_counter.inc(residual, range=label)
        return delivered

    def _forward_bridges_indexed(self, event: ContextEvent) -> None:
        """Bridge forwarding through the bridge index (opgraph path)."""
        bridge_ids, hits, residual = self._bridge_index.candidates(event)
        for bridge_id in bridge_ids:
            bridge = self._bridges.get(bridge_id)
            if bridge is not None and bridge.filter.matches(event):
                self._forward(bridge, event)
        label = self.range_name or "-"
        if hits:
            self._index_hits_counter.inc(hits, range=label)
        if residual:
            self._index_residual_counter.inc(residual, range=label)

    def _graph_deliver(self, sub_id: int, event: ContextEvent) -> None:
        """Operator-graph sink callback: one result for one subscription."""
        subscription = self._subscriptions.get(sub_id)
        if subscription is None or not subscription.active:
            return
        self._deliver(subscription, event)
        if not subscription.active:  # one-time: consumed by this delivery
            self._drop_subscription(subscription)

    def _fan_out_naive(self, event: ContextEvent, bridged: bool) -> int:
        """The pre-index linear scan; the benchmark/property baseline."""
        delivered = 0
        for subscription in list(self._subscriptions.values()):
            if not subscription.active:
                continue
            if subscription.filter.matches(event):
                self._deliver(subscription, event)
                delivered += 1
                if not subscription.active:
                    self._drop_subscription(subscription)
        if not bridged:
            for bridge in list(self._bridges.values()):
                if bridge.filter.matches(event):
                    self._forward(bridge, event)
        return delivered

    def _forward(self, bridge: Bridge, event: ContextEvent) -> None:
        bridge.forwarded += 1
        payload = {"event": event.to_wire(), "bridged": True}
        if self.reliable:
            # inter-range forwarding rides the same ack/retry machinery;
            # the peer's publish-ack resolves the request
            self.requests.request(bridge.peer, "publish", payload)
        else:
            self.send(bridge.peer, "publish", payload)

    def _store_retained(self, event: ContextEvent) -> None:
        key = (event.type_name, event.representation, event.subject)
        if key not in self._retained and len(self._retained) >= self.retained_cap:
            oldest_key = next(iter(self._retained))
            del self._retained[oldest_key]
            self._retained_first.pop(oldest_key, None)
            by_type = self._retained_by_type.get(oldest_key[0])
            if by_type is not None:
                by_type.pop(oldest_key, None)
                if not by_type:
                    del self._retained_by_type[oldest_key[0]]
            self.retained_evictions += 1
            self._retained_evicted_counter.inc(range=self.range_name or "-")
            if self._ledger is not None:
                self._ledger.append(self.now, "retain-evict",
                                    {"key": list(oldest_key)})
        self._retained[key] = event
        self._retained_by_type.setdefault(event.type_name, {})[key] = None
        self._retained_first.setdefault(key, event.seq)
        if self._ledger is not None:
            self._ledger.append(self.now, "retain", {
                "key": list(key),
                "first_seq": self._retained_first[key],
                "event": event.to_wire(),
            })

    def _deliver(self, subscription: Subscription, event: ContextEvent) -> None:
        subscription.record_delivery()
        self.deliveries += 1
        self._deliveries_counter.inc(range=self.range_name or "-")
        if self._ledger is not None:
            self._ledger.append(self.now, "delivery", {
                "sub_id": subscription.sub_id,
                "event_seq": event.seq,
                "type": event.type_name,
                "subject": event.subject,
            })
        with self.network.obs.tracer.span_if_active(
                "mediator.deliver", range=self.range_name,
                type=event.type_name, sub_id=subscription.sub_id):
            if not self.reliable:
                self.send(subscription.subscriber, "event",
                          {"event": event.to_wire(),
                           "sub_id": subscription.sub_id})
                return
            seq = subscription.next_seq()
            self.requests.request(
                subscription.subscriber, "event",
                {"event": event.to_wire(), "sub_id": subscription.sub_id,
                 "seq": seq},
                on_timeout=lambda: self._delivery_exhausted(subscription, seq))

    def _delivery_exhausted(self, subscription: Subscription, seq: int) -> None:
        """The retransmission budget for one delivery ran dry.

        Nothing more to do mediator-side: the subscriber sees the hole in
        the sequence and drives recovery through ``resync``.
        """
        self.deliveries_exhausted += 1
        self._ack_exhausted_counter.inc(range=self.range_name or "-")
        logger.info("%s: delivery seq=%d to %s unacked after retries",
                    self.name, seq, subscription.subscriber)

    # -- message protocol -----------------------------------------------------

    def on_message(self, message: Message) -> None:
        if self.requests.dispatch_reply(message):
            return  # an event-ack resolved a reliable delivery
        handler = getattr(self, f"_handle_{message.kind.replace('-', '_')}", None)
        if handler is None:
            logger.debug("%s ignoring %s", self.name, message)
            return
        handler(message)

    def _handle_publish(self, message: Message) -> None:
        event = ContextEvent.from_wire(message.payload["event"])
        delivered = self.publish(event, bridged=bool(message.payload.get("bridged")))
        # publishers that request-with-retries consume this ack; open-loop
        # fire-and-forget publishers opt out with ``"ack": False`` to halve
        # their message footprint
        if message.payload.get("ack", True):
            self.reply(message, "publish-ack", {"delivered": delivered})

    def _handle_subscribe(self, message: Message) -> None:
        event_filter = filter_from_spec(message.payload["filter"])
        subscriber = GUID.from_hex(message.payload["subscriber"])
        subscription = self.add_subscription(
            subscriber=subscriber,
            event_filter=event_filter,
            one_time=bool(message.payload.get("one_time")),
            owner=message.payload.get("owner"),
            replay_retained=bool(message.payload.get("replay", True)),
            query=message.payload.get("query"),
        )
        self.reply(message, "subscribe-ack", {"sub_id": subscription.sub_id})

    def _handle_unsubscribe(self, message: Message) -> None:
        removed = self.remove_subscription(message.payload["sub_id"])
        self.reply(message, "unsubscribe-ack", {"removed": removed})

    def _handle_unsubscribe_owner(self, message: Message) -> None:
        count = self.remove_subscriptions_of(message.payload["owner"])
        self.reply(message, "unsubscribe-owner-ack", {"removed": count})

    def _handle_bridge_add(self, message: Message) -> None:
        peer = GUID.from_hex(message.payload["peer"])
        bridge = self.add_bridge(peer, filter_from_spec(message.payload["filter"]))
        self.reply(message, "bridge-ack", {"bridge_id": bridge.bridge_id})

    def _handle_bridge_remove(self, message: Message) -> None:
        removed = self.remove_bridge(message.payload["bridge_id"])
        self.reply(message, "bridge-ack", {"removed": removed})

    def _handle_resync(self, message: Message) -> None:
        """A subscriber found an unrecoverable hole in its sequence.

        Replay the retained events its filter matches under *fresh* sequence
        numbers and answer with the pre-replay baseline: the subscriber
        fast-forwards past the hole and then consumes the replay in order,
        restoring the current retained state without duplicating anything it
        already saw (stale seqs are dropped by its reassembler).
        """
        sub_id = message.payload.get("sub_id")
        subscription = self._subscriptions.get(sub_id)
        if subscription is None or not subscription.active:
            self.reply(message, "resync-ack", {"ok": False, "sub_id": sub_id})
            return
        if subscription.query is not None:
            # query subscriptions receive derived results; replaying raw
            # retained events would mis-deliver, so resync cannot help them
            self.reply(message, "resync-ack", {"ok": False, "sub_id": sub_id})
            return
        baseline = subscription.seq
        self.resyncs_served += 1
        before = self.deliveries
        self._replay_retained(subscription,
                              analyse_filter(subscription.filter))
        self._resync_replays_counter.inc(self.deliveries - before,
                                         range=self.range_name or "-")
        if not subscription.active:  # one-time sub consumed by the replay
            self._drop_subscription(subscription)
        self.reply(message, "resync-ack",
                   {"ok": True, "sub_id": sub_id, "seq": baseline})

    # -- introspection --------------------------------------------------------

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    @property
    def retained_count(self) -> int:
        return len(self._retained)

    def index_stats(self) -> Dict[str, int]:
        """Sizes the smoke gate and benchmarks assert on."""
        return {
            "indexed_subscriptions": self._sub_index.indexed_size,
            "residual_subscriptions": self._sub_index.residual_size,
            "indexed_bridges": self._bridge_index.indexed_size,
            "residual_bridges": self._bridge_index.residual_size,
            "retained": len(self._retained),
            "retained_evictions": self.retained_evictions,
        }

    def opgraph_stats(self) -> Dict[str, float]:
        """Operator-graph node/reuse/eval counters (opgraph engine only)."""
        if self._opgraph is None:
            return {}
        return self._opgraph.stats()

    def subscriptions_for(self, subscriber: GUID) -> List[Subscription]:
        bucket = self._subs_by_subscriber.get(subscriber, {})
        return [self._subscriptions[sub_id] for sub_id in bucket]

    def subscriptions(self) -> List[Subscription]:
        """Every live subscription, in insertion order."""
        return list(self._subscriptions.values())

    def all_subscriptions(self) -> List[Subscription]:
        """All subscriptions this mediator answers for (incl. shards)."""
        return self.subscriptions()

    def all_retained_entries(self) -> List[tuple]:
        """All ``(first_seq, key, event)`` entries (merged across shards)."""
        return self.retained_entries()

    def ledgers(self) -> List:
        """Every context-ledger chain this mediator family appends to."""
        return [self._ledger] if self._ledger is not None else []

    def subscription_ids_of(self, owner: object) -> List[int]:
        """Sub ids established for ``owner`` (empty for unhashable owners)."""
        try:
            bucket = self._subs_by_owner.get(owner)
        except TypeError:
            return []
        return list(bucket) if bucket else []

    def retained_event(self, type_name: str, representation: str, subject: object) -> Optional[ContextEvent]:
        return self._retained.get((type_name, representation, subject))

    # -- shard migration surface ----------------------------------------------
    #
    # The sharded mediator (:mod:`repro.events.sharding`) moves live state
    # between worker shards on rebalance. Adopt/release transfer existing
    # objects wholesale — a released subscription keeps its sub_id, seq and
    # delivery count, so migration can neither lose nor duplicate it.

    def adopt_subscription(self, subscription: Subscription) -> None:
        """Install an existing subscription (sub_id preserved, no replay)."""
        self._subscriptions[subscription.sub_id] = subscription
        if self._opgraph is not None:
            plan = (compile_query(subscription.query)
                    if subscription.query is not None
                    else filter_op(subscription.filter))
            self._opgraph.attach(subscription.sub_id, plan)
        else:
            self._sub_index.add(subscription.sub_id, subscription.filter)
        if subscription.owner is not None:
            self._reverse_add(self._subs_by_owner, subscription.owner,
                              subscription.sub_id)
        self._reverse_add(self._subs_by_subscriber, subscription.subscriber,
                          subscription.sub_id)

    def release_subscription(self, sub_id: int) -> Optional[Subscription]:
        """Remove a subscription *without* deactivating it (for migration)."""
        subscription = self._subscriptions.get(sub_id)
        if subscription is None:
            return None
        # record=False: the adopting shard keeps the subscription alive, so
        # the ledger must not see a migration as an unsubscribe
        self._drop_subscription(subscription, record=False)
        return subscription

    def opgraph_export_for(self, sub_id: int) -> Dict[str, dict]:
        """Stateful operator-node blobs backing one subscription's plan.

        Must be called *before* :meth:`release_subscription` — releasing the
        last subscription of a plan reclaims its nodes and their state.
        """
        if self._opgraph is None:
            return {}
        return self._opgraph.export_state_for(sub_id)

    def opgraph_import(self, states: Dict[str, dict]) -> None:
        """First-wins install of migrated operator state (after adopt)."""
        if self._opgraph is not None and states:
            self._opgraph.import_state(states)

    def retained_entries(self, type_name: Optional[str] = None) -> List[tuple]:
        """``(first_retained_seq, key, event)`` tuples, local store order."""
        if type_name is not None:
            keys = [key for key in self._retained_by_type.get(type_name, ())
                    if key in self._retained]
        else:
            keys = list(self._retained)
        return [(self._retained_first.get(key, 0), key, self._retained[key])
                for key in keys]

    def adopt_retained(self, key: tuple, event: ContextEvent,
                       first_seq: int) -> None:
        """Install a migrated retained entry, preserving its first-seq stamp.

        The cap is not enforced here — a migration batch may transiently
        overfill the store; the next :meth:`_store_retained` evicts back
        down oldest-first.
        """
        self._retained[key] = event
        self._retained_by_type.setdefault(key[0], {})[key] = None
        self._retained_first[key] = first_seq

    def release_retained(self, key: tuple) -> Optional[tuple]:
        """Drop one retained entry; returns ``(first_seq, event)`` or None."""
        event = self._retained.pop(key, None)
        if event is None:
            return None
        by_type = self._retained_by_type.get(key[0])
        if by_type is not None:
            by_type.pop(key, None)
            if not by_type:
                del self._retained_by_type[key[0]]
        return (self._retained_first.pop(key, 0), event)

"""The Event Mediator — per-range pub/sub hub.

Section 3.1: the Event Mediator "manages the establishment, maintenance and
removal of event subscriptions between Context Entities and Context Aware
Applications". CEs publish typed events to their range's mediator; the
mediator evaluates subscription filters and forwards matching events.

Protocol verbs (all message-based, so remote Context Servers can drive a
mediator exactly like local components do):

``publish``            {"event": <wire event>}
``subscribe``          {"subscriber", "filter", "one_time", "owner"} -> ``subscribe-ack``
``unsubscribe``        {"sub_id"} -> ``unsubscribe-ack``
``unsubscribe-owner``  {"owner"} -> ``unsubscribe-owner-ack``
``bridge-add``         {"peer", "filter"} -> ``bridge-ack``
``bridge-remove``      {"bridge_id"} -> ``bridge-ack``

Bridges republish matching events to a peer mediator in another range; a
``bridged`` marker stops an event from being re-bridged, so two mediators
bridging each other do not loop.
"""

from __future__ import annotations

import logging
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.ids import GUID
from repro.net.message import Message
from repro.net.transport import Network, Process
from repro.events.event import ContextEvent
from repro.events.filters import EventFilter, filter_from_spec
from repro.events.subscription import Subscription

logger = logging.getLogger(__name__)


@dataclass
class Bridge:
    """Forwarding rule to a peer mediator in another range."""

    bridge_id: int
    peer: GUID
    filter: EventFilter
    forwarded: int = 0


class EventMediator(Process):
    """Pub/sub hub for one range."""

    def __init__(self, guid: GUID, host_id: str, network: Network, range_name: str = ""):
        super().__init__(guid, host_id, network, name=f"mediator:{range_name or guid}")
        self.range_name = range_name
        self._subscriptions: Dict[int, Subscription] = {}
        self._bridges: Dict[int, Bridge] = {}
        self._next_bridge_id = 1
        self.published = 0
        self.deliveries = 0
        self.by_type: Counter = Counter()
        #: most recent event per (type, representation, subject) — served to
        #: late joiners so a new subscriber does not wait for the next change
        self._retained: Dict[tuple, ContextEvent] = {}

    # -- direct API (used by co-located Context Server and by tests) ---------

    def add_subscription(
        self,
        subscriber: GUID,
        event_filter: EventFilter,
        one_time: bool = False,
        owner: Optional[object] = None,
        replay_retained: bool = True,
    ) -> Subscription:
        """Establish a subscription; optionally replay the retained event.

        Replay gives a newly wired configuration its initial values (the
        paper's Figure-3 graph must produce a first path without waiting for
        Bob or John to move).
        """
        subscription = Subscription(
            subscriber=subscriber,
            filter=event_filter,
            one_time=one_time,
            owner=owner,
            created_at=self.now,
        )
        self._subscriptions[subscription.sub_id] = subscription
        if replay_retained:
            for event in list(self._retained.values()):
                if subscription.active and event_filter.matches(event):
                    self._deliver(subscription, event)
            if not subscription.active:
                self._subscriptions.pop(subscription.sub_id, None)
        return subscription

    def remove_subscription(self, sub_id: int) -> bool:
        return self._subscriptions.pop(sub_id, None) is not None

    def remove_subscriptions_of(self, owner: object) -> int:
        """Tear down every subscription established for ``owner``."""
        doomed = [sid for sid, sub in self._subscriptions.items() if sub.owner == owner]
        for sub_id in doomed:
            del self._subscriptions[sub_id]
        return len(doomed)

    def remove_subscriber(self, subscriber: GUID) -> int:
        """Drop all subscriptions delivering to ``subscriber`` (it departed)."""
        doomed = [sid for sid, sub in self._subscriptions.items() if sub.subscriber == subscriber]
        for sub_id in doomed:
            del self._subscriptions[sub_id]
        return len(doomed)

    def add_bridge(self, peer: GUID, event_filter: EventFilter) -> Bridge:
        bridge = Bridge(self._next_bridge_id, peer, event_filter)
        self._next_bridge_id += 1
        self._bridges[bridge.bridge_id] = bridge
        return bridge

    def remove_bridge(self, bridge_id: int) -> bool:
        return self._bridges.pop(bridge_id, None) is not None

    def publish(self, event: ContextEvent, bridged: bool = False) -> int:
        """Distribute ``event``; returns the number of local deliveries."""
        self.published += 1
        self.by_type[event.type_name] += 1
        self.network.obs.metrics.counter(
            "mediator.published", "events published per range",
            labels=("range",)).inc(range=self.range_name or "-")
        # span only when this publication is part of a traced operation
        # (query replay, bridged delivery...); background sensor chatter
        # stays span-free so it cannot flood the trace store
        with self.network.obs.tracer.span_if_active(
                "mediator.publish", range=self.range_name,
                type=event.type_name, bridged=bridged) as span:
            delivered = self._fan_out(event, bridged)
            if span is not None:
                span.set(delivered=delivered)
        return delivered

    def _fan_out(self, event: ContextEvent, bridged: bool) -> int:
        self._retained[(event.type_name, event.representation, event.subject)] = event
        delivered = 0
        for subscription in list(self._subscriptions.values()):
            if not subscription.active:
                continue
            if subscription.filter.matches(event):
                self._deliver(subscription, event)
                delivered += 1
                if not subscription.active:
                    self._subscriptions.pop(subscription.sub_id, None)
        if not bridged:
            for bridge in self._bridges.values():
                if bridge.filter.matches(event):
                    bridge.forwarded += 1
                    self.send(bridge.peer, "publish",
                              {"event": event.to_wire(), "bridged": True})
        return delivered

    def _deliver(self, subscription: Subscription, event: ContextEvent) -> None:
        subscription.record_delivery()
        self.deliveries += 1
        self.network.obs.metrics.counter(
            "mediator.deliveries", "matched events forwarded to subscribers",
            labels=("range",)).inc(range=self.range_name or "-")
        with self.network.obs.tracer.span_if_active(
                "mediator.deliver", range=self.range_name,
                type=event.type_name, sub_id=subscription.sub_id):
            self.send(subscription.subscriber, "event",
                      {"event": event.to_wire(), "sub_id": subscription.sub_id})

    # -- message protocol -----------------------------------------------------

    def on_message(self, message: Message) -> None:
        handler = getattr(self, f"_handle_{message.kind.replace('-', '_')}", None)
        if handler is None:
            logger.debug("%s ignoring %s", self.name, message)
            return
        handler(message)

    def _handle_publish(self, message: Message) -> None:
        event = ContextEvent.from_wire(message.payload["event"])
        self.publish(event, bridged=bool(message.payload.get("bridged")))

    def _handle_subscribe(self, message: Message) -> None:
        event_filter = filter_from_spec(message.payload["filter"])
        subscriber = GUID.from_hex(message.payload["subscriber"])
        subscription = self.add_subscription(
            subscriber=subscriber,
            event_filter=event_filter,
            one_time=bool(message.payload.get("one_time")),
            owner=message.payload.get("owner"),
            replay_retained=bool(message.payload.get("replay", True)),
        )
        self.reply(message, "subscribe-ack", {"sub_id": subscription.sub_id})

    def _handle_unsubscribe(self, message: Message) -> None:
        removed = self.remove_subscription(message.payload["sub_id"])
        self.reply(message, "unsubscribe-ack", {"removed": removed})

    def _handle_unsubscribe_owner(self, message: Message) -> None:
        count = self.remove_subscriptions_of(message.payload["owner"])
        self.reply(message, "unsubscribe-owner-ack", {"removed": count})

    def _handle_bridge_add(self, message: Message) -> None:
        peer = GUID.from_hex(message.payload["peer"])
        bridge = self.add_bridge(peer, filter_from_spec(message.payload["filter"]))
        self.reply(message, "bridge-ack", {"bridge_id": bridge.bridge_id})

    def _handle_bridge_remove(self, message: Message) -> None:
        removed = self.remove_bridge(message.payload["bridge_id"])
        self.reply(message, "bridge-ack", {"removed": removed})

    # -- introspection --------------------------------------------------------

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def subscriptions_for(self, subscriber: GUID) -> List[Subscription]:
        return [sub for sub in self._subscriptions.values() if sub.subscriber == subscriber]

    def retained_event(self, type_name: str, representation: str, subject: object) -> Optional[ContextEvent]:
        return self._retained.get((type_name, representation, subject))

"""A small filter algebra over context events.

Subscriptions (Section 3.1's Event Mediator) carry a filter deciding which
published events reach the subscriber. Filters compose with And/Or/Not and
serialise to plain dictionaries so they can travel inside messages — a
subscription established by a remote Context Server must ship its filter to
the mediator that evaluates it.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import SCIError
from repro.events.event import ContextEvent


class FilterError(SCIError):
    """A filter specification is malformed."""


class EventFilter:
    """Base class: a predicate over :class:`ContextEvent`."""

    def matches(self, event: ContextEvent) -> bool:
        raise NotImplementedError

    # composition sugar
    def __and__(self, other: "EventFilter") -> "AndFilter":
        return AndFilter([self, other])

    def __or__(self, other: "EventFilter") -> "OrFilter":
        return OrFilter([self, other])

    def __invert__(self) -> "NotFilter":
        return NotFilter(self)

    def to_spec(self) -> Dict[str, Any]:
        raise NotImplementedError


class MatchAll(EventFilter):
    """Matches every event (the default subscription filter)."""

    def matches(self, event: ContextEvent) -> bool:
        return True

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "all"}


class TypeFilter(EventFilter):
    """Match events of one semantic type (optionally one representation).

    Subtype awareness lives in the resolver, not here: by the time a
    subscription exists, the concrete event type is known.
    """

    def __init__(self, type_name: str, representation: Optional[str] = None):
        self.type_name = type_name
        self.representation = representation

    def matches(self, event: ContextEvent) -> bool:
        if event.type_name != self.type_name:
            return False
        if self.representation is not None and event.representation != self.representation:
            return False
        return True

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "type", "type": self.type_name, "representation": self.representation}


class SubjectFilter(EventFilter):
    """Match events about one subject (e.g. location *of Bob*)."""

    def __init__(self, subject: object):
        self.subject = subject

    def matches(self, event: ContextEvent) -> bool:
        return event.subject == self.subject

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "subject", "subject": self.subject}


class SourceFilter(EventFilter):
    """Match events produced by one Context Entity.

    This is what configuration edges compile to: a downstream CE subscribes
    to exactly its upstream providers (Figure 3's subscription graph).
    """

    def __init__(self, source_hex: str):
        self.source_hex = source_hex

    def matches(self, event: ContextEvent) -> bool:
        return event.source.hex == self.source_hex

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "source", "source": self.source_hex}


_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "contains": lambda a, b: b in a,
}


class AttributeFilter(EventFilter):
    """Compare an event attribute (or the value itself) against a constant.

    ``key`` addresses ``event.attributes[key]``; the special key ``"value"``
    addresses ``event.value``. Missing keys never match.
    """

    def __init__(self, key: str, op: str, constant: Any):
        if op not in _OPERATORS:
            raise FilterError(f"unknown operator: {op!r}")
        self.key = key
        self.op = op
        self.constant = constant

    def matches(self, event: ContextEvent) -> bool:
        if self.key == "value":
            actual = event.value
        elif self.key in event.attributes:
            actual = event.attributes[self.key]
        else:
            return False
        try:
            return _OPERATORS[self.op](actual, self.constant)
        except TypeError:
            return False

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "attr", "key": self.key, "cmp": self.op, "constant": self.constant}


class AndFilter(EventFilter):
    def __init__(self, parts: List[EventFilter]):
        if not parts:
            raise FilterError("empty AND filter")
        self.parts = list(parts)

    def matches(self, event: ContextEvent) -> bool:
        return all(part.matches(event) for part in self.parts)

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "and", "parts": [part.to_spec() for part in self.parts]}


class OrFilter(EventFilter):
    def __init__(self, parts: List[EventFilter]):
        if not parts:
            raise FilterError("empty OR filter")
        self.parts = list(parts)

    def matches(self, event: ContextEvent) -> bool:
        return any(part.matches(event) for part in self.parts)

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "or", "parts": [part.to_spec() for part in self.parts]}


class NotFilter(EventFilter):
    def __init__(self, inner: EventFilter):
        self.inner = inner

    def matches(self, event: ContextEvent) -> bool:
        return not self.inner.matches(event)

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "not", "inner": self.inner.to_spec()}


def filter_from_spec(spec: Dict[str, Any]) -> EventFilter:
    """Rebuild a filter shipped inside a message payload."""
    try:
        op = spec["op"]
    except (KeyError, TypeError):
        raise FilterError(f"malformed filter spec: {spec!r}") from None
    if op == "all":
        return MatchAll()
    if op == "type":
        return TypeFilter(spec["type"], spec.get("representation"))
    if op == "subject":
        return SubjectFilter(spec["subject"])
    if op == "source":
        return SourceFilter(spec["source"])
    if op == "attr":
        return AttributeFilter(spec["key"], spec["cmp"], spec["constant"])
    if op == "and":
        return AndFilter([filter_from_spec(part) for part in spec["parts"]])
    if op == "or":
        return OrFilter([filter_from_spec(part) for part in spec["parts"]])
    if op == "not":
        return NotFilter(filter_from_spec(spec["inner"]))
    raise FilterError(f"unknown filter op: {op!r}")

"""A small filter algebra over context events.

Subscriptions (Section 3.1's Event Mediator) carry a filter deciding which
published events reach the subscriber. Filters compose with And/Or/Not and
serialise to plain dictionaries so they can travel inside messages — a
subscription established by a remote Context Server must ship its filter to
the mediator that evaluates it.

Every filter also has a **canonical form** (:meth:`EventFilter.canonical_spec`
/ :meth:`EventFilter.canonical_key`): nested And-of-And and Or-of-Or trees
are flattened, children are sorted by their canonical key and exact
duplicates dropped, and single-child conjunctions/disjunctions collapse to
the child. Structural ``__eq__``/``__hash__`` compare canonical keys, so two
spec-identical filters built in different construction orders — e.g.
``And([type, subject])`` vs ``And([subject, type])`` — hash and compare
equal. The operator-graph compiler (:mod:`repro.query.opgraph`) dedups
shared subgraphs on these keys, and the dispatch index memoises its filter
analysis on them. Canonicalisation never changes ``matches`` semantics:
``to_spec()`` (the wire form) and the evaluation order of ``parts`` keep
construction order; only the canonical view is normalised (And/Or are
commutative, associative and idempotent over pure predicates).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import SCIError
from repro.events.event import ContextEvent


class FilterError(SCIError):
    """A filter specification is malformed."""


def spec_key(value: Any) -> str:
    """A deterministic, order-insensitive string key for a spec value.

    Dict keys are sorted, sequences keep their order, and scalars are
    type-tagged so ``1`` / ``1.0`` / ``"1"`` / ``True`` stay distinct.
    Non-JSON values (an exotic subject object) fall back to ``repr``,
    which is stable within a run — enough for structural dedup.
    """
    if isinstance(value, dict):
        inner = ",".join(f"{key}={spec_key(value[key])}"
                         for key in sorted(value))
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(spec_key(item) for item in value) + "]"
    if value is None or isinstance(value, bool):
        return repr(value)
    if isinstance(value, (int, float)):
        return f"n{type(value).__name__[0]}:{value!r}"
    if isinstance(value, str):
        return "s:" + value
    return f"{type(value).__name__}:{value!r}"


class EventFilter:
    """Base class: a predicate over :class:`ContextEvent`."""

    #: lazily cached canonical key (filters are immutable by convention)
    _canonical_key: Optional[str] = None

    def matches(self, event: ContextEvent) -> bool:
        raise NotImplementedError

    # composition sugar
    def __and__(self, other: "EventFilter") -> "AndFilter":
        return AndFilter([self, other])

    def __or__(self, other: "EventFilter") -> "OrFilter":
        return OrFilter([self, other])

    def __invert__(self) -> "NotFilter":
        return NotFilter(self)

    def to_spec(self) -> Dict[str, Any]:
        raise NotImplementedError

    # -- canonical form -------------------------------------------------------

    def canonical_spec(self) -> Dict[str, Any]:
        """The normalised spec: And/Or flattened, sorted, deduplicated.

        Leaf filters are already canonical — their spec is their canonical
        spec. Composite filters override this.
        """
        return self.to_spec()

    def canonical_key(self) -> str:
        """A structural hash key: equal iff the filters are spec-identical
        up to And/Or child order, nesting and duplication."""
        key = self._canonical_key
        if key is None:
            key = spec_key(self.canonical_spec())
            self._canonical_key = key
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventFilter):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(self.canonical_key())


class MatchAll(EventFilter):
    """Matches every event (the default subscription filter)."""

    def matches(self, event: ContextEvent) -> bool:
        return True

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "all"}


class TypeFilter(EventFilter):
    """Match events of one semantic type (optionally one representation).

    Subtype awareness lives in the resolver, not here: by the time a
    subscription exists, the concrete event type is known.
    """

    def __init__(self, type_name: str, representation: Optional[str] = None):
        self.type_name = type_name
        self.representation = representation

    def matches(self, event: ContextEvent) -> bool:
        if event.type_name != self.type_name:
            return False
        if self.representation is not None and event.representation != self.representation:
            return False
        return True

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "type", "type": self.type_name, "representation": self.representation}


class SubjectFilter(EventFilter):
    """Match events about one subject (e.g. location *of Bob*)."""

    def __init__(self, subject: object):
        self.subject = subject

    def matches(self, event: ContextEvent) -> bool:
        return event.subject == self.subject

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "subject", "subject": self.subject}


class SourceFilter(EventFilter):
    """Match events produced by one Context Entity.

    This is what configuration edges compile to: a downstream CE subscribes
    to exactly its upstream providers (Figure 3's subscription graph).
    """

    def __init__(self, source_hex: str):
        self.source_hex = source_hex

    def matches(self, event: ContextEvent) -> bool:
        return event.source.hex == self.source_hex

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "source", "source": self.source_hex}


_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "contains": lambda a, b: b in a,
}


class AttributeFilter(EventFilter):
    """Compare an event attribute (or the value itself) against a constant.

    ``key`` addresses ``event.attributes[key]``; the special key ``"value"``
    addresses ``event.value``. Missing keys never match.
    """

    def __init__(self, key: str, op: str, constant: Any):
        if op not in _OPERATORS:
            raise FilterError(f"unknown operator: {op!r}")
        self.key = key
        self.op = op
        self.constant = constant

    def matches(self, event: ContextEvent) -> bool:
        if self.key == "value":
            actual = event.value
        elif self.key in event.attributes:
            actual = event.attributes[self.key]
        else:
            return False
        try:
            return _OPERATORS[self.op](actual, self.constant)
        except TypeError:
            return False

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "attr", "key": self.key, "cmp": self.op, "constant": self.constant}


def _canonical_parts(composite: "EventFilter") -> List[Dict[str, Any]]:
    """Flatten same-op nesting, canonicalise children, sort and dedupe.

    ``And(And(a, b), c)`` and ``And(c, b, a)`` both normalise to the same
    sorted child list; duplicate children (idempotence) collapse to one.
    """
    specs: List[Dict[str, Any]] = []

    def flatten(node: EventFilter) -> None:
        if type(node) is type(composite):
            for part in node.parts:  # type: ignore[attr-defined]
                flatten(part)
        else:
            specs.append(node.canonical_spec())

    flatten(composite)
    unique = {spec_key(spec): spec for spec in specs}
    return [unique[key] for key in sorted(unique)]


class AndFilter(EventFilter):
    def __init__(self, parts: List[EventFilter]):
        if not parts:
            raise FilterError("empty AND filter")
        self.parts = list(parts)

    def matches(self, event: ContextEvent) -> bool:
        return all(part.matches(event) for part in self.parts)

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "and", "parts": [part.to_spec() for part in self.parts]}

    def canonical_spec(self) -> Dict[str, Any]:
        parts = _canonical_parts(self)
        if len(parts) == 1:
            return parts[0]
        return {"op": "and", "parts": parts}


class OrFilter(EventFilter):
    def __init__(self, parts: List[EventFilter]):
        if not parts:
            raise FilterError("empty OR filter")
        self.parts = list(parts)

    def matches(self, event: ContextEvent) -> bool:
        return any(part.matches(event) for part in self.parts)

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "or", "parts": [part.to_spec() for part in self.parts]}

    def canonical_spec(self) -> Dict[str, Any]:
        parts = _canonical_parts(self)
        if len(parts) == 1:
            return parts[0]
        return {"op": "or", "parts": parts}


class NotFilter(EventFilter):
    def __init__(self, inner: EventFilter):
        self.inner = inner

    def matches(self, event: ContextEvent) -> bool:
        return not self.inner.matches(event)

    def to_spec(self) -> Dict[str, Any]:
        return {"op": "not", "inner": self.inner.to_spec()}

    def canonical_spec(self) -> Dict[str, Any]:
        return {"op": "not", "inner": self.inner.canonical_spec()}


def filter_from_spec(spec: Dict[str, Any]) -> EventFilter:
    """Rebuild a filter shipped inside a message payload."""
    try:
        op = spec["op"]
    except (KeyError, TypeError):
        raise FilterError(f"malformed filter spec: {spec!r}") from None
    if op == "all":
        return MatchAll()
    if op == "type":
        return TypeFilter(spec["type"], spec.get("representation"))
    if op == "subject":
        return SubjectFilter(spec["subject"])
    if op == "source":
        return SourceFilter(spec["source"])
    if op == "attr":
        return AttributeFilter(spec["key"], spec["cmp"], spec["constant"])
    if op == "and":
        return AndFilter([filter_from_spec(part) for part in spec["parts"]])
    if op == "or":
        return OrFilter([filter_from_spec(part) for part in spec["parts"]])
    if op == "not":
        return NotFilter(filter_from_spec(spec["inner"]))
    raise FilterError(f"unknown filter op: {op!r}")

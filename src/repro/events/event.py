"""The typed context event — SCI's unit of contextual information.

Section 3.1: "A CE allows its entity to communicate by means of producing
and consuming typed events." An event carries a :class:`~repro.core.types.TypeSpec`
(what kind of information, in which representation, about which subject), the
value itself, provenance and freshness metadata.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.ids import GUID
from repro.core.types import TypeSpec

_event_seq = itertools.count(1)


@dataclass(frozen=True)
class ContextEvent:
    """One piece of typed contextual information.

    ``spec``
        The semantic type / representation / subject of the information
        ("location[symbolic] of bob").
    ``value``
        The representation-specific payload (a room name, a coordinate pair,
        a path, a printer status record, ...).
    ``source``
        GUID of the Context Entity that produced the event.
    ``timestamp``
        Simulated time of production; consumers derive freshness from it.
    ``attributes``
        Free-form quality/annotation attributes (accuracy, confidence, ...).
    """

    spec: TypeSpec
    value: Any
    source: GUID
    timestamp: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    seq: int = field(default_factory=lambda: next(_event_seq))

    @property
    def type_name(self) -> str:
        return self.spec.type_name

    @property
    def representation(self) -> str:
        return self.spec.representation

    @property
    def subject(self) -> Optional[object]:
        return self.spec.subject

    def age(self, now: float) -> float:
        """Freshness: how old this event is at simulated time ``now``."""
        return max(0.0, now - self.timestamp)

    def derive(
        self,
        spec: TypeSpec,
        value: Any,
        source: GUID,
        timestamp: float,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> "ContextEvent":
        """Build a downstream event that inherits this event's attributes.

        Derived events (objLocation from doorSensor, path from locations)
        keep upstream quality annotations unless explicitly overridden, so
        quality degradation is traceable through a configuration.
        """
        merged = dict(self.attributes)
        merged.update(attributes or {})
        return ContextEvent(spec=spec, value=value, source=source,
                            timestamp=timestamp, attributes=merged)

    def to_wire(self) -> Dict[str, Any]:
        """Flatten for inclusion in a message payload."""
        return {
            "type": self.spec.type_name,
            "representation": self.spec.representation,
            "subject": self.spec.subject,
            "quality": list(self.spec.quality),
            "value": self.value,
            "source": self.source.hex,
            "timestamp": self.timestamp,
            "attributes": dict(self.attributes),
            "seq": self.seq,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ContextEvent":
        spec = TypeSpec(
            type_name=data["type"],
            representation=data["representation"],
            subject=data["subject"],
            quality=tuple(tuple(item) for item in data.get("quality", ())),
        )
        return cls(
            spec=spec,
            value=data["value"],
            source=GUID.from_hex(data["source"]),
            timestamp=data["timestamp"],
            attributes=dict(data.get("attributes", {})),
            seq=data.get("seq", 0),
        )

    def __str__(self) -> str:
        return f"Event<{self.spec} = {self.value!r} @t={self.timestamp:.2f}>"

"""Subscriber-side reassembly of reliable event streams.

A reliable mediator (``EventMediator(reliable=True)``) stamps every delivery
with a per-subscription sequence number. The :class:`StreamReassembler`
sits between a component's transport and its event hook and restores the
publish order the mediator produced:

* ``seq == last + 1``  — deliver, then flush any buffered successors;
* ``seq <= last``      — a duplicate (retransmission raced its ack): drop;
* ``seq >  last + 1``  — a hole. Buffer the arrival; if the hole is still
  open after ``resync_after`` (i.e. the mediator's own retransmissions did
  not fill it), ask the mediator to **resync**: it replays the retained
  events matching the subscription under fresh sequence numbers and names
  the baseline to fast-forward past, so a stream with genuinely lost events
  heals instead of staying silent forever.

Deliveries without a sequence number (an unreliable mediator, or raw test
messages) bypass the machinery entirely.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Dict, Optional

from repro.net.sim import Scheduler, Timer

logger = logging.getLogger(__name__)

#: default quiet time on an open hole before a resync is requested; sized
#: above the mediator's full retransmit window so resync only fires once
#: the mediator has given a delivery up for lost
DEFAULT_RESYNC_AFTER = 60.0


class _SubStream:
    """Per-subscription reorder state."""

    __slots__ = ("last", "pending", "gap_timer")

    def __init__(self) -> None:
        self.last = 0
        self.pending: Dict[int, Any] = {}
        self.gap_timer: Optional[Timer] = None


class StreamReassembler:
    """In-order, exactly-once delivery over per-subscription seq numbers."""

    def __init__(self, scheduler: Scheduler,
                 deliver: Callable[[Any], None],
                 request_resync: Optional[Callable[[int], None]] = None,
                 resync_after: float = DEFAULT_RESYNC_AFTER,
                 metrics=None):
        if resync_after <= 0:
            raise ValueError(f"non-positive resync_after: {resync_after}")
        self._scheduler = scheduler
        self._deliver = deliver
        self._request_resync = request_resync
        self.resync_after = resync_after
        self._streams: Dict[int, _SubStream] = {}
        self.dup_dropped = 0
        self.gaps_detected = 0
        self.resyncs_requested = 0
        self._gap_counter = self._dup_counter = self._resync_counter = None
        if metrics is not None:
            self._gap_counter = metrics.counter(
                "mediator.seq.gaps",
                "sequence holes opened in subscriber streams")
            self._dup_counter = metrics.counter(
                "mediator.seq.dup_dropped",
                "stale or duplicate sequenced deliveries dropped")
            self._resync_counter = metrics.counter(
                "mediator.seq.resyncs",
                "resync requests issued for holes that outlived retransmission")

    # -- ingest ---------------------------------------------------------------

    def offer(self, sub_id: Optional[int], seq: Optional[int],
              payload: Any) -> bool:
        """Feed one arrival; returns True when delivered immediately."""
        if seq is None:
            self._deliver(payload)
            return True
        stream = self._streams.setdefault(sub_id, _SubStream())
        if seq <= stream.last or seq in stream.pending:
            self.dup_dropped += 1
            if self._dup_counter is not None:
                self._dup_counter.inc()
            return False
        if seq == stream.last + 1:
            stream.last = seq
            self._deliver(payload)
            self._flush(stream)
            return True
        if not stream.pending:
            self.gaps_detected += 1
            if self._gap_counter is not None:
                self._gap_counter.inc()
        stream.pending[seq] = payload
        self._arm(sub_id, stream)
        return False

    def resync_done(self, sub_id: int, baseline: int) -> None:
        """The mediator replayed retained state under seqs > ``baseline``.

        Whatever buffered arrivals predate the baseline drain in order; the
        stream then fast-forwards past the unrecoverable hole.
        """
        stream = self._streams.get(sub_id)
        if stream is None:
            return
        for seq in sorted(s for s in stream.pending if s <= baseline):
            self._deliver(stream.pending.pop(seq))
        if baseline > stream.last:
            stream.last = baseline
        self._flush(stream)
        if stream.pending:
            self._arm(sub_id, stream)

    def resync_failed(self, sub_id: int) -> None:
        """The resync RPC itself expired; re-arm so the stream retries."""
        stream = self._streams.get(sub_id)
        if stream is not None and stream.pending:
            self._arm(sub_id, stream)

    def forget(self, sub_id: int) -> None:
        """Drop all state for a dead subscription."""
        stream = self._streams.pop(sub_id, None)
        if stream is not None and stream.gap_timer is not None:
            stream.gap_timer.cancel()

    def reset(self) -> None:
        for sub_id in list(self._streams):
            self.forget(sub_id)

    # -- introspection --------------------------------------------------------

    def last_seq(self, sub_id: int) -> int:
        stream = self._streams.get(sub_id)
        return stream.last if stream is not None else 0

    def open_holes(self, sub_id: int) -> int:
        stream = self._streams.get(sub_id)
        return len(stream.pending) if stream is not None else 0

    # -- internals ------------------------------------------------------------

    def _flush(self, stream: _SubStream) -> None:
        while stream.last + 1 in stream.pending:
            stream.last += 1
            self._deliver(stream.pending.pop(stream.last))
        if not stream.pending and stream.gap_timer is not None:
            stream.gap_timer.cancel()
            stream.gap_timer = None

    def _arm(self, sub_id: int, stream: _SubStream) -> None:
        if self._request_resync is None or stream.gap_timer is not None:
            return
        stream.gap_timer = self._scheduler.schedule(
            self.resync_after, self._gap_expired, sub_id)

    def _gap_expired(self, sub_id: int) -> None:
        stream = self._streams.get(sub_id)
        if stream is None:
            return
        stream.gap_timer = None
        if not stream.pending:
            return
        self.resyncs_requested += 1
        if self._resync_counter is not None:
            self._resync_counter.inc()
        logger.info("stream %s: hole outlived retransmission, resyncing",
                    sub_id)
        self._request_resync(sub_id)

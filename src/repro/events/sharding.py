"""Sharded Event Mediator — K worker shards behind one router facade.

PR 6 parallelised the simulation substrate; the single sequential Event
Mediator is the next ceiling. This module partitions it:

* **Ownership.** Each ``(type_name, subject)`` key is owned by exactly one
  :class:`MediatorShard`, decided by a consistent-hash
  :class:`~repro.server.shard.ShardRing`. Every publish is routed to the
  owner shard, which stores the retained entry and fans out to the
  *exact* subscriptions (filters constraining both type and subject) that
  share the key — the overwhelming majority in an entity-tracking
  workload, so shards divide both state and matching work ~evenly.
* **Routed subscriptions.** Filters that cannot be pinned to one key
  (type-only monitors, subject-only, source-only, residual ``Or``/``Not``/
  attribute filters) and all bridges live on the *router*
  (:class:`ShardedEventMediator`), which inherits the plain mediator's
  delivery machinery wholesale — one-time arbitration, reliable
  sequencing, bridge loop-suppression all behave exactly as unsharded.
  Shards forward an event to the router only when a shared *interest
  summary* says some routed entry may match, so the router is not a
  fan-in bottleneck for pure point-to-point traffic.
* **Rebalance.** ``add_shard``/``remove_shard`` migrate live
  ``Subscription`` objects (sub_id, seq and delivery count preserved — no
  loss, no duplication) and retained entries to their new owners.
  Publishes already in flight to a moved key are *handed off* by the
  stale shard to the current owner. Retired shards stay attached to
  drain exactly that in-flight traffic.

Equivalence (proven by ``tests/shard`` and the Hypothesis property): for a
fixed seed, per-subscription delivery logs are entry-for-entry identical to
a single unsharded mediator, under the harness's FIFO deterministic latency
and seq-ordered publishes. Retained replay across shards is merged on the
first-retained seq stamp (see ``EventMediator._retained_first``), which
reproduces the single store's insertion order under the same assumptions.

Concurrency contract: ring, shard table and interest summaries are shared
objects mutated only by control-plane calls (subscribe/unsubscribe/bridge/
rebalance) on the router. Under a partitioned scheduler those calls must
run from the control lane / a quiesced barrier, or on the router's own
lane — the same discipline ``tests/parallel`` applies to topology changes.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional

from repro.core.ids import GUID, GuidFactory
from repro.net.message import Message
from repro.net.transport import Network
from repro.events.event import ContextEvent
from repro.events.dispatch_index import FilterConstraints, analyse_filter
from repro.events.filters import EventFilter
from repro.events.mediator import (
    DEFAULT_ACK_TIMEOUT,
    DEFAULT_DELIVERY_RETRIES,
    DEFAULT_RETAINED_CAP,
    Bridge,
    EventMediator,
)
from repro.events.subscription import Subscription
from repro.query.opgraph.compile import analyse_opspec, compile_query
from repro.server.shard import ShardRing

logger = logging.getLogger(__name__)


def _bump(store: Dict, key, delta: int) -> None:
    count = store.get(key, 0) + delta
    if count > 0:
        store[key] = count
    else:
        store.pop(key, None)


class _InterestSet:
    """Counted summary of routed-entry constraints, shared with shards.

    Sound over-approximation: an event that could match any routed
    subscription (or bridge) necessarily hits one of these buckets, because
    the buckets are derived from the same
    :func:`~repro.events.dispatch_index.analyse_filter` facts the dispatch
    index buckets on. False positives just cost one forward.
    """

    __slots__ = ("types", "subjects", "sources", "residual")

    def __init__(self):
        self.types: Dict[str, int] = {}
        self.subjects: Dict[object, int] = {}
        self.sources: Dict[str, int] = {}
        self.residual = 0

    def sanitize(self, sanitizer, label: str) -> None:
        """Swap the summary buckets for LaneSan ownership-asserting views:
        shards read these from lane context while only control-plane calls
        may write, and the sanitizer checks exactly that."""
        self.types = sanitizer.wrap_dict(self.types, f"{label}.types")
        self.subjects = sanitizer.wrap_dict(self.subjects, f"{label}.subjects")
        self.sources = sanitizer.wrap_dict(self.sources, f"{label}.sources")

    def add(self, constraints: FilterConstraints) -> None:
        self._apply(constraints, 1)

    def remove(self, constraints: FilterConstraints) -> None:
        self._apply(constraints, -1)

    def _apply(self, constraints: FilterConstraints, delta: int) -> None:
        # mirror DispatchIndex bucket priority: most selective axis wins
        if constraints.type_name is not None:
            _bump(self.types, constraints.type_name, delta)
        elif constraints.has_subject:
            _bump(self.subjects, constraints.subject, delta)
        elif constraints.source_hex is not None:
            _bump(self.sources, constraints.source_hex, delta)
        else:
            self.residual += delta

    def matches(self, event: ContextEvent) -> bool:
        if self.residual:
            return True
        if self.types and event.type_name in self.types:
            return True
        if self.subjects:
            try:
                if event.subject in self.subjects:
                    return True
            except TypeError:
                pass
        return bool(self.sources) and event.source.hex in self.sources


class MediatorShard(EventMediator):
    """One worker shard: a full mediator over its owned slice of keys."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 range_name: str, shard_id: int, router_guid: GUID,
                 ring: ShardRing, shard_guids: Dict[int, GUID],
                 sub_interest: _InterestSet, bridge_interest: _InterestSet,
                 cs_label: str,
                 retained_cap: int = DEFAULT_RETAINED_CAP,
                 indexed: bool = True,
                 reliable: bool = False,
                 ack_timeout: float = DEFAULT_ACK_TIMEOUT,
                 delivery_retries: int = DEFAULT_DELIVERY_RETRIES,
                 engine: Optional[str] = None,
                 ledger=None):
        super().__init__(guid, host_id, network, range_name,
                         retained_cap=retained_cap, indexed=indexed,
                         reliable=reliable, ack_timeout=ack_timeout,
                         delivery_retries=delivery_retries, engine=engine,
                         ledger=ledger)
        self.shard_id = shard_id
        self._router_guid = router_guid
        self._ring = ring
        self._shard_guids = shard_guids
        self._sub_interest = sub_interest
        self._bridge_interest = bridge_interest
        self._cs_label = cs_label
        metrics = network.obs.metrics
        self._forwarded_counter = metrics.counter(
            "cs.shard.forwarded",
            "events forwarded shard -> router for routed subscriptions",
            labels=("range",))
        self._handoffs_counter = metrics.counter(
            "cs.shard.handoffs",
            "stale-ownership publishes re-forwarded after a rebalance",
            labels=("range",))

    def _fan_out(self, event: ContextEvent, bridged: bool) -> int:
        owner = self._ring.owner((event.type_name, event.subject))
        if owner != self.shard_id:
            # a rebalance moved this key while the publish was in flight;
            # hand the event to the current owner instead of misdelivering
            self._handoffs_counter.inc(range=self._cs_label)
            if self.reliable:
                payload = {"event": event.to_wire(), "bridged": bridged}
                self.requests.request(self._shard_guids[owner], "publish",
                                      payload)
            else:
                payload = {"event": event.to_wire(), "bridged": bridged,
                           "ack": False}
                self.send(self._shard_guids[owner], "publish", payload)
            return 0
        delivered = super()._fan_out(event, bridged)
        if (self._sub_interest.matches(event)
                or (not bridged and self._bridge_interest.matches(event))):
            self._forwarded_counter.inc(range=self._cs_label)
            payload = {"event": event.to_wire(), "bridged": bridged}
            if self.reliable:
                self.requests.request(self._router_guid, "shard-event",
                                      payload)
            else:
                self.send(self._router_guid, "shard-event", payload)
        return delivered

    def _replay_retained(self, subscription: Subscription, constraints) -> None:
        """Replay in first-retained order, not local store order.

        After a migration, adopted entries sit at the tail of the local
        store regardless of age; sorting on the first-retained seq stamp
        restores the order a never-rebalanced store would replay in.
        """
        label = self.range_name or "-"
        if self.indexed and constraints.type_name is not None:
            entries = self.retained_entries(constraints.type_name)
            self._index_hits_counter.inc(len(entries), range=label)
        else:
            entries = self.retained_entries()
            self._index_residual_counter.inc(len(entries), range=label)
        entries.sort(key=lambda entry: entry[0])
        for _, _, event in entries:
            if subscription.active and subscription.filter.matches(event):
                self._deliver(subscription, event)


class ShardedEventMediator(EventMediator):
    """Router facade: same API and wire protocol as :class:`EventMediator`.

    Drop-in for the Context Server: ``add_subscription``, ``publish``,
    ``retained_event``, teardown helpers and every protocol verb behave
    identically from the caller's point of view; internally exact-key work
    is spread over ``shards`` workers (optionally on distinct hosts, so a
    partitioned scheduler can run them on parallel lanes).
    """

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 range_name: str = "",
                 shards: int = 2,
                 shard_hosts: Optional[List[str]] = None,
                 guid_factory: Optional[GuidFactory] = None,
                 retained_cap: int = DEFAULT_RETAINED_CAP,
                 indexed: bool = True,
                 reliable: bool = False,
                 ack_timeout: float = DEFAULT_ACK_TIMEOUT,
                 delivery_retries: int = DEFAULT_DELIVERY_RETRIES,
                 engine: Optional[str] = None,
                 ledger=None):
        super().__init__(guid, host_id, network, range_name,
                         retained_cap=retained_cap, indexed=indexed,
                         reliable=reliable, ack_timeout=ack_timeout,
                         delivery_retries=delivery_retries, engine=engine,
                         ledger=ledger)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        #: the router never retains: the owner shard does
        self.retain_events = False
        self._factory = guid_factory or GuidFactory(
            seed=(guid.value & 0xFFFFFFFF) ^ 0x5A4D)
        self._hosts = list(shard_hosts or (host_id,))
        self._ring = ShardRing()
        self._shards: Dict[int, MediatorShard] = {}
        self._retired: Dict[int, MediatorShard] = {}
        self._shard_guids: Dict[int, GUID] = {}
        #: sub_id -> owning shard id, for shard-homed subscriptions
        self._sub_home: Dict[int, int] = {}
        #: constraints of router-homed (routed) subscriptions / bridges
        self._routed_constraints: Dict[int, FilterConstraints] = {}
        self._bridge_constraints: Dict[int, FilterConstraints] = {}
        self._sub_interest = _InterestSet()
        self._bridge_interest = _InterestSet()
        sanitizer = getattr(network, "sanitizer", None)
        if sanitizer is not None:
            self._sub_interest.sanitize(sanitizer, "shard.sub_interest")
            self._bridge_interest.sanitize(sanitizer, "shard.bridge_interest")
        self._next_shard_id = 0
        #: every shard chain ever minted, retired shards included — their
        #: entries stay part of the family's merged history
        self._shard_ledgers: List = []
        metrics = network.obs.metrics
        label = ("range",)
        self._routed_counter = metrics.counter(
            "cs.shard.routed",
            "publishes routed to their owner shard", labels=label)
        self._dispatched_counter = metrics.counter(
            "cs.shard.dispatched",
            "shard-forwarded events fanned out to routed entries at the router",
            labels=label)
        self._moved_subs_counter = metrics.counter(
            "cs.shard.moved_subs",
            "subscriptions migrated between shards by a rebalance",
            labels=label)
        self._moved_retained_counter = metrics.counter(
            "cs.shard.moved_retained",
            "retained entries migrated between shards by a rebalance",
            labels=label)
        for _ in range(shards):
            self.add_shard()

    # -- topology -------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard(self, shard_id: int) -> MediatorShard:
        return self._shards[shard_id]

    def shard_ids(self) -> List[int]:
        return list(self._shards)

    def shard_id_for(self, type_name: str, subject: object) -> int:
        return self._ring.owner((type_name, subject))

    def shard_guid_for(self, type_name: str, subject: object) -> GUID:
        """Owner shard's address — lets clients publish point-to-point."""
        return self._shard_guids[self.shard_id_for(type_name, subject)]

    def add_shard(self, host_id: Optional[str] = None) -> int:
        """Grow the worker set by one shard and rebalance onto it.

        Control-plane only: call from a quiesced scheduler or the router's
        own lane (see module docstring).
        """
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        host = host_id or self._hosts[shard_id % len(self._hosts)]
        self.network.ensure_host(host)
        # rank 0 is the router's (and the CS's) chain; shard ranks are
        # 1-based so every writer appends to a chain only its own lane owns
        shard_ledger = (self._ledger.child(shard_id + 1)
                        if self._ledger is not None else None)
        if shard_ledger is not None:
            self._shard_ledgers.append(shard_ledger)
        shard = MediatorShard(
            self._factory.mint(), host, self.network,
            f"{self.range_name}#s{shard_id}" if self.range_name
            else f"#s{shard_id}",
            shard_id=shard_id, router_guid=self.guid, ring=self._ring,
            shard_guids=self._shard_guids, sub_interest=self._sub_interest,
            bridge_interest=self._bridge_interest,
            cs_label=self.range_name or "-",
            retained_cap=self.retained_cap, indexed=self.indexed,
            reliable=self.reliable, engine=self.engine,
            ledger=shard_ledger)
        self._shards[shard_id] = shard
        self._shard_guids[shard_id] = shard.guid
        self._ring.add(shard_id)
        if len(self._shards) > 1:
            moved_subs = moved_retained = 0
            for other in list(self._shards.values()):
                if other is shard:
                    continue
                subs, retained = self._rebalance_from(other)
                moved_subs += subs
                moved_retained += retained
            self._note_moves(moved_subs, moved_retained)
        return shard_id

    def remove_shard(self, shard_id: int) -> None:
        """Drain one shard: migrate its state, keep it attached for handoff."""
        if shard_id not in self._shards:
            raise ValueError(f"unknown shard {shard_id}")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._ring.remove(shard_id)
        shard = self._shards.pop(shard_id)
        self._shard_guids.pop(shard_id, None)
        moved_subs, moved_retained = self._rebalance_from(shard)
        self._note_moves(moved_subs, moved_retained)
        # stays attached: publishes already in flight to it are handed off
        # to the new owners by its own stale-route check
        self._retired[shard_id] = shard

    @staticmethod
    def _constraints_for(subscription: Subscription) -> FilterConstraints:
        """Placement facts for a subscription, query-plan aware."""
        if subscription.query is not None:
            return analyse_opspec(compile_query(subscription.query))
        return analyse_filter(subscription.filter)

    def _rebalance_from(self, shard: MediatorShard):
        """Move every entry ``shard`` no longer owns to the current owner.

        Operator state (windows, join tables, selector candidates) moves
        with the subscription: a shard-homed plan is pinned to one
        ``(type, subject)`` key, so the releasing shard held the only copy —
        exported *before* release reclaims the nodes, imported first-wins
        after the adopting shard materialises them.
        """
        moved_subs = moved_retained = 0
        for subscription in shard.subscriptions():
            constraints = self._constraints_for(subscription)
            owner = self._ring.owner((constraints.type_name,
                                      constraints.subject))
            if owner == shard.shard_id:
                continue
            states = shard.opgraph_export_for(subscription.sub_id)
            shard.release_subscription(subscription.sub_id)
            self._shards[owner].adopt_subscription(subscription)
            self._shards[owner].opgraph_import(states)
            self._sub_home[subscription.sub_id] = owner
            moved_subs += 1
        for first_seq, key, event in shard.retained_entries():
            owner = self._ring.owner((key[0], key[2]))
            if owner == shard.shard_id:
                continue
            shard.release_retained(key)
            self._shards[owner].adopt_retained(key, event, first_seq)
            moved_retained += 1
        return moved_subs, moved_retained

    def _note_moves(self, moved_subs: int, moved_retained: int) -> None:
        label = self.range_name or "-"
        if moved_subs:
            self._moved_subs_counter.inc(moved_subs, range=label)
        if moved_retained:
            self._moved_retained_counter.inc(moved_retained, range=label)
        logger.info("%s: rebalanced %d subscriptions, %d retained entries",
                    self.name, moved_subs, moved_retained)

    def detach(self) -> None:
        for shard in list(self._shards.values()):
            shard.detach()
        for shard in list(self._retired.values()):
            shard.detach()
        super().detach()

    # -- subscription placement ----------------------------------------------

    def add_subscription(
        self,
        subscriber: GUID,
        event_filter: EventFilter,
        one_time: bool = False,
        owner: Optional[object] = None,
        replay_retained: bool = True,
        query: Optional[dict] = None,
    ) -> Subscription:
        if query is not None:
            constraints = analyse_opspec(compile_query(query))
        else:
            constraints = analyse_filter(event_filter)
        if constraints.type_name is not None and constraints.has_subject:
            shard_id = self._ring.owner((constraints.type_name,
                                         constraints.subject))
            subscription = self._shards[shard_id].add_subscription(
                subscriber, event_filter, one_time=one_time, owner=owner,
                replay_retained=replay_retained, query=query)
            if subscription.active:
                self._sub_home[subscription.sub_id] = shard_id
            return subscription
        subscription = super().add_subscription(
            subscriber, event_filter, one_time=one_time, owner=owner,
            replay_retained=replay_retained, query=query)
        if subscription.active:
            self._routed_constraints[subscription.sub_id] = constraints
            self._sub_interest.add(constraints)
        return subscription

    def _drop_subscription(self, subscription: Subscription,
                           record: bool = True) -> None:
        super()._drop_subscription(subscription, record=record)
        constraints = self._routed_constraints.pop(subscription.sub_id, None)
        if constraints is not None:
            self._sub_interest.remove(constraints)

    def remove_subscription(self, sub_id: int) -> bool:
        home = self._sub_home.pop(sub_id, None)
        if home is not None:
            shard = self._shards.get(home) or self._retired.get(home)
            return shard.remove_subscription(sub_id) if shard else False
        return super().remove_subscription(sub_id)

    def remove_subscriptions_of(self, owner: object) -> int:
        removed = super().remove_subscriptions_of(owner)
        for shard in list(self._shards.values()):
            doomed = shard.subscription_ids_of(owner)
            for sub_id in doomed:
                self._sub_home.pop(sub_id, None)
            removed += shard.remove_subscriptions_of(owner)
        return removed

    def remove_subscriber(self, subscriber: GUID) -> int:
        removed = super().remove_subscriber(subscriber)
        for shard in list(self._shards.values()):
            for subscription in shard.subscriptions_for(subscriber):
                self._sub_home.pop(subscription.sub_id, None)
            removed += shard.remove_subscriber(subscriber)
        return removed

    # -- bridges --------------------------------------------------------------

    def add_bridge(self, peer: GUID, event_filter: EventFilter) -> Bridge:
        bridge = super().add_bridge(peer, event_filter)
        constraints = analyse_filter(event_filter)
        self._bridge_constraints[bridge.bridge_id] = constraints
        self._bridge_interest.add(constraints)
        return bridge

    def remove_bridge(self, bridge_id: int) -> bool:
        removed = super().remove_bridge(bridge_id)
        constraints = self._bridge_constraints.pop(bridge_id, None)
        if constraints is not None:
            self._bridge_interest.remove(constraints)
        return removed

    # -- publish routing ------------------------------------------------------

    def publish(self, event: ContextEvent, bridged: bool = False) -> int:
        """Route to the owner shard. Returns 0: delivery happens there."""
        self.published += 1
        self.by_type[event.type_name] += 1
        self._published_counter.inc(range=self.range_name or "-")
        self._routed_counter.inc(range=self.range_name or "-")
        target = self._shard_guids[self._ring.owner((event.type_name,
                                                     event.subject))]
        if self.reliable:
            payload = {"event": event.to_wire(), "bridged": bridged}
            self.requests.request(target, "publish", payload)
        else:
            payload = {"event": event.to_wire(), "bridged": bridged,
                       "ack": False}
            self.send(target, "publish", payload)
        return 0

    def _handle_shard_event(self, message: Message) -> None:
        """An owner shard forwarded an event our routed entries may match."""
        event = ContextEvent.from_wire(message.payload["event"])
        bridged = bool(message.payload.get("bridged"))
        self._dispatched_counter.inc(range=self.range_name or "-")
        delivered = self._fan_out(event, bridged)
        if self.reliable:
            # only the request-with-retries path consumes this ack; the
            # fire-and-forget path would pay a message per forward for nothing
            self.reply(message, "shard-event-ack", {"delivered": delivered})

    # -- retained state -------------------------------------------------------

    def _replay_retained(self, subscription: Subscription, constraints) -> None:
        """Merge every shard's retained slice in first-retained order."""
        type_name = (constraints.type_name
                     if self.indexed and constraints.type_name is not None
                     else None)
        entries = []
        for shard_id in list(self._shards):
            entries.extend(self._shards[shard_id].retained_entries(type_name))
        entries.sort(key=lambda entry: entry[0])
        label = self.range_name or "-"
        if type_name is not None:
            self._index_hits_counter.inc(len(entries), range=label)
        else:
            self._index_residual_counter.inc(len(entries), range=label)
        for _, _, event in entries:
            if subscription.active and subscription.filter.matches(event):
                self._deliver(subscription, event)

    def retained_event(self, type_name: str, representation: str,
                       subject: object) -> Optional[ContextEvent]:
        shard_id = self._ring.owner((type_name, subject))
        return self._shards[shard_id].retained_event(
            type_name, representation, subject)

    # -- reliable-mode resync proxy -------------------------------------------

    def _handle_resync(self, message: Message) -> None:
        """Proxy resyncs for shard-homed subscriptions to their owner.

        Subscribers address resync at the one mediator GUID they were
        configured with — this router — but the retained state and the
        subscription live on the owner shard. Relay the request and the ack.
        """
        sub_id = message.payload.get("sub_id")
        home = self._sub_home.get(sub_id)
        if home is None:
            super()._handle_resync(message)
            return
        shard = self._shards.get(home) or self._retired.get(home)
        if shard is None:
            self.reply(message, "resync-ack", {"ok": False, "sub_id": sub_id})
            return
        self.requests.request(
            shard.guid, "resync", {"sub_id": sub_id},
            on_reply=lambda reply: self.reply(message, "resync-ack",
                                              dict(reply.payload)),
            on_timeout=lambda: self.reply(message, "resync-ack",
                                          {"ok": False, "sub_id": sub_id}))

    # -- introspection --------------------------------------------------------

    @property
    def subscription_count(self) -> int:
        return (len(self._subscriptions)
                + sum(shard.subscription_count
                      for shard in self._shards.values()))

    @property
    def retained_count(self) -> int:
        return sum(shard.retained_count for shard in self._shards.values())

    def subscriptions_for(self, subscriber: GUID) -> List[Subscription]:
        found = super().subscriptions_for(subscriber)
        for shard in self._shards.values():
            found.extend(shard.subscriptions_for(subscriber))
        return found

    def all_subscriptions(self) -> List[Subscription]:
        found = self.subscriptions()
        for shard in self._shards.values():
            found.extend(shard.subscriptions())
        return found

    def all_retained_entries(self) -> List[tuple]:
        entries: List[tuple] = []
        for shard in self._shards.values():
            entries.extend(shard.retained_entries())
        return entries

    def ledgers(self) -> List:
        """Root chain plus every shard chain ever minted, rank order."""
        chains = super().ledgers()
        chains.extend(self._shard_ledgers)
        return chains

    def index_stats(self) -> Dict[str, int]:
        stats = super().index_stats()
        for shard in self._shards.values():
            for key, value in shard.index_stats().items():
                stats[key] += value
        stats["shards"] = len(self._shards)
        stats["routed_subscriptions"] = len(self._subscriptions)
        return stats

    def opgraph_stats(self) -> Dict[str, float]:
        """Router + shard operator-graph counters, summed (ratio re-derived)."""
        stats = super().opgraph_stats()
        if not stats:
            return stats
        for shard in self._shards.values():
            for key, value in shard.opgraph_stats().items():
                if key != "reuse_ratio":
                    stats[key] += value
        requested = stats["nodes_created"] + stats["reuse_hits"]
        stats["reuse_ratio"] = (stats["reuse_hits"] / requested
                                if requested else 0.0)
        return stats

"""Hash-chained append-only ledgers and their JSONL artefact format.

Modelled on the Brain_Garden HO2 Context Authority spec (SNIPPETS.md
snippet 1): immutable append-only source ledgers, hash-stable entry
references ``(ledger_id, entry_id, entry_hash)``, and the determinism
contract *same inputs ⇒ identical projection*.

One :class:`ContextLedger` is one chain. A sharded Context Server keeps a
family of chains — a rank-0 root ledger for the Registrar, Profile
Manager, router and query lifecycle (all on the CS host's scheduler lane)
plus one child per mediator shard (each appended to only from its own
lane, so chains never interleave across partitions). The merged view
orders entries by ``(sim_time, shard_rank, seq)``; chain verification is
always per-chain.

Payloads must be JSON-serialisable: the hash is computed over the
canonical JSON encoding, so the chain commits to exactly what the JSONL
export round-trips.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

#: artefact format marker; bump on incompatible changes
LEDGER_SCHEMA = "sci.ledger/1"

#: the chain anchor every rank starts from
GENESIS_HASH = "0" * 32

#: every kind a ledger entry may carry (closed set; the validator and the
#: replay projector both dispatch on it)
ENTRY_KINDS = (
    "register",        # registrar: a component (re-)registered
    "lease-renew",     # registrar: heartbeat renewed a lease
    "depart",          # registrar: deregistration / eviction / expulsion
    "profile-add",     # profile manager: profile (re-)stored
    "profile-remove",  # profile manager: profile dropped
    "profile-update",  # profile manager: attribute patch applied
    "subscribe",       # mediator: subscription established
    "unsubscribe",     # mediator: subscription torn down
    "retain",          # mediator: retained entry stored/updated
    "retain-evict",    # mediator: retained entry dropped by the cap
    "delivery",        # mediator: one event delivered to one subscription
    "query",           # context server: query lifecycle step
)


class LedgerError(ValueError):
    """A broken chain, an invalid entry, or a malformed JSONL artefact."""


def _canonical(payload: Any) -> str:
    """The canonical JSON encoding the hash commits to."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)


def entry_hash(prev_hash: str, shard_rank: int, seq: int, sim_time: float,
               kind: str, payload: Dict[str, Any]) -> str:
    """blake2b over the previous hash plus the entry's canonical body."""
    body = _canonical([shard_rank, seq, sim_time, kind, payload])
    return blake2b((prev_hash + body).encode("utf-8"),
                   digest_size=16).hexdigest()


@dataclass(frozen=True)
class LedgerEntry:
    """One immutable, hash-chained record."""

    ledger_id: str
    shard_rank: int
    seq: int
    sim_time: float
    kind: str
    payload: Dict[str, Any]
    prev_hash: str
    entry_hash: str

    @property
    def entry_id(self) -> str:
        """Stable position within the ledger family: ``rank:seq``."""
        return f"{self.shard_rank}:{self.seq}"

    def ref(self) -> Dict[str, str]:
        """A hash-stable reference another document can safely hold."""
        return {"ledger": self.ledger_id, "entry": self.entry_id,
                "hash": self.entry_hash}

    def to_record(self) -> Dict[str, Any]:
        """The JSONL line form (see :func:`write_ledger_jsonl`)."""
        return {
            "schema": LEDGER_SCHEMA,
            "ledger": self.ledger_id,
            "shard": self.shard_rank,
            "seq": self.seq,
            "time": self.sim_time,
            "kind": self.kind,
            "payload": self.payload,
            "prev": self.prev_hash,
            "hash": self.entry_hash,
        }


class ContextLedger:
    """One append-only chain of :class:`LedgerEntry` records.

    ``child(rank)`` mints sibling chains sharing the ledger id — one per
    mediator shard — whose entries interleave with the root's only in the
    merged view, never in the chains themselves.

    Appends are group-committed: :meth:`append` records the entry body in
    O(1) and the hash chain is sealed in batch on the first read
    (:attr:`head`, :meth:`entries`, :meth:`verify`). The chain is a pure
    function of the body sequence, so where the sealing points fall never
    changes a single hash — it only keeps the canonical-JSON + blake2b
    work off the event-dispatch hot path.
    """

    def __init__(self, ledger_id: str, shard_rank: int = 0,
                 metrics=None, range_name: str = ""):
        self.ledger_id = ledger_id
        self.shard_rank = shard_rank
        self.range_name = range_name
        self._entries: List[LedgerEntry] = []
        #: appended but not yet hashed: (sim_time, kind, payload) bodies
        self._unsealed: List[tuple] = []
        self._metrics = metrics
        self._appends_counter = None
        if metrics is not None:
            self._appends_counter = metrics.counter(
                "cs.ledger.appends",
                "ledger entries appended, by entry kind",
                labels=("range", "kind"))

    # -- append path ----------------------------------------------------------

    @property
    def head(self) -> str:
        self._seal()
        return self._entries[-1].entry_hash if self._entries else GENESIS_HASH

    def __len__(self) -> int:
        return len(self._entries) + len(self._unsealed)

    def append(self, sim_time: float, kind: str,
               payload: Dict[str, Any]) -> None:
        if kind not in ENTRY_KINDS:
            raise LedgerError(f"unknown entry kind {kind!r}")
        self._unsealed.append((sim_time, kind, payload))
        if self._appends_counter is not None:
            self._appends_counter.inc(range=self.range_name or "-", kind=kind)

    def _seal(self) -> None:
        """Extend the hash chain over every body appended since last seal."""
        if not self._unsealed:
            return
        bodies, self._unsealed = self._unsealed, []
        prev = self._entries[-1].entry_hash if self._entries else GENESIS_HASH
        for sim_time, kind, payload in bodies:
            seq = len(self._entries)
            entry = LedgerEntry(
                ledger_id=self.ledger_id,
                shard_rank=self.shard_rank,
                seq=seq,
                sim_time=sim_time,
                kind=kind,
                payload=payload,
                prev_hash=prev,
                entry_hash=entry_hash(prev, self.shard_rank, seq, sim_time,
                                      kind, payload),
            )
            self._entries.append(entry)
            prev = entry.entry_hash

    def child(self, shard_rank: int) -> "ContextLedger":
        """A sibling chain for one mediator shard (same ledger id)."""
        return ContextLedger(self.ledger_id, shard_rank=shard_rank,
                             metrics=self._metrics,
                             range_name=self.range_name)

    # -- read path ------------------------------------------------------------

    def entries(self, upto: Optional[float] = None) -> List[LedgerEntry]:
        """This chain's entries, optionally only those with time <= upto."""
        self._seal()
        if upto is None:
            return list(self._entries)
        return [entry for entry in self._entries if entry.sim_time <= upto]

    def entry(self, seq: int) -> LedgerEntry:
        self._seal()
        return self._entries[seq]

    def verify(self) -> int:
        """Recompute the whole chain; returns its length, raises on break."""
        self._seal()
        prev = GENESIS_HASH
        for index, entry in enumerate(self._entries):
            if entry.seq != index:
                raise LedgerError(
                    f"{self.ledger_id}[{self.shard_rank}]: entry {index} "
                    f"carries seq {entry.seq}")
            if entry.prev_hash != prev:
                raise LedgerError(
                    f"{self.ledger_id}[{self.shard_rank}]: entry {index} "
                    f"prev-hash mismatch")
            expected = entry_hash(prev, entry.shard_rank, entry.seq,
                                  entry.sim_time, entry.kind, entry.payload)
            if entry.entry_hash != expected:
                raise LedgerError(
                    f"{self.ledger_id}[{self.shard_rank}]: entry {index} "
                    f"hash mismatch (tampered payload?)")
            prev = entry.entry_hash
        return len(self._entries)


def merge_entries(ledgers: Iterable[ContextLedger],
                  upto: Optional[float] = None) -> List[LedgerEntry]:
    """The family-wide total order: sorted by ``(sim_time, rank, seq)``.

    Chains are append-ordered in both time and seq, so this sort is a
    stable k-way merge; ties at one sim-time are broken by rank (the root
    ledger first), which is deterministic because distinct writers never
    share a rank.
    """
    merged: List[LedgerEntry] = []
    for ledger in ledgers:
        merged.extend(ledger.entries(upto))
    merged.sort(key=lambda entry: (entry.sim_time, entry.shard_rank,
                                   entry.seq))
    return merged


# -- JSONL artefact -----------------------------------------------------------


def write_ledger_jsonl(ledgers: Iterable[ContextLedger],
                       path: Union[str, Path]) -> int:
    """Write a ledger family as one validated JSONL artefact.

    One line per entry, whole-family merge order. Returns the line count.
    """
    records = [entry.to_record() for entry in merge_entries(ledgers)]
    for index, record in enumerate(records):
        _validate_record(f"line {index + 1}", record)
    _verify_record_chains(records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def load_ledger_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a ledger artefact back, re-validating chains before returning."""
    records = []
    for number, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        record = json.loads(line)
        _validate_record(f"line {number}", record)
        records.append(record)
    _verify_record_chains(records)
    return records


def _fail(where: str, problem: str) -> None:
    raise LedgerError(f"{where}: {problem}")


def _validate_record(where: str, record: Any) -> None:
    """Structural validation of one JSONL line (hand-rolled, like obs)."""
    if not isinstance(record, dict):
        _fail(where, f"record must be an object, got {type(record).__name__}")
    if record.get("schema") != LEDGER_SCHEMA:
        _fail(where, f"schema must be {LEDGER_SCHEMA!r}, "
              f"got {record.get('schema')!r}")
    if not isinstance(record.get("ledger"), str) or not record["ledger"]:
        _fail(where, "missing non-empty 'ledger' id")
    for field in ("shard", "seq"):
        value = record.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            _fail(where, f"{field!r} must be a non-negative integer")
    if not isinstance(record.get("time"), (int, float)):
        _fail(where, "'time' must be a number")
    if record.get("kind") not in ENTRY_KINDS:
        _fail(where, f"unknown entry kind {record.get('kind')!r}")
    if not isinstance(record.get("payload"), dict):
        _fail(where, "'payload' must be an object")
    for field in ("prev", "hash"):
        if not isinstance(record.get(field), str) or not record[field]:
            _fail(where, f"missing non-empty {field!r}")


def _verify_record_chains(records: List[Dict[str, Any]]) -> None:
    """Recompute every per-(ledger, shard) chain across exported lines."""
    heads: Dict[tuple, tuple] = {}  # (ledger, shard) -> (next seq, head hash)
    for record in records:
        key = (record["ledger"], record["shard"])
        next_seq, head = heads.get(key, (0, GENESIS_HASH))
        where = f"{key[0]}[{key[1]}] seq {record['seq']}"
        if record["seq"] != next_seq:
            _fail(where, f"non-contiguous seq (expected {next_seq})")
        if record["prev"] != head:
            _fail(where, "prev-hash does not match the chain head")
        expected = entry_hash(head, record["shard"], record["seq"],
                              record["time"], record["kind"],
                              record["payload"])
        if record["hash"] != expected:
            _fail(where, "entry hash does not recompute")
        heads[key] = (next_seq + 1, record["hash"])

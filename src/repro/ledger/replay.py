"""Replaying a ledger prefix back into Context Server state.

The determinism contract (Brain_Garden HO2): projecting the same entry
prefix always yields the same state, and that state equals what the live
mutable components hold at the moment the prefix ends. The differential
harness (``tests/ledger``) and the Hypothesis property assert exactly
this, snapshot-for-snapshot, across shard and partition counts.

Authority split — who rebuilds what:

* ``register`` / ``lease-renew`` / ``depart`` (Registrar's chain) rebuild
  the **membership view**: who is in the range, their kind, host and
  current lease. Profile *contents* are deliberately out of scope here —
  attributes mutate after registration.
* ``profile-add`` / ``profile-remove`` / ``profile-update`` (Profile
  Manager's chain) rebuild the **profile view** independently, so
  attribute patches replay without any aliasing between the registrar's
  records and the profile store.
* ``subscribe`` / ``unsubscribe`` / ``delivery`` / ``retain`` /
  ``retain-evict`` (mediator chains) rebuild subscriptions, per-
  subscription delivery counts and the retained store. Shard migration is
  invisible by construction: adopt/release during rebalance is never
  logged, and the retained view keys on ``(type, representation,
  subject)`` with the first-retained seq stamp, which is invariant under
  ownership moves.

Crash recovery: :meth:`ReplayProjector.from_records` replays an exported
JSONL artefact (``load_ledger_jsonl``), so a range whose server died can
rebuild its books from the durable ledger alone — the same path lease
expiry (PR 4's failure-detection story) already exercises while the
server is up.
"""

from __future__ import annotations

import copy
from hashlib import blake2b
from typing import Any, Dict, Iterable, List, Optional

from repro.ledger.ledger import LedgerEntry, _canonical


class ProjectedState:
    """The rebuilt books: membership, profiles, retained, subscriptions."""

    def __init__(self):
        #: entity hex -> membership record (see snapshot shape below)
        self.records: Dict[str, Dict[str, Any]] = {}
        #: entity hex -> {"profile": wire, "advertisements": [wire, ...]}
        self.profiles: Dict[str, Dict[str, Any]] = {}
        #: (type, representation, subject) -> {"first_seq", "event"}
        self.retained: Dict[tuple, Dict[str, Any]] = {}
        #: sub_id -> subscription facts + live delivery count
        self.subscriptions: Dict[int, Dict[str, Any]] = {}
        #: query_id -> lifecycle payloads in ledger order (feeds explain)
        self.queries: Dict[str, List[Dict[str, Any]]] = {}
        self.entries_applied = 0


class ReplayProjector:
    """Folds ledger entries into a :class:`ProjectedState`."""

    def __init__(self):
        self.state = ProjectedState()

    @classmethod
    def from_entries(cls, entries: Iterable[LedgerEntry]) -> "ReplayProjector":
        projector = cls()
        for entry in entries:
            projector.apply(entry.kind, entry.payload)
        return projector

    @classmethod
    def from_records(cls, records: Iterable[Dict[str, Any]]) -> "ReplayProjector":
        """Replay exported JSONL records (``load_ledger_jsonl`` output).

        Records must already be in merged ``(time, shard, seq)`` order,
        which is how :func:`~repro.ledger.ledger.write_ledger_jsonl` lays
        them out.
        """
        projector = cls()
        for record in records:
            projector.apply(record["kind"], record["payload"])
        return projector

    def apply(self, kind: str, payload: Dict[str, Any]) -> None:
        # dispatch table deliberately not named *handlers*: these are ledger
        # entry kinds, not wire verbs, and must stay out of PROTOCOL.md
        projector = self._PROJECTORS.get(kind)
        if projector is not None:
            projector(self, payload)
        self.state.entries_applied += 1

    # -- registrar chain ------------------------------------------------------

    def _apply_register(self, payload: Dict[str, Any]) -> None:
        self.state.records[payload["entity"]] = {
            "name": payload["name"],
            "kind": payload["kind"],
            "host": payload["host"],
            "registered_at": payload["registered_at"],
            "lease_expiry": payload["lease_expiry"],
        }

    def _apply_lease_renew(self, payload: Dict[str, Any]) -> None:
        record = self.state.records.get(payload["entity"])
        if record is not None:
            record["lease_expiry"] = payload["lease_expiry"]

    def _apply_depart(self, payload: Dict[str, Any]) -> None:
        self.state.records.pop(payload["entity"], None)

    # -- profile-manager chain ------------------------------------------------

    def _apply_profile_add(self, payload: Dict[str, Any]) -> None:
        # deep-copied: profile-update patches the projected wire in place,
        # and the original dict belongs to an already-hashed ledger entry
        self.state.profiles[payload["entity"]] = {
            "profile": copy.deepcopy(payload["profile"]),
            "advertisements": list(payload["advertisements"]),
        }

    def _apply_profile_remove(self, payload: Dict[str, Any]) -> None:
        self.state.profiles.pop(payload["entity"], None)

    def _apply_profile_update(self, payload: Dict[str, Any]) -> None:
        stored = self.state.profiles.get(payload["entity"])
        if stored is not None:
            stored["profile"]["attributes"].update(payload["attributes"])

    # -- mediator chains ------------------------------------------------------

    def _apply_subscribe(self, payload: Dict[str, Any]) -> None:
        self.state.subscriptions[payload["sub_id"]] = {
            "subscriber": payload["subscriber"],
            "filter": payload["filter"],
            "one_time": payload["one_time"],
            "owner": payload["owner"],
            "query": payload["query"],
            "delivered": 0,
        }

    def _apply_unsubscribe(self, payload: Dict[str, Any]) -> None:
        self.state.subscriptions.pop(payload["sub_id"], None)

    def _apply_delivery(self, payload: Dict[str, Any]) -> None:
        subscription = self.state.subscriptions.get(payload["sub_id"])
        if subscription is not None:
            subscription["delivered"] += 1

    def _apply_retain(self, payload: Dict[str, Any]) -> None:
        key = tuple(payload["key"])
        self.state.retained[key] = {
            "first_seq": payload["first_seq"],
            "event": payload["event"],
        }

    def _apply_retain_evict(self, payload: Dict[str, Any]) -> None:
        self.state.retained.pop(tuple(payload["key"]), None)

    # -- query chain ----------------------------------------------------------

    def _apply_query(self, payload: Dict[str, Any]) -> None:
        self.state.queries.setdefault(payload["query_id"], []).append(payload)

    _PROJECTORS = {
        "register": _apply_register,
        "lease-renew": _apply_lease_renew,
        "depart": _apply_depart,
        "profile-add": _apply_profile_add,
        "profile-remove": _apply_profile_remove,
        "profile-update": _apply_profile_update,
        "subscribe": _apply_subscribe,
        "unsubscribe": _apply_unsubscribe,
        "delivery": _apply_delivery,
        "retain": _apply_retain,
        "retain-evict": _apply_retain_evict,
        "query": _apply_query,
    }


# -- snapshots: the comparable (and hashable) views ---------------------------


def snapshot_registrar(registrar) -> Dict[str, Dict[str, Any]]:
    """Live membership view in the projection's shape."""
    return {
        record.entity_hex: {
            "name": record.profile.name,
            "kind": record.kind,
            "host": record.host_id,
            "registered_at": record.registered_at,
            "lease_expiry": record.lease_expiry,
        }
        for record in registrar.records()
    }


def snapshot_profiles(profile_manager) -> Dict[str, Dict[str, Any]]:
    """Live profile view: wire forms plus advertisements, per entity."""
    out: Dict[str, Dict[str, Any]] = {}
    for profile in profile_manager.all_profiles():
        entity_hex = profile.entity_id.hex
        out[entity_hex] = {
            "profile": profile.to_wire(),
            "advertisements": [
                ad.to_wire()
                for ad in profile_manager.advertisements_of(entity_hex)],
        }
    return out


def snapshot_retained(mediator) -> List[List[Any]]:
    """Merged retained store in first-retained order (shard-invariant)."""
    entries = mediator.all_retained_entries()
    entries.sort(key=lambda entry: entry[0])
    return [[first_seq, list(key), event.to_wire()]
            for first_seq, key, event in entries]


def snapshot_subscriptions(mediator) -> Dict[str, Dict[str, Any]]:
    """Every live subscription (router + shards) in the projection shape."""
    out: Dict[str, Dict[str, Any]] = {}
    for subscription in mediator.all_subscriptions():
        out[str(subscription.sub_id)] = {
            "subscriber": subscription.subscriber.hex,
            "filter": subscription.filter.to_spec(),
            "one_time": subscription.one_time,
            "owner": (None if subscription.owner is None
                      else str(subscription.owner)),
            "query": subscription.query,
            "delivered": subscription.delivered,
        }
    return out


def live_snapshot(server) -> Dict[str, Any]:
    """The comparable view of a Context Server's live books."""
    return {
        "records": snapshot_registrar(server.registrar),
        "profiles": snapshot_profiles(server.profiles),
        "retained": snapshot_retained(server.mediator),
        "subscriptions": snapshot_subscriptions(server.mediator),
    }


def projection_snapshot(state: ProjectedState) -> Dict[str, Any]:
    """The projected state in the exact shape of :func:`live_snapshot`."""
    retained = [[value["first_seq"], list(key), value["event"]]
                for key, value in state.retained.items()]
    retained.sort(key=lambda item: item[0])
    return {
        "records": {entity: dict(record)
                    for entity, record in state.records.items()},
        "profiles": {entity: {"profile": dict(stored["profile"]),
                              "advertisements": list(stored["advertisements"])}
                     for entity, stored in state.profiles.items()},
        "retained": retained,
        "subscriptions": {str(sub_id): dict(facts)
                          for sub_id, facts in state.subscriptions.items()},
    }


def snapshot_digest(snapshot: Dict[str, Any]) -> str:
    """A stable digest of one snapshot — the smoke gate's equality check."""
    return blake2b(_canonical(snapshot).encode("utf-8"),
                   digest_size=16).hexdigest()

"""repro.ledger — the append-only context ledger (ROADMAP item 4).

Every mutation of a Context Server's books — registrations, lease
renewals, departures, profile changes, subscription changes, retained
updates, event deliveries and query lifecycle steps — is recorded as a
hash-chained :class:`~repro.ledger.ledger.LedgerEntry`. Context becomes a
replayable projection of the entry stream (``context = reachable ∩
live``) instead of opaque in-place state, which unlocks:

* **audit / explain** — :func:`~repro.ledger.timetravel.explain_query`
  links a query's binding back to the exact entries that produced it;
* **crash recovery by replay** —
  :class:`~repro.ledger.replay.ReplayProjector` rebuilds registrar,
  profile-manager and mediator-retained state from any prefix;
* **historical queries** — :class:`~repro.ledger.timetravel.AsOfView`
  runs the resolver against the projected state at time T, giving the
  paper's Figure-6 **When** section past-tense semantics.
"""

from repro.ledger.ledger import (
    ContextLedger,
    LedgerEntry,
    LedgerError,
    LEDGER_SCHEMA,
    load_ledger_jsonl,
    merge_entries,
    write_ledger_jsonl,
)
from repro.ledger.replay import (
    ProjectedState,
    ReplayProjector,
    live_snapshot,
    projection_snapshot,
    snapshot_digest,
)
from repro.ledger.timetravel import AsOfView, explain_query

__all__ = [
    "AsOfView",
    "ContextLedger",
    "LedgerEntry",
    "LedgerError",
    "LEDGER_SCHEMA",
    "ProjectedState",
    "ReplayProjector",
    "explain_query",
    "live_snapshot",
    "load_ledger_jsonl",
    "merge_entries",
    "projection_snapshot",
    "snapshot_digest",
    "write_ledger_jsonl",
]

"""Time-travel reads: ``as_of(T)`` resolution and query explanation.

This is the When section's past tense. A live query asks "bind me a
provider now (or when Bob enters L10.01)"; an :class:`AsOfView` asks the
same questions of the state the ledger had at any earlier instant —
"which entities were registered at T?", "what would this pattern have
resolved to?" — by projecting the entry prefix up to T and running the
*same* :class:`~repro.composition.resolver.QueryResolver` over the
projected profiles.

:func:`explain_query` is the audit path: given a query id, it walks the
merged entry stream and links the binding back to the exact hash-stable
entry references that produced it — the query's own lifecycle entries
plus, for every bound entity, the ``register`` entry that made it
eligible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.composition.resolver import QueryResolver
from repro.composition.templates import TemplateRegistry
from repro.core.types import TypeSpec
from repro.entities.profile import Profile
from repro.ledger.ledger import LedgerEntry
from repro.ledger.replay import ProjectedState


class AsOfView:
    """Read-only historical view of one range at a fixed instant.

    Built by ``ContextServer.as_of(T)`` from the projection of every
    entry with ``sim_time <= T``. Reads answer from the projected books;
    :meth:`resolve` runs a fresh resolver over the profiles that were
    live at T (no templates: spawnable processors are a present-tense
    capability, the historical question is which *registered* providers
    could have served the pattern).
    """

    def __init__(self, state: ProjectedState, registry, time: float):
        self.state = state
        self.registry = registry
        self.time = time
        self._resolver: Optional[QueryResolver] = None

    # -- membership -----------------------------------------------------------

    def registered(self, entity_hex: str) -> bool:
        return entity_hex in self.state.records

    def population(self) -> int:
        return len(self.state.records)

    def record(self, entity_hex: str) -> Optional[Dict[str, Any]]:
        return self.state.records.get(entity_hex)

    # -- profiles -------------------------------------------------------------

    def profile(self, entity_hex: str) -> Optional[Dict[str, Any]]:
        stored = self.state.profiles.get(entity_hex)
        return stored["profile"] if stored is not None else None

    def profile_by_name(self, name: str) -> Optional[Dict[str, Any]]:
        for stored in self.state.profiles.values():
            if stored["profile"]["name"] == name:
                return stored["profile"]
        return None

    def _live_profiles(self) -> List[Profile]:
        """Profiles of context-providing entities live at this instant.

        Mirrors ``ContextServer._resolver_profiles``: CAAs provide no
        context, so only ``ce`` / ``infrastructure`` records qualify.
        """
        profiles = []
        for entity_hex, record in self.state.records.items():
            if record["kind"] not in ("ce", "infrastructure"):
                continue
            stored = self.state.profiles.get(entity_hex)
            if stored is not None:
                profiles.append(Profile.from_wire(stored["profile"]))
        return profiles

    def providers_of(self, type_name: str) -> List[str]:
        """Entity hexes that offered ``type_name`` at this instant."""
        return [profile.entity_id.hex for profile in self._live_profiles()
                if profile.provides_type(type_name)]

    # -- retained events ------------------------------------------------------

    def retained_event(self, type_name: str, representation: str,
                       subject: object) -> Optional[Dict[str, Any]]:
        stored = self.state.retained.get((type_name, representation, subject))
        return stored["event"] if stored is not None else None

    # -- resolution -----------------------------------------------------------

    def resolve(self, wanted: TypeSpec):
        """Resolve a pattern against the books as they stood at T.

        Returns a :class:`~repro.composition.resolver.ConfigurationPlan`;
        raises :class:`~repro.core.errors.NoProviderError` when no
        then-registered provider could have served it — exactly like the
        live path.
        """
        if self._resolver is None:
            self._resolver = QueryResolver(
                self.registry,
                live_profiles=self._live_profiles,
                templates=TemplateRegistry(),
            )
        return self._resolver.resolve(wanted)


def explain_query(entries: List[LedgerEntry],
                  query_id: str) -> Optional[Dict[str, Any]]:
    """The audit trail of one query, as hash-stable entry references.

    ``entries`` is the merged family stream (``merge_entries`` order).
    Returns None when the query never touched this ledger; otherwise a
    document with the query's lifecycle steps, its final bindings, and
    for each bound entity the ``register`` entry in force at execution
    time.
    """
    lifecycle: List[LedgerEntry] = []
    for entry in entries:
        if entry.kind == "query" and entry.payload.get("query_id") == query_id:
            lifecycle.append(entry)
    if not lifecycle:
        return None

    # the outcome is the last *terminal* step: the "routed" bookkeeping
    # entry is appended after a same-instant execution, so last-entry-wins
    # would misreport an executed query as merely routed
    status = lifecycle[-1].payload.get("event")
    executed = None
    for entry in lifecycle:
        if entry.payload.get("event") in ("executed", "failed", "expired"):
            status = entry.payload.get("event")
        if entry.payload.get("event") == "executed":
            executed = entry
    bound: List[Dict[str, Any]] = []
    if executed is not None:
        for entity_hex in executed.payload.get("bound", []):
            register_ref = None
            for entry in entries:
                if entry.sim_time > executed.sim_time:
                    break
                if (entry.kind == "register"
                        and entry.payload.get("entity") == entity_hex):
                    register_ref = entry.ref()
                elif (entry.kind == "depart"
                        and entry.payload.get("entity") == entity_hex):
                    register_ref = None
            bound.append({"entity": entity_hex, "register": register_ref})

    return {
        "query_id": query_id,
        "steps": [dict(entry.payload, ref=entry.ref())
                  for entry in lifecycle],
        "status": status,
        "bound": bound,
    }

"""Structured tracing over simulated time.

A **span** is one named piece of work with a start and end in *simulated*
time, attributes, and a parent link; a **trace** is the tree of spans that
one operation (a query, an overlay route, a repair) produced, possibly
across many processes and hosts.

Propagation is ambient: the :class:`Tracer` keeps a stack of active span
contexts. When a :class:`~repro.net.transport.Process` sends a message, the
transport stamps the current context onto the message; when the message is
delivered, the transport re-activates that context around ``on_message``.
Components therefore never thread context by hand — they only open spans at
the points worth naming (query handling, overlay hops, resolution, repair,
delivery) and parentage falls out of the message flow, exactly like W3C
trace-context headers would carry it over HTTP.

Ids are sequential, not random: the simulation is deterministic and the
trace store should be too.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: wire keys used on Message.trace
TRACE_KEY = "trace"
SPAN_KEY = "span"


class Span:
    """One timed, attributed unit of work inside a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name",
                 "start", "end", "attributes")

    def __init__(self, trace_id: str, span_id: str, parent_id: Optional[str],
                 name: str, start: float,
                 attributes: Optional[Dict[str, Any]] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = attributes or {}

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        """Simulated-time length; None while the span is still open."""
        return None if self.end is None else self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def context(self) -> Dict[str, str]:
        return {TRACE_KEY: self.trace_id, SPAN_KEY: self.span_id}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        status = f"{self.duration:.3f}s" if self.closed else "open"
        return (f"<Span {self.name} {self.span_id} "
                f"trace={self.trace_id} {status}>")


class Trace:
    """Read-only view over the spans of one trace id."""

    def __init__(self, trace_id: str, spans: List[Span]):
        self.trace_id = trace_id
        self.spans = list(spans)
        self._by_id = {span.span_id: span for span in self.spans}

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def span(self, span_id: str) -> Optional[Span]:
        return self._by_id.get(span_id)

    def roots(self) -> List[Span]:
        """Spans with no parent *within this trace* (normally exactly one)."""
        return [span for span in self.spans
                if span.parent_id is None or span.parent_id not in self._by_id]

    def root(self) -> Optional[Span]:
        roots = self.roots()
        return roots[0] if len(roots) == 1 else None

    def children(self, span_id: str) -> List[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def is_connected(self) -> bool:
        """True when every span is reachable from a single root."""
        roots = self.roots()
        if len(roots) != 1:
            return False
        seen = set()
        frontier = [roots[0].span_id]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(child.span_id for child in self.children(current))
        return len(seen) == len(self.spans)

    def depth(self) -> int:
        """Longest root-to-leaf chain length (1 = root only)."""
        def deep(span: Span) -> int:
            kids = self.children(span.span_id)
            return 1 + (max(deep(kid) for kid in kids) if kids else 0)
        roots = self.roots()
        return max((deep(root) for root in roots), default=0)

    def find(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def duration(self) -> float:
        """Simulated-time extent of the whole trace (closed spans only)."""
        closed = [span for span in self.spans if span.closed]
        if not closed:
            return 0.0
        return (max(span.end for span in closed)
                - min(span.start for span in closed))

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]


class _Frame:
    """One stack entry: either a local span or a resumed remote context."""

    __slots__ = ("trace_id", "span_id", "span")

    def __init__(self, trace_id: str, span_id: str, span: Optional[Span]):
        self.trace_id = trace_id
        self.span_id = span_id
        self.span = span


class Tracer:
    """Creates spans, keeps the ambient context stack, stores finished traces.

    ``clock`` supplies the current simulated time. The store is bounded:
    at most ``max_traces`` traces are kept (oldest evicted first) and at
    most ``max_spans_per_trace`` spans are recorded per trace — a runaway
    loop degrades the trace, not the process.
    """

    def __init__(self, clock: Callable[[], float],
                 max_traces: int = 1024,
                 max_spans_per_trace: int = 10_000,
                 enabled: bool = True):
        self.clock = clock
        self.enabled = enabled
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._stack: List[_Frame] = []
        #: optional callable returning the ambient frame stack for the
        #: current execution context. The partitioned substrate sets this
        #: (to its per-lane stacks) so parallel lanes cannot interleave
        #: ambient context; None keeps the single built-in stack.
        self.stack_provider: Optional[Callable[[], List[_Frame]]] = None
        #: trace id -> spans, in insertion order (dicts preserve it)
        self._traces: Dict[str, List[Span]] = {}
        #: tracked explicitly so the record hot path never takes len() of
        #: the store (which a LaneSan wrapper would count as a whole-
        #: structure read, aliasing unrelated same-round trace creations)
        self._trace_count = 0
        self.dropped_spans = 0
        self.evicted_traces = 0

    def sanitize(self, sanitizer: Any, label: str = "obs.traces") -> None:
        """Swap the trace store for a LaneSan ownership-asserting view.

        Spans record from the lane executing the traced callback; a trace
        continued on another lane (context rides on messages) must reach it
        through the transport, i.e. in a later round — the wrapper turns a
        violation of that into a reported conflict.
        """
        self._traces = sanitizer.wrap_dict(self._traces, label)

    def _ambient(self) -> List[_Frame]:
        """The context stack for the current execution context."""
        provider = self.stack_provider
        return self._stack if provider is None else provider()

    # -- span lifecycle -------------------------------------------------------

    def start(self, name: str, **attributes: Any) -> Optional[Span]:
        """Open a span under the current context and make it current.

        Returns None when tracing is disabled (callers may pass that straight
        to :meth:`finish`/:meth:`leave`, which tolerate it).
        """
        if not self.enabled:
            return None
        stack = self._ambient()
        parent = stack[-1] if stack else None
        if parent is None:
            trace_id = f"t{next(self._trace_ids):06d}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(trace_id, f"s{next(self._span_ids):06d}", parent_id,
                    name, self.clock(), attributes)
        self._record(span)
        stack.append(_Frame(trace_id, span.span_id, span))
        return span

    def end(self, span: Optional[Span]) -> None:
        """Close a span (idempotent; safe on None)."""
        if span is not None and span.end is None:
            span.end = self.clock()

    def leave(self, span: Optional[Span]) -> None:
        """Pop a span from the context stack WITHOUT closing it.

        For operations that stay open across scheduled callbacks (a query
        awaiting its ack): the caller keeps the span and calls :meth:`end`
        later.
        """
        self._pop(span)

    def finish(self, span: Optional[Span]) -> None:
        """Close a span and remove it from the context stack."""
        self.end(span)
        self._pop(span)

    def _pop(self, span: Optional[Span]) -> None:
        if span is None:
            return
        stack = self._ambient()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].span is span:
                del stack[index]
                return

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Optional[Span]]:
        """``with tracer.span("cs.query", query=qid) as span: ...``"""
        span = self.start(name, **attributes)
        try:
            yield span
        finally:
            self.finish(span)

    @contextmanager
    def span_if_active(self, name: str, **attributes: Any) -> Iterator[Optional[Span]]:
        """Open a span only when already inside a trace.

        High-frequency sites (event fan-out, per-message hooks) use this so
        untraced background chatter does not mint a root trace per call.
        """
        if not self.active:
            yield None
            return
        span = self.start(name, **attributes)
        try:
            yield span
        finally:
            self.finish(span)

    # -- ambient context ------------------------------------------------------

    @property
    def active(self) -> bool:
        return bool(self._ambient())

    def current_context(self) -> Optional[Dict[str, str]]:
        """The context to stamp onto an outgoing message (None = untraced)."""
        if not self.enabled:
            return None
        stack = self._ambient()
        if not stack:
            return None
        top = stack[-1]
        return {TRACE_KEY: top.trace_id, SPAN_KEY: top.span_id}

    def push_remote(self, context: Optional[Dict[str, str]]) -> Optional[_Frame]:
        """Adopt an inbound message's context; returns the frame to pass to
        :meth:`pop_remote` (None when nothing was pushed).

        This is :meth:`activate` without the contextmanager machinery — the
        transport's delivery path calls it once per message, so the
        generator overhead is worth skipping.
        """
        if (not self.enabled or not context
                or TRACE_KEY not in context or SPAN_KEY not in context):
            return None
        frame = _Frame(str(context[TRACE_KEY]), str(context[SPAN_KEY]), None)
        self._ambient().append(frame)
        return frame

    def pop_remote(self, frame: Optional[_Frame]) -> None:
        """Undo :meth:`push_remote` (tolerates None and unbalanced stacks)."""
        if frame is None:
            return
        stack = self._ambient()
        if stack and stack[-1] is frame:
            stack.pop()
        elif frame in stack:
            stack.remove(frame)

    @contextmanager
    def activate(self, context: Optional[Dict[str, str]]) -> Iterator[None]:
        """Adopt a context carried by an inbound message (None = no-op)."""
        frame = self.push_remote(context)
        try:
            yield None
        finally:
            self.pop_remote(frame)

    # -- storage --------------------------------------------------------------

    def _record(self, span: Span) -> None:
        spans = self._traces.get(span.trace_id)
        if spans is None:
            while self._trace_count >= self.max_traces:
                oldest = next(iter(self._traces))
                del self._traces[oldest]
                self._trace_count -= 1
                self.evicted_traces += 1
            spans = self._traces[span.trace_id] = []
            self._trace_count += 1
        if len(spans) >= self.max_spans_per_trace:
            self.dropped_spans += 1
            return
        spans.append(span)

    def trace(self, trace_id: str) -> Optional[Trace]:
        spans = self._traces.get(trace_id)
        return Trace(trace_id, spans) if spans is not None else None

    def traces(self) -> List[Trace]:
        return [Trace(trace_id, spans)
                for trace_id, spans in self._traces.items()]

    def find_spans(self, name: str) -> List[Span]:
        """Every stored span with this name, across all traces."""
        return [span for spans in self._traces.values()
                for span in spans if span.name == name]

    def trace_of(self, span: Span) -> Optional[Trace]:
        return self.trace(span.trace_id)

    def clear(self) -> None:
        self._traces.clear()
        self._trace_count = 0
        self._ambient().clear()

    def __repr__(self) -> str:
        return (f"Tracer(traces={len(self._traces)}, "
                f"active_depth={len(self._ambient())})")

"""The metrics registry: counters, gauges and histograms with labels.

Design points, chosen for a deterministic simulation:

* **Label sets are explicit.** A metric declares its label names once; every
  update supplies values for exactly those names. Unknown or missing labels
  raise immediately — silent mislabelling is how dashboards lie.
* **Cardinality is bounded.** Each metric accepts at most ``max_series``
  distinct label-value combinations; further combinations collapse into a
  single ``__overflow__`` series (and are counted), so a bug that labels by
  message id cannot eat the process.
* **Histograms are reservoirs.** Samples are kept in a fixed-size reservoir
  (Vitter's algorithm R with a deterministic RNG seeded from the metric
  name), so long runs keep memory flat while quantiles stay representative.
  Count/sum/min/max are exact.
* **Snapshots are isolated.** :meth:`MetricsRegistry.snapshot` deep-copies
  the current state; later updates never mutate an already-taken snapshot.
"""

from __future__ import annotations

import json
import math
import random
import zlib
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: label-value tuple a metric files updates under once it is over budget
OVERFLOW_KEY = ("__overflow__",)

#: default bound on distinct label sets per metric
DEFAULT_MAX_SERIES = 1024

#: default histogram reservoir capacity
DEFAULT_RESERVOIR = 2048


class MetricError(ValueError):
    """A metric was declared or updated inconsistently."""


def _nearest_rank(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over pre-sorted samples; fraction in [0, 1]."""
    if not ordered:
        raise MetricError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise MetricError(f"fraction out of range: {fraction}")
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


class Reservoir:
    """Fixed-size uniform sample of an unbounded stream (algorithm R).

    The RNG is seeded deterministically (from ``seed``), so the same stream
    always yields the same sample — reruns of a benchmark reproduce their
    quantiles bit-for-bit.
    """

    __slots__ = ("capacity", "count", "total", "min", "max", "_samples", "_rng")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR, seed: int = 0):
        if capacity < 1:
            raise MetricError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._samples[slot] = value

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        return _nearest_rank(sorted(self._samples), fraction)

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p90": 0.0, "p95": 0.0, "p99": 0.0}
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": _nearest_rank(ordered, 0.50),
            "p90": _nearest_rank(ordered, 0.90),
            "p95": _nearest_rank(ordered, 0.95),
            "p99": _nearest_rank(ordered, 0.99),
        }

    def merge_summary(self, count: int, total: float, minimum: float,
                      maximum: float, samples: Sequence[float]) -> None:
        """Fold a pre-aggregated batch into this reservoir.

        The batch's retained ``samples`` flow through algorithm R; any
        unretained remainder (the batch saw more observations than it kept)
        adjusts the exact aggregates only, slightly underweighting the
        batch in the sample set but keeping count/sum/min/max exact. Used
        by the transport's per-partition staging buffers.
        """
        if count <= 0:
            return
        sampled_sum = 0.0
        for value in samples:
            sampled_sum += value
            self.observe(value)
        extra = count - len(samples)
        if extra > 0:
            self.count += extra
            self.total += total - sampled_sum
        if minimum < self.min:
            self.min = minimum
        if maximum > self.max:
            self.max = maximum

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples.clear()

    def __len__(self) -> int:
        return len(self._samples)


class _Metric:
    """State shared by the three metric kinds: naming, labels, cardinality."""

    kind = "metric"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (),
                 max_series: int = DEFAULT_MAX_SERIES):
        if not name:
            raise MetricError("metric name must be non-empty")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self.max_series = max_series
        self.overflowed = 0

    def _key(self, labels: Mapping[str, object], store: Dict) -> Tuple[str, ...]:
        """Validate a label mapping and return the series key for it."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.label_names)
        if key not in store and len(store) >= self.max_series:
            self.overflowed += 1
            return OVERFLOW_KEY
        return key

    def _label_map(self, key: Tuple[str, ...]) -> Dict[str, str]:
        if key == OVERFLOW_KEY:
            return {name: "__overflow__" for name in self.label_names} or \
                {"series": "__overflow__"}
        return dict(zip(self.label_names, key))


class Counter(_Metric):
    """A monotonically increasing count, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = (),
                 max_series: int = DEFAULT_MAX_SERIES):
        super().__init__(name, help, labels, max_series)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters only go up ({amount})")
        key = self._key(labels, self._values)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = tuple(str(labels[name]) for name in self.label_names)
        return self._values.get(key, 0.0)

    def total(self) -> float:
        return sum(self._values.values())

    def items(self) -> Dict[Tuple[str, ...], float]:
        return dict(self._values)

    def by_label(self) -> Dict[str, float]:
        """Single-label convenience: label value -> count."""
        if len(self.label_names) != 1:
            raise MetricError(f"{self.name} has labels {self.label_names}, "
                              "by_label() needs exactly one")
        return {key[0]: value for key, value in self._values.items()}

    def reset(self) -> None:
        self._values.clear()
        self.overflowed = 0


class Gauge(_Metric):
    """A value that can go up and down (queue depth, live entities...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = (),
                 max_series: int = DEFAULT_MAX_SERIES):
        super().__init__(name, help, labels, max_series)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels, self._values)] = value

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels, self._values)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = tuple(str(labels[name]) for name in self.label_names)
        return self._values.get(key, 0.0)

    def items(self) -> Dict[Tuple[str, ...], float]:
        return dict(self._values)

    def reset(self) -> None:
        self._values.clear()
        self.overflowed = 0


class Histogram(_Metric):
    """Distribution of observations; one bounded reservoir per label set."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = (),
                 max_series: int = DEFAULT_MAX_SERIES,
                 reservoir_size: int = DEFAULT_RESERVOIR):
        super().__init__(name, help, labels, max_series)
        self.reservoir_size = reservoir_size
        self._series: Dict[Tuple[str, ...], Reservoir] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels, self._series)
        reservoir = self._series.get(key)
        if reservoir is None:
            # deterministic per-series seed: same run, same quantiles
            seed = zlib.crc32(("/".join((self.name,) + key)).encode())
            reservoir = self._series[key] = Reservoir(self.reservoir_size, seed)
        reservoir.observe(value)

    def series(self, **labels: object) -> Reservoir:
        key = tuple(str(labels[name]) for name in self.label_names)
        reservoir = self._series.get(key)
        if reservoir is None:
            seed = zlib.crc32(("/".join((self.name,) + key)).encode())
            reservoir = self._series[key] = Reservoir(self.reservoir_size, seed)
        return reservoir

    def merge_summary(self, count: int, total: float, minimum: float,
                      maximum: float, samples: Sequence[float],
                      **labels: object) -> None:
        """Bulk-fold a pre-aggregated batch (see Reservoir.merge_summary)."""
        self.series(**labels).merge_summary(count, total, minimum, maximum,
                                            samples)

    def items(self) -> Dict[Tuple[str, ...], Reservoir]:
        return dict(self._series)

    # label-less conveniences -------------------------------------------------

    @property
    def count(self) -> int:
        return sum(r.count for r in self._series.values())

    @property
    def sum(self) -> float:
        return sum(r.total for r in self._series.values())

    @property
    def samples(self) -> List[float]:
        out: List[float] = []
        for reservoir in self._series.values():
            out.extend(reservoir.samples)
        return out

    def mean(self) -> float:
        count = self.count
        return self.sum / count if count else 0.0

    def quantile(self, fraction: float) -> float:
        return _nearest_rank(sorted(self.samples), fraction)

    def summary(self, **labels: object) -> Dict[str, float]:
        if labels or not self.label_names:
            return self.series(**labels).summary()
        merged = Reservoir(max(1, self.reservoir_size))
        for value in self.samples:
            merged.observe(value)
        merged.count = self.count
        merged.total = self.sum
        return merged.summary()

    def reset(self) -> None:
        self._series.clear()
        self.overflowed = 0


class MetricsRegistry:
    """Owns every metric of one deployment; get-or-create by name."""

    def __init__(self, max_series: int = DEFAULT_MAX_SERIES):
        self.max_series = max_series
        self._metrics: Dict[str, _Metric] = {}

    # -- declaration ----------------------------------------------------------

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", labels: Sequence[str] = (),
                  reservoir_size: int = DEFAULT_RESERVOIR) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            self._check_redeclare(existing, Histogram, labels)
            return existing  # type: ignore[return-value]
        metric = Histogram(name, help, labels, self.max_series, reservoir_size)
        self._metrics[name] = metric
        return metric

    def _declare(self, cls, name: str, help: str, labels: Sequence[str]):
        existing = self._metrics.get(name)
        if existing is not None:
            self._check_redeclare(existing, cls, labels)
            return existing
        metric = cls(name, help, labels, self.max_series)
        self._metrics[name] = metric
        return metric

    @staticmethod
    def _check_redeclare(existing: _Metric, cls, labels: Sequence[str]) -> None:
        if not isinstance(existing, cls):
            raise MetricError(
                f"{existing.name} already declared as {existing.kind}")
        if existing.label_names != tuple(labels):
            raise MetricError(
                f"{existing.name} already declared with labels "
                f"{existing.label_names}, not {tuple(labels)}")

    # -- access ---------------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshot / export ----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Deep, isolated copy of the registry state.

        ``{name: {"type", "help", "labels", "series": [{"labels", ...}]}}``;
        counter/gauge series carry ``value``, histogram series a ``summary``
        (exact count/sum/min/max plus reservoir quantiles).
        """
        out: Dict[str, Dict] = {}
        for name, metric in self._metrics.items():
            entry: Dict[str, object] = {
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.label_names),
                "overflowed": metric.overflowed,
            }
            series = []
            if isinstance(metric, Histogram):
                for key, reservoir in sorted(metric.items().items()):
                    series.append({"labels": metric._label_map(key),
                                   "summary": reservoir.summary()})
            else:
                for key, value in sorted(metric.items().items()):  # type: ignore[attr-defined]
                    series.append({"labels": metric._label_map(key),
                                   "value": value})
            entry["series"] = series
            out[name] = entry
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self, names: Optional[Iterable[str]] = None) -> None:
        """Zero the named metrics (or all of them), keeping declarations."""
        doomed = list(names) if names is not None else list(self._metrics)
        for name in doomed:
            metric = self._metrics.get(name)
            if metric is not None:
                metric.reset()  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"

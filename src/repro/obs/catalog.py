"""The declared metrics catalog: every ``sci.*`` series the tree may emit.

A metric that is not declared here does not exist — the static analysis
suite (:mod:`repro.analysis.catalog_lint`) cross-checks every
``metrics.counter/gauge/histogram(...)`` call site in ``src/`` against this
table and fails CI on undeclared names, kind or label mismatches, orphaned
declarations and names that break the ``<layer>.<subsystem>.<event>``
convention (three or more dot segments, lower_snake words).

Declarations are pure literals on purpose: the linter reads this file as an
AST (it never imports analysed code), so every ``_declare(...)`` call below
must keep literal arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

KINDS = ("counter", "gauge", "histogram")


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric series."""

    name: str
    kind: str
    help: str
    labels: Tuple[str, ...] = ()


CATALOG: Dict[str, MetricSpec] = {}


def _declare(name: str, kind: str, help: str,
             labels: Tuple[str, ...] = ()) -> None:
    if kind not in KINDS:
        raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
    if name in CATALOG:
        raise ValueError(f"metric {name!r} declared twice")
    CATALOG[name] = MetricSpec(name=name, kind=kind, help=help, labels=labels)


# -- net: transport, dedup, retry ---------------------------------------------

_declare("net.messages.sent", "counter",
         "messages entering the network", labels=("kind",))
_declare("net.messages.delivered", "counter",
         "messages handled per host — the Figure-1 hotspot metric",
         labels=("host",))
_declare("net.messages.dropped", "counter",
         "messages lost to failure, partition or drop rate")
_declare("net.messages.undeliverable", "counter",
         "messages to unknown/departed recipients")
_declare("net.delivery.latency", "histogram",
         "end-to-end delivery latency (simulated time units)")
_declare("net.dedup.suppressed", "counter",
         "duplicate (sender, msg_id) arrivals dropped before the handler")
_declare("net.dedup.replayed_replies", "counter",
         "cached replies re-sent in response to duplicate requests")
_declare("net.retry.attempts", "counter",
         "request retransmissions, by request kind", labels=("kind",))
_declare("net.retry.exhausted", "counter",
         "requests whose whole retry budget expired unanswered",
         labels=("kind",))
_declare("net.retry.recovered", "counter",
         "requests answered only after at least one retransmission",
         labels=("kind",))

# -- events: mediator dispatch and sequenced streams --------------------------

_declare("mediator.events.published", "counter",
         "events published per range", labels=("range",))
_declare("mediator.events.delivered", "counter",
         "matched events forwarded to subscribers", labels=("range",))
_declare("mediator.index.hits", "counter",
         "dispatch candidates served from exact-match index buckets",
         labels=("range",))
_declare("mediator.index.residual_scans", "counter",
         "dispatch candidates scanned from the non-indexable residual list",
         labels=("range",))
_declare("mediator.retained.evicted", "counter",
         "retained events dropped by the oldest-first cap", labels=("range",))
_declare("mediator.seq.ack_exhausted", "counter",
         "reliable deliveries whose whole retransmission budget expired",
         labels=("range",))
_declare("mediator.seq.resync_replays", "counter",
         "retained events replayed to resync a gapped subscriber",
         labels=("range",))
_declare("mediator.seq.gaps", "counter",
         "sequence holes opened in subscriber streams")
_declare("mediator.seq.dup_dropped", "counter",
         "stale or duplicate sequenced deliveries dropped")
_declare("mediator.seq.resyncs", "counter",
         "resync requests issued for holes that outlived retransmission")
_declare("mediator.opgraph.nodes", "gauge",
         "live deduplicated operator-graph nodes", labels=("range",))
_declare("mediator.opgraph.reuse_hits", "counter",
         "operator materialisations served by an existing node",
         labels=("range",))
_declare("mediator.opgraph.evals", "counter",
         "incremental operator evaluations on the publish path",
         labels=("range",))
_declare("mediator.opgraph.fanout", "counter",
         "operator-graph result deliveries fanned out to sinks",
         labels=("range",))

# -- overlay: SCINET routing, broadcast, failure detection --------------------

_declare("overlay.node.load", "counter",
         "route steps handled per overlay node", labels=("node",))
_declare("overlay.route.delivered", "counter",
         "routed payloads that reached their key owner")
_declare("overlay.route.hops", "histogram",
         "overlay hops per delivered route")
_declare("overlay.directory.lookups", "counter",
         "replicated range-directory reads", labels=("hit",))
_declare("overlay.bcast.sent", "counter",
         "broadcast messages forwarded, by mode", labels=("mode",))
_declare("overlay.bcast.dup_suppressed", "counter",
         "duplicate broadcast arrivals suppressed by the dedup set")
_declare("overlay.fd.heartbeats", "counter",
         "o-hb probes sent to leaf neighbours")
_declare("overlay.fd.suspicions", "counter",
         "leaf neighbours suspected after fd_timeout of silence")
_declare("overlay.fd.removals", "counter",
         "members ejected by heartbeat suspicion (vs oracle fail calls)")

# -- hierarchy baseline -------------------------------------------------------

_declare("hierarchy.node.load", "counter",
         "messages handled per tree server", labels=("node", "role"))
_declare("hierarchy.queue.delay", "histogram",
         "service-time queueing delay at tree servers")

# -- server: registrar and context server -------------------------------------

_declare("registrar.expiry.pops", "counter",
         "expiry-heap entries popped during lease sweeps", labels=("range",))
_declare("cs.query.routed", "counter",
         "queries routed per range and outcome", labels=("range", "status"))

# -- sharded context server ---------------------------------------------------

_declare("cs.shard.routed", "counter",
         "publishes routed by the mediator router to an owner shard",
         labels=("range",))
_declare("cs.shard.dispatched", "counter",
         "shard-event forwards dispatched to routed subscriptions",
         labels=("range",))
_declare("cs.shard.forwarded", "counter",
         "events a shard forwarded to the router for routed subscriptions",
         labels=("range",))
_declare("cs.shard.handoffs", "counter",
         "in-flight publishes handed off after an ownership change",
         labels=("range",))
_declare("cs.shard.moved_subs", "counter",
         "subscriptions migrated between shards on rebalance",
         labels=("range",))
_declare("cs.shard.moved_retained", "counter",
         "retained events migrated between shards on rebalance",
         labels=("range",))

# -- context ledger -----------------------------------------------------------

_declare("cs.ledger.appends", "counter",
         "ledger entries appended, by entry kind",
         labels=("range", "kind"))
_declare("cs.ledger.replays", "counter",
         "replay projections rebuilt from a ledger prefix",
         labels=("range",))
_declare("cs.ledger.asof_reads", "counter",
         "historical as-of views answered from the ledger",
         labels=("range",))

# -- composition: configuration graphs and resolver ---------------------------

_declare("config.graph.builds", "counter",
         "configuration graphs instantiated", labels=("range",))
_declare("config.graph.repairs", "counter",
         "configurations re-composed after a failure", labels=("range",))
_declare("config.graph.reuse_hits", "counter",
         "queries served by an existing graph", labels=("range",))
_declare("resolver.index.hits", "counter",
         "candidate lookups served from the profile index", labels=("range",))
_declare("resolver.index.rebuilds", "counter",
         "profile index rebuilds triggered by feed changes", labels=("range",))
_declare("resolver.shard.rebuilds", "counter",
         "per-shard provider slice rebuilds on stale tokens",
         labels=("range",))
_declare("resolver.shard.deltas", "counter",
         "single-profile deltas applied in place of slice rebuilds",
         labels=("range",))

# -- open-loop workload harness -----------------------------------------------

_declare("workload.ops.generated", "counter",
         "open-loop operations generated, by kind", labels=("kind",))
_declare("workload.events.delivered", "counter",
         "events received by workload sinks")
_declare("workload.delivery.latency", "histogram",
         "sim-time publish-to-delivery latency at workload sinks")

# -- experiments --------------------------------------------------------------

_declare("fig1.delivery.latency", "histogram",
         "end-to-end delivery time of the Figure-1 workload")
_declare("fig1.route.hops", "histogram",
         "hops per delivered Figure-1 message")

"""The per-deployment observability bundle.

One :class:`Observability` instance rides on each
:class:`~repro.net.transport.Network` (as ``network.obs``): a metrics
registry, a tracer clocked by the network's scheduler, and a scheduler
profiler. Components reach it through their process's network, so a whole
deployment — Context Servers, overlay nodes, mediators, entities — records
into one coherent place.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import SchedulerProfiler
from repro.obs.tracing import Tracer


class Observability:
    """Metrics + tracing + scheduler profiling for one deployment."""

    def __init__(self, scheduler, max_traces: int = 1024,
                 registry: Optional[MetricsRegistry] = None,
                 profile_scheduler: bool = True):
        self.scheduler = scheduler
        self.metrics = registry or MetricsRegistry()
        self.tracer = Tracer(clock=lambda: scheduler.now,
                             max_traces=max_traces)
        self.profiler = SchedulerProfiler()
        # Attach to the scheduler unless another deployment got there first
        # (two Networks may share one Scheduler in mixed benchmarks).
        if profile_scheduler and getattr(scheduler, "profiler", None) is None:
            scheduler.profiler = self.profiler
        # A partitioned scheduler supplies per-lane ambient stacks so that
        # parallel lanes cannot interleave trace context (duck-typed).
        ambient = getattr(scheduler, "ambient_stack", None)
        if ambient is not None:
            self.tracer.stack_provider = ambient

    def __repr__(self) -> str:
        return (f"Observability(metrics={len(self.metrics)}, "
                f"traces={len(self.tracer.traces())}, "
                f"events={self.profiler.events})")

"""Instrumented experiment runners and offline claim checkers.

The Figure-1 benchmark and the overlay regression tests need the same
thing: run the two routing systems under an identical workload and read
the results *from the metrics registry* rather than from ad-hoc counters.
The artefact the runners produce (see :func:`figure1_artifact`) is a
self-contained multi-run document — the paper's hotspot and log-growth
claims can be re-checked from the JSON alone, without re-running the
simulation (:func:`check_hotspot_claim`, :func:`check_log_growth_claim`).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional

from repro.core.ids import GUID
from repro.net.transport import FixedLatency, Network
from repro.obs.export import METRICS_SCHEMA
from repro.overlay.hierarchy import HierarchyNetwork
from repro.overlay.scinet import SCINet

#: workload defaults shared with benchmarks/bench_fig1_scinet.py
MESSAGES = 300
SERVICE_TIME = 0.05

#: metric the runners record end-to-end delivery time into
FIG1_LATENCY = "fig1.delivery.latency"
#: metric the runners record per-delivery hop counts into
FIG1_HOPS = "fig1.route.hops"


def run_overlay_instrumented(n: int, messages: int = MESSAGES,
                             seed: int = 0,
                             partitions: Optional[int] = None) -> Dict[str, Any]:
    """Route a uniform workload over an N-range SCINET; return a run record.

    ``partitions`` runs the same workload on the partitioned scheduler
    (one lane per partition) instead of the classic single-heap one; the
    run record must come out identical either way.
    """
    net = Network(latency_model=FixedLatency(1.0), seed=seed,
                  partitions=partitions)
    sci = SCINet(net)
    nodes = [sci.create_node(f"h{i}", range_name=f"r{i}") for i in range(n)]
    latency = net.obs.metrics.histogram(
        FIG1_LATENCY, "end-to-end delivery time of the Figure-1 workload")
    hops_hist = net.obs.metrics.histogram(
        FIG1_HOPS, "hops per delivered Figure-1 message")
    rng = random.Random(seed)
    for _ in range(messages):
        key = GUID(rng.getrandbits(128))
        target = sci.closest_node(key)
        sent_at = net.scheduler.now

        def on_delivery(kind, body, hop_count, _t=sent_at):
            hops_hist.observe(hop_count)
            latency.observe(net.scheduler.now - _t)

        target.on_delivery.append(on_delivery)
        nodes[rng.randrange(n)].route(key, "probe", {})
        net.scheduler.run_for(40)
        target.on_delivery.remove(on_delivery)
    record = _run_record("overlay", n, messages, seed, net)
    close = getattr(net.scheduler, "close", None)
    if close is not None:
        close()
    return record


def run_hierarchy_instrumented(n: int, messages: int = MESSAGES,
                               seed: int = 0,
                               service_time: float = SERVICE_TIME) -> Dict[str, Any]:
    """Route the same workload over a server tree; return a run record."""
    net = Network(latency_model=FixedLatency(1.0), seed=seed)
    tree = HierarchyNetwork(net, leaf_count=n, branching=4,
                            service_time=service_time)
    latency = net.obs.metrics.histogram(
        FIG1_LATENCY, "end-to-end delivery time of the Figure-1 workload")
    hops_hist = net.obs.metrics.histogram(
        FIG1_HOPS, "hops per delivered Figure-1 message")
    rng = random.Random(seed)
    for _ in range(messages):
        source = rng.randrange(n)
        target = rng.randrange(n)
        sent_at = net.scheduler.now
        leaf = tree.leaf(target)

        def on_delivery(kind, body, hop_count, _t=sent_at):
            hops_hist.observe(hop_count)
            latency.observe(net.scheduler.now - _t)

        leaf.on_delivery.append(on_delivery)
        tree.leaf(source).route(f"leaf-{target}", "probe", {})
        net.scheduler.run_for(40)
        leaf.on_delivery.remove(on_delivery)
    return _run_record("hierarchy", n, messages, seed, net)


def _run_record(system: str, n: int, messages: int, seed: int,
                net: Network) -> Dict[str, Any]:
    snapshot = net.obs.metrics.snapshot()
    record = {
        "system": system,
        "n": n,
        "messages": messages,
        "seed": seed,
        "metrics": snapshot,
        "summary": run_summary(system, snapshot),
        "profile": net.obs.profiler.snapshot() if net.obs.profiler else None,
    }
    return record


# -- reading run records (works on live snapshots AND loaded JSON) ------------


def series_values(snapshot: Dict[str, Any], name: str) -> Dict[str, float]:
    """``{joined-label-values: value}`` for a counter/gauge in a snapshot."""
    metric = snapshot.get(name)
    if metric is None:
        return {}
    out = {}
    for entry in metric["series"]:
        key = "/".join(str(v) for v in entry["labels"].values()) or "-"
        out[key] = entry["value"]
    return out


def histogram_summary(snapshot: Dict[str, Any], name: str,
                      labels: Optional[Dict[str, Any]] = None) -> Optional[Dict[str, float]]:
    """The summary dict of one histogram series (default: the bare series)."""
    metric = snapshot.get(name)
    if metric is None:
        return None
    wanted = labels or {}
    for entry in metric["series"]:
        if entry["labels"] == wanted:
            return entry["summary"]
    return None


def run_summary(system: str, snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Headline numbers for one run, derived purely from the snapshot."""
    load_metric = ("overlay.node.load" if system == "overlay"
                   else "hierarchy.node.load")
    loads = series_values(snapshot, load_metric)
    mean_load = (sum(loads.values()) / len(loads)) if loads else 0.0
    hops = histogram_summary(snapshot, FIG1_HOPS) or {}
    latency = histogram_summary(snapshot, FIG1_LATENCY) or {}
    summary: Dict[str, Any] = {
        "delivered": int(hops.get("count", 0)),
        "hops": hops.get("mean", 0.0),
        "latency": latency.get("mean", 0.0),
        "max_load": max(loads.values()) if loads else 0,
        "mean_load": mean_load,
        "hotspot": (max(loads.values()) / mean_load) if mean_load else 0.0,
    }
    if system == "hierarchy":
        root = [value for key, value in loads.items() if key.endswith("/root")]
        summary["root_load"] = root[0] if root else 0
    return summary


# -- the artefact -------------------------------------------------------------


def figure1_artifact(sizes: Iterable[int] = (8, 32, 128),
                     messages: int = MESSAGES,
                     seed: int = 0,
                     meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Run both systems at each size; return the multi-run metrics document."""
    runs: List[Dict[str, Any]] = []
    for n in sizes:
        runs.append(run_overlay_instrumented(n, messages, seed))
        runs.append(run_hierarchy_instrumented(n, messages, seed))
    return {
        "schema": METRICS_SCHEMA,
        "meta": {"experiment": "fig1-scinet-vs-hierarchy",
                 "messages": messages, "seed": seed, **(meta or {})},
        "runs": runs,
    }


def _find_run(artifact: Dict[str, Any], system: str, n: int) -> Dict[str, Any]:
    for run in artifact["runs"]:
        if run["system"] == system and run["n"] == n:
            return run
    raise KeyError(f"no {system} run at n={n} in artifact")


def check_hotspot_claim(artifact: Dict[str, Any], n: int) -> Dict[str, Any]:
    """Figure-1 hotspot shape, re-checked offline from the artefact.

    The hierarchy's *root server* handles more messages than the busiest
    overlay node does — the bottleneck the overlay design removes.
    """
    tree = _find_run(artifact, "hierarchy", n)
    overlay = _find_run(artifact, "overlay", n)
    root_load = tree["summary"].get("root_load", 0)
    overlay_max = overlay["summary"]["max_load"]
    return {
        "n": n,
        "hierarchy_root_load": root_load,
        "overlay_max_load": overlay_max,
        "hierarchy_hotspot": tree["summary"]["hotspot"],
        "overlay_hotspot": overlay["summary"]["hotspot"],
        "ok": (root_load > overlay_max
               and tree["summary"]["hotspot"] > overlay["summary"]["hotspot"]),
    }


def check_log_growth_claim(artifact: Dict[str, Any], small_n: int,
                           large_n: int,
                           max_extra_hops: float = 2.5) -> Dict[str, Any]:
    """Overlay hop count grows ~log16(N), not linearly, across the sizes."""
    small = _find_run(artifact, "overlay", small_n)["summary"]["hops"]
    large = _find_run(artifact, "overlay", large_n)["summary"]["hops"]
    return {
        "small_n": small_n, "large_n": large_n,
        "small_hops": small, "large_hops": large,
        "ok": large < small + max_extra_hops,
    }

"""Exporting observability data: JSON artefacts, JSON-lines traces, tables.

The benchmarks emit two artefact kinds next to their text reports:

* a **metrics artefact** (``*.metrics.json``): one document holding registry
  snapshots plus run metadata, validated by :func:`validate_metrics_artifact`
  — the claim checks in :mod:`repro.obs.experiments` re-derive the paper's
  Figure-1 shape from this document alone, without re-running the bench;
* a **trace artefact** (``*.trace.jsonl``): one span per line, the format
  trace viewers and ad-hoc ``jq`` both cope with.

The schema validator is deliberately hand-rolled (the image has no
``jsonschema``); it checks structure and types, not business rules.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Trace, Tracer

#: artefact format marker; bump on incompatible changes
METRICS_SCHEMA = "sci.obs.metrics/1"
TRACE_SCHEMA = "sci.obs.trace/1"


class ArtifactError(ValueError):
    """An exported document does not match the artefact schema."""


# -- metrics artefacts --------------------------------------------------------


def metrics_artifact(registry: MetricsRegistry,
                     meta: Optional[Dict[str, Any]] = None,
                     profile: Optional[List[Dict[str, Any]]] = None) -> Dict[str, Any]:
    """Build the canonical metrics document from a registry snapshot."""
    doc: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "meta": dict(meta or {}),
        "metrics": registry.snapshot(),
    }
    if profile is not None:
        doc["profile"] = list(profile)
    return doc


def write_metrics_json(registry: MetricsRegistry, path: Union[str, Path],
                       meta: Optional[Dict[str, Any]] = None,
                       profile: Optional[List[Dict[str, Any]]] = None) -> Dict[str, Any]:
    """Write a validated metrics artefact; returns the document."""
    return write_metrics_document(metrics_artifact(registry, meta, profile),
                                  path)


def write_metrics_document(doc: Dict[str, Any],
                           path: Union[str, Path]) -> Dict[str, Any]:
    """Validate and write an already-built artefact (e.g. a multi-run doc)."""
    validate_metrics_artifact(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return doc


def _fail(where: str, problem: str) -> None:
    raise ArtifactError(f"{where}: {problem}")


def _validate_series_entry(where: str, entry: Any, kind: str) -> None:
    if not isinstance(entry, dict):
        _fail(where, f"series entry must be an object, got {type(entry).__name__}")
    if not isinstance(entry.get("labels"), dict):
        _fail(where, "series entry missing 'labels' object")
    if kind == "histogram":
        summary = entry.get("summary")
        if not isinstance(summary, dict):
            _fail(where, "histogram series missing 'summary' object")
        for field in ("count", "sum", "mean", "min", "max", "p50", "p95"):
            if not isinstance(summary.get(field), (int, float)):
                _fail(where, f"histogram summary missing numeric {field!r}")
        if summary["count"] < 0:
            _fail(where, "histogram count is negative")
    else:
        value = entry.get("value")
        if not isinstance(value, (int, float)):
            _fail(where, "series entry missing numeric 'value'")
        if kind == "counter" and value < 0:
            _fail(where, "counter value is negative")


def validate_metrics_snapshot(snapshot: Any, where: str = "metrics") -> None:
    """Validate one registry snapshot (the ``metrics`` section)."""
    if not isinstance(snapshot, dict):
        _fail(where, "must be an object of metric name -> entry")
    for name, entry in snapshot.items():
        spot = f"{where}[{name!r}]"
        if not isinstance(entry, dict):
            _fail(spot, "metric entry must be an object")
        kind = entry.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            _fail(spot, f"unknown metric type {kind!r}")
        if not isinstance(entry.get("labels"), list):
            _fail(spot, "missing 'labels' list")
        series = entry.get("series")
        if not isinstance(series, list):
            _fail(spot, "missing 'series' list")
        for index, item in enumerate(series):
            _validate_series_entry(f"{spot}.series[{index}]", item, kind)


def validate_metrics_artifact(doc: Any) -> None:
    """Raise :class:`ArtifactError` unless ``doc`` is a valid artefact.

    Accepts either a single-snapshot document (``metrics`` object) or a
    multi-run document (``runs`` list whose entries each embed a snapshot).
    """
    if not isinstance(doc, dict):
        _fail("document", "must be a JSON object")
    if doc.get("schema") != METRICS_SCHEMA:
        _fail("document", f"schema must be {METRICS_SCHEMA!r}, "
              f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("meta", {}), dict):
        _fail("document", "'meta' must be an object")
    if "metrics" in doc:
        validate_metrics_snapshot(doc["metrics"])
    elif "runs" in doc:
        runs = doc["runs"]
        if not isinstance(runs, list) or not runs:
            _fail("document", "'runs' must be a non-empty list")
        for index, run in enumerate(runs):
            where = f"runs[{index}]"
            if not isinstance(run, dict):
                _fail(where, "run must be an object")
            for field in ("system", "n"):
                if field not in run:
                    _fail(where, f"run missing {field!r}")
            validate_metrics_snapshot(run.get("metrics"), f"{where}.metrics")
    else:
        _fail("document", "needs a 'metrics' snapshot or a 'runs' list")
    if "profile" in doc:
        profile = doc["profile"]
        if not isinstance(profile, list):
            _fail("document", "'profile' must be a list")
        for index, site in enumerate(profile):
            if not isinstance(site, dict) or "site" not in site:
                _fail(f"profile[{index}]", "profile entry missing 'site'")


def load_metrics_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read an artefact back and validate it before returning."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    validate_metrics_artifact(doc)
    return doc


# -- trace artefacts ----------------------------------------------------------


def span_lines(source: Union[Tracer, Trace, Iterable[Span]]) -> Iterator[str]:
    """Yield one JSON line per span (whole tracer, one trace, or spans)."""
    if isinstance(source, Tracer):
        spans: Iterable[Span] = (span for trace in source.traces()
                                 for span in trace)
    elif isinstance(source, Trace):
        spans = iter(source)
    else:
        spans = source
    for span in spans:
        record = span.to_dict()
        record["schema"] = TRACE_SCHEMA
        yield json.dumps(record, sort_keys=True)


def write_trace_jsonl(source: Union[Tracer, Trace, Iterable[Span]],
                      path: Union[str, Path]) -> int:
    """Write spans as JSON lines; returns how many were written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in span_lines(source):
            handle.write(line + "\n")
            count += 1
    return count


def load_trace_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("schema") != TRACE_SCHEMA:
            raise ArtifactError(f"span line has schema {record.get('schema')!r}, "
                                f"expected {TRACE_SCHEMA!r}")
        records.append(record)
    return records


# -- human-readable tables ----------------------------------------------------


def summary_table(registry: MetricsRegistry, prefix: str = "") -> str:
    """A plain-text table of every metric (optionally name-filtered)."""
    snapshot = registry.snapshot()
    lines = [f"{'metric':<38} {'labels':<30} {'value':>14}"]
    for name in sorted(snapshot):
        if prefix and not name.startswith(prefix):
            continue
        entry = snapshot[name]
        for item in entry["series"]:
            labels = ",".join(f"{k}={v}" for k, v in
                              sorted(item["labels"].items())) or "-"
            if entry["type"] == "histogram":
                summary = item["summary"]
                value = (f"n={summary['count']} mean={summary['mean']:.3f} "
                         f"p95={summary['p95']:.3f}")
                lines.append(f"{name:<38.38} {labels:<30.30} {value:>14}")
            else:
                lines.append(f"{name:<38.38} {labels:<30.30} "
                             f"{item['value']:>14.6g}")
    return "\n".join(lines)


def trace_table(trace: Trace) -> str:
    """An indented tree rendering of one trace."""
    lines = [f"trace {trace.trace_id} — {len(trace)} span(s), "
             f"{trace.duration():.3f} sim s"]

    def walk(span: Span, depth: int) -> None:
        duration = f"{span.duration:.3f}" if span.closed else "open"
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
        lines.append(f"{'  ' * depth}- {span.name} [{duration}] "
                     f"@{span.start:.3f} {attrs}".rstrip())
        for child in trace.children(span.span_id):
            walk(child, depth + 1)

    for root in trace.roots():
        walk(root, 1)
    return "\n".join(lines)

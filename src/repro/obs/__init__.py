"""Cross-cutting observability for the SCI reproduction.

The paper's central claims are latency and load claims — overlay routing
avoids hierarchy hotspots, re-composition is fast, discovery latency stays
flat — so every subsystem that carries a query or an event needs to be
measurable. This package provides the three instruments the rest of the
middleware records into:

``repro.obs.metrics``
    A metrics registry (counters, gauges, histograms with labels) with
    isolated snapshots and JSON export. Backs — and subsumes — the
    bench-specific :class:`repro.net.stats.MessageStats`.
``repro.obs.tracing``
    Structured traces: spans with parent/child links and simulated-time
    durations, carried across processes on :class:`repro.net.message.Message`
    metadata, so one query can be followed CS -> overlay hops -> remote
    resolver -> mediator delivery.
``repro.obs.profiling``
    Scheduler profiling: per-callback-site event counts, wall-clock cost and
    scheduling lag, with a top-N report.
``repro.obs.export``
    JSON-lines span export, metrics JSON artefacts with a validating
    mini-schema, and plain-text summary tables.
``repro.obs.hub``
    :class:`~repro.obs.hub.Observability` bundles one registry, one tracer
    and one profiler per deployment; every :class:`~repro.net.transport.Network`
    owns one as ``network.obs``.

(:mod:`repro.obs.experiments` holds instrumented experiment runners shared
by the benchmarks and the regression tests; it is imported explicitly, not
re-exported here, because it pulls in the overlay layers.)
"""

from repro.obs.hub import Observability
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Reservoir
from repro.obs.profiling import SchedulerProfiler
from repro.obs.tracing import Span, Trace, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Reservoir",
    "SchedulerProfiler",
    "Span",
    "Trace",
    "Tracer",
]

"""Scheduler profiling: where do the simulation's events come from and go?

Every callback the :class:`~repro.net.sim.Scheduler` fires is attributed to
a *site* — the class+method (or function) that was scheduled. The profiler
accumulates, per site:

* ``count`` — events fired,
* ``wall`` — real (wall-clock) seconds spent inside the callbacks, which is
  what a perf PR optimises,
* ``lag`` — simulated time between scheduling and firing (the event's
  dwell in the heap), whose distribution exposes pacing behaviour such as
  lease sweeps dominating an idle deployment.

The report answers "what is this run actually doing?" before anyone reaches
for an optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SiteStats:
    """Accumulated cost of one callback site."""

    site: str
    count: int = 0
    wall: float = 0.0
    lag_total: float = 0.0
    lag_max: float = 0.0

    @property
    def wall_mean(self) -> float:
        return self.wall / self.count if self.count else 0.0

    @property
    def lag_mean(self) -> float:
        return self.lag_total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "site": self.site,
            "count": self.count,
            "wall": self.wall,
            "wall_mean": self.wall_mean,
            "lag_mean": self.lag_mean,
            "lag_max": self.lag_max,
        }


class SchedulerProfiler:
    """Attach to a Scheduler (``scheduler.profiler = profiler``) to collect."""

    def __init__(self):
        self._sites: Dict[str, SiteStats] = {}
        self.events = 0

    def record(self, site: str, lag: float, wall: float) -> None:
        stats = self._sites.get(site)
        if stats is None:
            stats = self._sites[site] = SiteStats(site)
        stats.count += 1
        stats.wall += wall
        stats.lag_total += lag
        if lag > stats.lag_max:
            stats.lag_max = lag
        self.events += 1

    # -- reporting ------------------------------------------------------------

    def sites(self) -> List[SiteStats]:
        return list(self._sites.values())

    def site(self, name: str) -> SiteStats:
        return self._sites.get(name, SiteStats(name))

    def top(self, n: int = 10, key: str = "count") -> List[SiteStats]:
        """The n costliest sites by ``count``, ``wall`` or ``lag``."""
        rankers = {
            "count": lambda s: s.count,
            "wall": lambda s: s.wall,
            "lag": lambda s: s.lag_total,
        }
        try:
            ranker = rankers[key]
        except KeyError:
            raise ValueError(f"unknown sort key {key!r}; "
                             f"use one of {sorted(rankers)}") from None
        return sorted(self._sites.values(), key=ranker, reverse=True)[:n]

    def report(self, n: int = 10, key: str = "count") -> str:
        """A plain-text top-N table."""
        lines = [f"scheduler profile — top {n} sites by {key} "
                 f"({self.events} events total)",
                 f"{'site':<44} {'count':>8} {'wall(s)':>9} "
                 f"{'wall/ev(us)':>12} {'lag mean':>9} {'lag max':>8}"]
        for stats in self.top(n, key):
            lines.append(
                f"{stats.site:<44.44} {stats.count:>8} {stats.wall:>9.4f} "
                f"{stats.wall_mean * 1e6:>12.1f} {stats.lag_mean:>9.2f} "
                f"{stats.lag_max:>8.2f}")
        return "\n".join(lines)

    def snapshot(self) -> List[Dict[str, float]]:
        """All sites as dicts, ordered by count descending (isolated copy)."""
        return [stats.to_dict()
                for stats in self.top(len(self._sites) or 1, "count")]

    def reset(self) -> None:
        self._sites.clear()
        self.events = 0

    def __repr__(self) -> str:
        return (f"SchedulerProfiler(sites={len(self._sites)}, "
                f"events={self.events})")

"""When — the temporal aspect of a query (Section 4.3).

"When: The temporal aspect of the query, the conditions under which the
configuration should be executed." CAPA's scenario exercises the interesting
case: Bob's query waits until *he enters room L10.01*, so the Context Server
stores the built configuration "until its temporal constraints are
satisfied" and listens for the triggering event.

Supported conditions:

``now``                      execute immediately
``at(T)``                    execute at absolute simulated time T
``after(D)``                 execute D time units after submission
``enters(entity, place)``    execute when ``entity`` enters ``place``

Any condition may carry ``until(T)``: the query expires (is dropped) if not
triggered *before* absolute time T. The boundary is inclusive — a trigger
landing exactly at T never executes — so the expiry sweep and a
same-instant trigger agree on the outcome regardless of which runs first
(see ``ContextServer._sweep_expired_queries``).

Textual form examples: ``"now"``, ``"after(30)"``,
``"enters(bob, L10.01) until(600)"``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import QueryError

KINDS = ("now", "at", "after", "enters")

_ENTERS_RE = re.compile(r"^enters\(\s*([^,()\s]+)\s*,\s*([^,()\s]+)\s*\)$")
_AT_RE = re.compile(r"^at\(\s*([-+0-9.eE]+)\s*\)$")
_AFTER_RE = re.compile(r"^after\(\s*([-+0-9.eE]+)\s*\)$")
_UNTIL_RE = re.compile(r"\s*until\(\s*([-+0-9.eE]+)\s*\)\s*$")


@dataclass(frozen=True)
class WhenClause:
    """The temporal condition of one query."""

    kind: str = "now"
    time: Optional[float] = None        # at / after operand
    entity: Optional[str] = None        # enters operand
    place: Optional[str] = None         # enters operand
    expires: Optional[float] = None     # absolute expiry time

    def __post_init__(self):
        if self.kind not in KINDS:
            raise QueryError(f"unknown When kind: {self.kind!r}")
        if self.kind in ("at", "after") and self.time is None:
            raise QueryError(f"When {self.kind!r} needs a time operand")
        if self.kind == "enters" and (self.entity is None or self.place is None):
            raise QueryError("When 'enters' needs entity and place operands")

    # -- constructors ------------------------------------------------------------

    @classmethod
    def now(cls) -> "WhenClause":
        return cls("now")

    @classmethod
    def at(cls, time: float, expires: Optional[float] = None) -> "WhenClause":
        return cls("at", time=float(time), expires=expires)

    @classmethod
    def after(cls, delay: float, expires: Optional[float] = None) -> "WhenClause":
        if delay < 0:
            raise QueryError(f"negative delay: {delay}")
        return cls("after", time=float(delay), expires=expires)

    @classmethod
    def when_enters(cls, entity: str, place: str,
                    expires: Optional[float] = None) -> "WhenClause":
        return cls("enters", entity=entity, place=place, expires=expires)

    # -- evaluation --------------------------------------------------------------

    @property
    def immediate(self) -> bool:
        return self.kind == "now"

    def trigger_time(self, submitted_at: float) -> Optional[float]:
        """Absolute firing time for time-based conditions (None for events)."""
        if self.kind == "now":
            return submitted_at
        if self.kind == "at":
            return self.time
        if self.kind == "after":
            return submitted_at + self.time
        return None

    def matches_entry(self, entity: str, place: str) -> bool:
        """Does ``entity`` entering ``place`` satisfy an 'enters' condition?"""
        return (self.kind == "enters"
                and self.entity == entity
                and self.place == place)

    def expired(self, now: float) -> bool:
        """Inclusive boundary: at ``now == expires`` the query is expired.

        Pinned this way so an ``enters`` trigger and the periodic expiry
        sweep landing at the same sim-time resolve identically — both see
        the query as dead — instead of racing on execution order.
        """
        return self.expires is not None and now >= self.expires

    # -- text form -----------------------------------------------------------------

    def __str__(self) -> str:
        if self.kind == "now":
            body = "now"
        elif self.kind == "at":
            body = f"at({self.time:g})"
        elif self.kind == "after":
            body = f"after({self.time:g})"
        else:
            body = f"enters({self.entity}, {self.place})"
        if self.expires is not None:
            body += f" until({self.expires:g})"
        return body

    @classmethod
    def parse(cls, text: str) -> "WhenClause":
        text = text.strip()
        expires = None
        until = _UNTIL_RE.search(text)
        if until:
            expires = float(until.group(1))
            text = text[: until.start()].strip()
        if not text:
            # a bare "until(600)" (or "") has no condition to expire; do
            # not silently coerce it to an expiring "now"
            raise QueryError("empty When clause body")
        if text == "now":
            return cls("now", expires=expires)
        match = _AT_RE.match(text)
        if match:
            return cls.at(float(match.group(1)), expires)
        match = _AFTER_RE.match(text)
        if match:
            return cls.after(float(match.group(1)), expires)
        match = _ENTERS_RE.match(text)
        if match:
            return cls.when_enters(match.group(1), match.group(2), expires)
        raise QueryError(f"unparseable When clause: {text!r}")

"""The XML wire format of a query — byte-for-byte the shape of Figure 6.

::

    <query>
        <query_id> </query_id>
        <owner_id> </owner_id>
        <what> </what>
        <where> </where>
        <when> </when>
        <which> </which>
        <mode> </mode>
    </query>

Each element body is the textual form of the corresponding clause (see the
clause classes for their grammars). ``query_from_xml(query_to_xml(q))``
round-trips, which is property-tested.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.errors import QueryParseError
from repro.query.model import Query

_FIELDS = ("query_id", "owner_id", "what", "where", "when", "which", "mode")


def query_to_xml(query: Query) -> str:
    """Serialise a query to the Figure-6 XML form."""
    wire = query.to_wire()
    root = ET.Element("query")
    for name in _FIELDS:
        element = ET.SubElement(root, name)
        element.text = str(wire[name])
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def query_from_xml(text: str) -> Query:
    """Parse the Figure-6 XML form back into a :class:`Query`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise QueryParseError(f"malformed query XML: {exc}") from None
    if root.tag != "query":
        raise QueryParseError(f"expected <query> root, got <{root.tag}>")
    wire = {}
    for name in _FIELDS:
        element = root.find(name)
        if element is None:
            raise QueryParseError(f"query XML missing <{name}>")
        wire[name] = (element.text or "").strip()
    if not wire["owner_id"]:
        raise QueryParseError("query XML has empty <owner_id>")
    return Query.from_wire(wire)

"""Which — qualitative selection among candidate entities (Section 4.3).

"Which: The desired qualitative aspects governing selection from multiple
entities (e.g. shortest time to service completion)." John's CAPA query is
the canonical instance: *closest free printer with no queue* — a conjunction
of availability filters plus a distance ranking.

A :class:`WhichClause` is an ordered list of :class:`Criterion` steps.
Filter criteria eliminate candidates; ranking criteria order the survivors.
Filters apply in order; the first ranking criterion decides the winner (later
rankings break ties).

Criteria:

``reachable``            the owner can physically reach the candidate
                         (locked doors respected — printer P3 for John)
``available``            the candidate reports a usable state
``no-queue``             the candidate has an empty service queue
``min-queue``            rank by ascending queue length
``closest-to(EXPR)``     rank by walking distance to a location expression
``best-quality(ATTR)``   rank by descending quality attribute
``quality(ATTR<=X)``     a quality-of-context contract: keep only candidates
                         whose ATTR satisfies the comparison (also ``>=``);
                         the paper's future-work item 2 asks for exactly such
                         "contracts on quality of the context information"
``any``                  keep all / no ordering (explicit default)

Textual form: criteria separated by ``;`` —
``"reachable; available; no-queue; closest-to(me)"``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import QueryError

FILTER_KINDS = ("reachable", "available", "no-queue", "any", "quality")
RANK_KINDS = ("closest-to", "min-queue", "best-quality")

_ARG_RE = re.compile(r"^([a-z-]+)\(\s*(.*?)\s*\)$")
_QUALITY_RE = re.compile(r"^([A-Za-z0-9_-]+)\s*(<=|>=)\s*([-+0-9.eE]+)$")


def _parse_quality_contract(argument: str):
    match = _QUALITY_RE.match(argument or "")
    if not match:
        raise QueryError(
            f"quality contract must look like 'attr<=5' or 'attr>=0.9', "
            f"got {argument!r}")
    return match.group(1), match.group(2), float(match.group(3))


@dataclass
class Candidate:
    """A candidate entity with the live context selection needs.

    Built by the Context Server when it executes a configuration: the
    profile tells us what the entity is, ``room``/``distance`` come from the
    Location Service, ``status`` from the entity's latest retained status
    event, ``reachable`` from the topology model with the owner's access
    rights applied.
    """

    entity_id: str
    name: str
    room: Optional[str] = None
    distance: float = float("inf")
    reachable: bool = True
    available: bool = True
    queue_length: int = 0
    quality: Dict[str, float] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Criterion:
    """One selection step: a filter or a ranking."""

    kind: str
    argument: Optional[str] = None

    def __post_init__(self):
        if self.kind not in FILTER_KINDS + RANK_KINDS:
            raise QueryError(f"unknown Which criterion: {self.kind!r}")
        if self.kind in ("closest-to", "best-quality") and not self.argument:
            raise QueryError(f"criterion {self.kind!r} needs an argument")
        if self.kind == "quality":
            _parse_quality_contract(self.argument)  # validate eagerly

    @property
    def is_filter(self) -> bool:
        return self.kind in FILTER_KINDS

    def keep(self, candidate: Candidate) -> bool:
        if self.kind == "any":
            return True
        if self.kind == "reachable":
            return candidate.reachable
        if self.kind == "available":
            return candidate.available
        if self.kind == "no-queue":
            return candidate.queue_length == 0
        if self.kind == "quality":
            return self.quality_satisfied(candidate.quality)
        raise AssertionError(f"not a filter: {self.kind}")  # pragma: no cover

    def quality_satisfied(self, quality: Dict[str, float]) -> bool:
        """Evaluate a quality contract against a quality map.

        Missing attributes fail the contract (no evidence, no promise).
        Shared by candidate selection and by the resolver's provider
        predicate, so a subscription's contract constrains which providers
        may even enter the configuration.
        """
        attr, op, threshold = _parse_quality_contract(self.argument)
        if attr not in quality:
            return False
        value = quality[attr]
        return value <= threshold if op == "<=" else value >= threshold

    def sort_key(self, candidate: Candidate) -> float:
        if self.kind == "closest-to":
            return candidate.distance
        if self.kind == "min-queue":
            return float(candidate.queue_length)
        if self.kind == "best-quality":
            # descending quality == ascending negated value
            return -candidate.quality.get(self.argument, float("-inf"))
        raise AssertionError(f"not a ranking: {self.kind}")  # pragma: no cover

    def __str__(self) -> str:
        return f"{self.kind}({self.argument})" if self.argument else self.kind


@dataclass(frozen=True)
class WhichClause:
    """An ordered pipeline of selection criteria."""

    criteria: Tuple[Criterion, ...] = ()

    @classmethod
    def of(cls, *criteria: Criterion) -> "WhichClause":
        return cls(tuple(criteria))

    @classmethod
    def any(cls) -> "WhichClause":
        return cls((Criterion("any"),))

    @classmethod
    def closest_to(cls, expr_text: str = "me") -> "WhichClause":
        return cls((Criterion("closest-to", expr_text),))

    # -- application ----------------------------------------------------------

    def apply(self, candidates: List[Candidate]) -> List[Candidate]:
        """Filter then rank; returns survivors best-first."""
        survivors = list(candidates)
        rankings: List[Criterion] = []
        for criterion in self.criteria:
            if criterion.is_filter:
                survivors = [c for c in survivors if criterion.keep(c)]
            else:
                rankings.append(criterion)
        if rankings:
            survivors.sort(key=lambda c: tuple(r.sort_key(c) for r in rankings))
        return survivors

    def select(self, candidates: List[Candidate]) -> Optional[Candidate]:
        """The single best candidate, or None when all are filtered out."""
        survivors = self.apply(candidates)
        return survivors[0] if survivors else None

    @property
    def location_argument(self) -> Optional[str]:
        """The closest-to expression, if any (the CS resolves it up front)."""
        for criterion in self.criteria:
            if criterion.kind == "closest-to":
                return criterion.argument
        return None

    def quality_contracts(self) -> List[Criterion]:
        """The QoC contracts in this clause (applied to providers too)."""
        return [criterion for criterion in self.criteria
                if criterion.kind == "quality"]

    # -- text form ----------------------------------------------------------------

    def __str__(self) -> str:
        if not self.criteria:
            return "any"
        return "; ".join(str(criterion) for criterion in self.criteria)

    @classmethod
    def parse(cls, text: str) -> "WhichClause":
        text = text.strip()
        if not text or text == "any":
            return cls.any()
        criteria = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            match = _ARG_RE.match(chunk)
            if match:
                criteria.append(Criterion(match.group(1), match.group(2)))
            else:
                criteria.append(Criterion(chunk))
        if not criteria:
            return cls.any()
        return cls(tuple(criteria))

"""Shared operator-graph continuous queries (the ``engine="opgraph"`` path).

:mod:`repro.query.opgraph.specs` is the canonical plan algebra
(filter / join-on-subject / tumbling window / qualitative select),
:mod:`repro.query.opgraph.compile` turns wire-level query dicts into plans
and extends the dispatch index's static analysis to whole plans, and
:mod:`repro.query.opgraph.engine` is the deduplicated incremental DAG the
mediator evaluates once per publish.
"""

from repro.query.opgraph.compile import (
    analyse_opspec,
    compile_query,
    query_from_payload,
)
from repro.query.opgraph.engine import OperatorGraph
from repro.query.opgraph.specs import (
    OpSpec,
    OpSpecError,
    filter_op,
    join_op,
    select_op,
    window_op,
)

__all__ = [
    "OpSpec",
    "OpSpecError",
    "OperatorGraph",
    "analyse_opspec",
    "compile_query",
    "filter_op",
    "join_op",
    "query_from_payload",
    "select_op",
    "window_op",
]

"""The shared incremental operator graph behind ``engine="opgraph"``.

One :class:`OperatorGraph` per mediator. Subscriptions attach a compiled
plan (:class:`~repro.query.opgraph.specs.OpSpec`); the graph materialises
one node per **canonical key**, so the ten-thousandth "location of anyone
on floor 3" subscription adds a sink entry to an existing node instead of
a ten-thousandth predicate evaluation per publish. Each publish then costs
one top-down incremental evaluation — candidate filter roots found through
the same :class:`~repro.events.dispatch_index.DispatchIndex` machinery the
indexed mediator uses, but over *nodes* instead of subscriptions — plus
pure fan-out of results to sinks.

Invariants the tests lean on:

* **Refcounts are walk counts.** ``attach`` bumps every node once per
  occurrence in the plan's pre-order walk; ``detach`` decrements along the
  identical walk, so counts return to zero exactly when the last plan
  using a node detaches, and the node (plus its dispatch-index root entry
  and window registration) is reclaimed.
* **Delivery order matches the classic mediator.** Emissions are buffered
  per publish and stable-sorted by ``sub_id`` before the deliver callback
  runs. Plain filter plans produce at most one emission per (publish,
  subscription); ascending ``sub_id`` is exactly the order the naive
  insertion-ordered scan delivers in — the differential harness and the
  Hypothesis property assert entry-identical logs.
* **Windows close on the event clock.** Tumbling windows align to the
  absolute sim-time grid (window *k* = ``[k·width, (k+1)·width)``); every
  publish first advances all window nodes to the event's timestamp, so a
  window's aggregate is emitted by the first publish at-or-after its end
  — deterministically, with no timers to race messages. An event exactly
  on a boundary closes the old window *before* it is added, landing in
  the new one.
* **Stateful nodes migrate whole.** A node whose plan is pinned to one
  ``(type, subject)`` key only ever sees events of that key (the sharded
  router sends each key's publishes to one owner shard), so
  ``export_state_for``/``import_state`` can move window/join/select state
  with a rebalanced subscription; import is first-wins — a node that has
  already seen traffic or an earlier import keeps what it has.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.ids import GUID
from repro.core.types import TypeSpec
from repro.events.dispatch_index import DispatchIndex
from repro.events.event import ContextEvent
from repro.query.opgraph.specs import OpSpec

#: deliver callback: (sub_id, event) -> None
DeliverFn = Callable[[int, ContextEvent], None]


def _subject_token(subject: object) -> str:
    """A total-order token over subjects (mixed types compare as strings)."""
    return f"{type(subject).__name__}:{subject!r}"


class _Node:
    """One materialised operator; shared by every plan with its key."""

    __slots__ = ("key", "node_id", "spec", "refs", "parents", "children",
                 "sinks", "touched")

    #: stateful nodes participate in export_state/import_state
    stateful = False

    def __init__(self, key: str, node_id: int, spec: OpSpec):
        self.key = key
        self.node_id = node_id
        self.spec = spec
        self.refs = 0
        #: downstream consumers: (node, input port) — registered on child
        #: creation of the *parent*, removed when the parent is reclaimed
        self.parents: List[Tuple["_Node", int]] = []
        self.children: List["_Node"] = []
        #: sub_id -> None; subscriptions whose plan terminates here
        self.sinks: Dict[int, None] = {}
        self.touched = False

    def process(self, event: ContextEvent, port: int,
                emit: Callable[[ContextEvent], None]) -> None:
        raise NotImplementedError

    def export_state(self) -> Dict[str, Any]:
        raise NotImplementedError

    def import_state(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError


class _FilterNode(_Node):
    """A leaf; evaluated by the graph against raw publishes, not process()."""

    __slots__ = ()


class _JoinNode(_Node):
    """Join-on-subject: latest event per subject from each side."""

    __slots__ = ("_left", "_right")
    stateful = True

    def __init__(self, key: str, node_id: int, spec: OpSpec):
        super().__init__(key, node_id, spec)
        self._left: Dict[object, ContextEvent] = {}
        self._right: Dict[object, ContextEvent] = {}

    def process(self, event, port, emit):
        subject = event.subject
        try:
            hash(subject)
        except TypeError:
            return  # unjoinable subject: no pairing possible
        self.touched = True
        mine = self._left if port == 0 else self._right
        other = self._right if port == 0 else self._left
        mine[subject] = event
        match = other.get(subject)
        if match is None:
            return
        left = event if port == 0 else match
        right = match if port == 0 else event
        emit(ContextEvent(
            TypeSpec("opgraph-join", "pair", subject),
            {"left": left.value, "right": right.value},
            event.source, event.timestamp,
            {"left_type": left.type_name, "right_type": right.type_name,
             "left_timestamp": left.timestamp,
             "right_timestamp": right.timestamp}))

    def export_state(self):
        return {"left": [item.to_wire() for item in self._left.values()],
                "right": [item.to_wire() for item in self._right.values()]}

    def import_state(self, state):
        self.touched = True
        for wire in state["left"]:
            event = ContextEvent.from_wire(wire)
            self._left[event.subject] = event
        for wire in state["right"]:
            event = ContextEvent.from_wire(wire)
            self._right[event.subject] = event


class _WindowNode(_Node):
    """Tumbling count/avg aggregate on the absolute sim-time grid."""

    __slots__ = ("agg", "width", "value_key", "emit_empty",
                 "_index", "_count", "_sum", "_source")
    stateful = True

    def __init__(self, key: str, node_id: int, spec: OpSpec):
        super().__init__(key, node_id, spec)
        params = dict(spec.params)
        self.agg = params["agg"]
        self.width = float(params["width"].split(":", 1)[1])
        self.value_key = params["key"]
        self.emit_empty = params["emit_empty"] == "True"
        self._index: Optional[int] = None  # open window; None until touched
        self._count = 0
        self._sum = 0.0
        self._source: Optional[GUID] = None

    def roll(self, now: float) -> List[ContextEvent]:
        """Close every window whose end is at or before ``now``."""
        if self._index is None:
            return []
        outputs: List[ContextEvent] = []
        current = int(now // self.width)
        while self._index < current:
            closed = self._close(self._index)
            if closed is not None:
                outputs.append(closed)
            self._index += 1
        return outputs

    def _close(self, index: int) -> Optional[ContextEvent]:
        count, total = self._count, self._sum
        self._count, self._sum = 0, 0.0
        if count == 0 and not self.emit_empty:
            return None
        if self.agg == "count":
            value: object = count
        else:
            value = total / count if count else None
        end = (index + 1) * self.width
        return ContextEvent(
            TypeSpec(f"opgraph-window-{self.agg}", "aggregate"),
            value, self._source, end,
            {"window_start": index * self.width, "window_end": end,
             "count": count, "key": self.value_key})

    def process(self, event, port, emit):
        # the graph already rolled to the publish timestamp before any root
        # fired, so a boundary event's old window is closed by now and the
        # event lands in the fresh one
        self.touched = True
        self._source = event.source
        if self._index is None:
            self._index = int(event.timestamp // self.width)
        if self.agg == "count":
            self._count += 1
            return
        if self.value_key == "value":
            sample = event.value
        else:
            sample = event.attributes.get(self.value_key)
        if isinstance(sample, (int, float)) and not isinstance(sample, bool):
            self._count += 1
            self._sum += sample
        # non-numeric / missing samples contribute nothing to an average

    def export_state(self):
        return {"index": self._index, "count": self._count, "sum": self._sum,
                "source": None if self._source is None else self._source.hex}

    def import_state(self, state):
        self.touched = True
        self._index = state["index"]
        self._count = state["count"]
        self._sum = state["sum"]
        if state["source"] is not None:
            self._source = GUID.from_hex(state["source"])


class _SelectNode(_Node):
    """Qualitative min/max-by-attribute selector over latest-per-subject.

    Re-emits the winning *upstream event* whenever the winner changes —
    subject or key value — so a subscriber always holds the current best
    candidate ("closest free printer with no queue"). Subjects whose latest
    event fails the ``where`` predicate, or lacks the key, leave the race.
    Ties on the key value break on a deterministic subject token.
    """

    __slots__ = ("mode", "select_key", "where", "_candidates", "_winner")
    stateful = True

    def __init__(self, key: str, node_id: int, spec: OpSpec):
        super().__init__(key, node_id, spec)
        params = dict(spec.params)
        self.mode = params["mode"]
        self.select_key = params["key"]
        self.where = spec.where
        #: subject -> (key value, latest event)
        self._candidates: Dict[object, Tuple[object, ContextEvent]] = {}
        #: (subject token, key value) of the last emitted winner
        self._winner: Optional[Tuple[str, object]] = None

    def process(self, event, port, emit):
        subject = event.subject
        try:
            hash(subject)
        except TypeError:
            return  # cannot track an unhashable contender
        self.touched = True
        if self.select_key == "value":
            ranked: object = event.value
        else:
            ranked = event.attributes.get(self.select_key)
        eligible = ranked is not None and (
            self.where is None or self.where.matches(event))
        if eligible:
            self._candidates[subject] = (ranked, event)
        else:
            self._candidates.pop(subject, None)
        self._refresh(emit)

    def _refresh(self, emit):
        best: Optional[Tuple[object, str, ContextEvent]] = None
        for subject, (ranked, event) in self._candidates.items():
            token = _subject_token(subject)
            if best is None:
                best = (ranked, token, event)
                continue
            try:
                if ranked == best[0]:
                    better = token < best[1]
                elif self.mode == "min":
                    better = ranked < best[0]
                else:
                    better = ranked > best[0]
            except TypeError:
                continue  # incomparable with the current best: skip
            if better:
                best = (ranked, token, event)
        if best is None:
            self._winner = None  # nobody qualifies; nothing to emit
            return
        signature = (best[1], best[0])
        if signature != self._winner:
            self._winner = signature
            emit(best[2])

    def export_state(self):
        return {
            "events": [event.to_wire()
                       for _, event in self._candidates.values()],
            "winner": self._winner,
        }

    def import_state(self, state):
        self.touched = True
        for wire in state["events"]:
            event = ContextEvent.from_wire(wire)
            if self.select_key == "value":
                ranked: object = event.value
            else:
                ranked = event.attributes.get(self.select_key)
            self._candidates[event.subject] = (ranked, event)
        winner = state["winner"]
        self._winner = None if winner is None else tuple(winner)


_NODE_CLASSES = {
    "filter": _FilterNode,
    "join": _JoinNode,
    "window": _WindowNode,
    "select": _SelectNode,
}


class OperatorGraph:
    """Deduplicated incremental DAG evaluated once per publish."""

    def __init__(self, deliver: DeliverFn, label: str = "-",
                 nodes_gauge=None, reuse_counter=None, evals_counter=None,
                 fanout_counter=None):
        self._deliver = deliver
        self._label = label
        self._nodes_gauge = nodes_gauge
        self._reuse_counter = reuse_counter
        self._evals_counter = evals_counter
        self._fanout_counter = fanout_counter
        #: canonical key -> live node (the dedup table)
        self._nodes: Dict[str, _Node] = {}
        #: node_id -> filter leaf, for dispatch-index candidate lookups
        self._roots: Dict[int, _FilterNode] = {}
        #: canonical key -> window node, rolled on every publish
        self._windows: Dict[str, _WindowNode] = {}
        #: sub_id -> attached plan (detach walks the same spec tree)
        self._plans: Dict[int, OpSpec] = {}
        self._root_index = DispatchIndex()
        self._next_node_id = 1
        # plain-int mirrors of the mediator.opgraph.* metrics, for callers
        # without a registry (tests, benches) and for stats()
        self.nodes_created = 0
        self.reuse_hits = 0
        self.evals = 0
        self.fanout = 0

    # -- attach / detach ------------------------------------------------------

    def attach(self, sub_id: int, plan: OpSpec) -> None:
        """Materialise ``plan`` (sharing existing nodes) and add the sink."""
        if sub_id in self._plans:
            self.detach(sub_id)
        node = self._materialise(plan)
        node.sinks[sub_id] = None
        self._plans[sub_id] = plan
        if self._nodes_gauge is not None:
            self._nodes_gauge.set(len(self._nodes), range=self._label)

    def detach(self, sub_id: int) -> bool:
        """Drop the sink and release one walk's worth of refcounts."""
        plan = self._plans.pop(sub_id, None)
        if plan is None:
            return False
        self._nodes[plan.canonical_key()].sinks.pop(sub_id, None)
        for spec in plan.walk():
            node = self._nodes[spec.canonical_key()]
            node.refs -= 1
            if node.refs == 0:
                self._reclaim(node)
        if self._nodes_gauge is not None:
            self._nodes_gauge.set(len(self._nodes), range=self._label)
        return True

    def _materialise(self, spec: OpSpec) -> _Node:
        key = spec.canonical_key()
        node = self._nodes.get(key)
        if node is not None:
            node.refs += 1
            self.reuse_hits += 1
            if self._reuse_counter is not None:
                self._reuse_counter.inc(range=self._label)
            # keep refcounts equal to walk counts: bump the whole subtree
            for child_spec in spec.inputs:
                self._materialise(child_spec)
            return node
        children = [self._materialise(child_spec)
                    for child_spec in spec.inputs]
        node = _NODE_CLASSES[spec.op](key, self._next_node_id, spec)
        self._next_node_id += 1
        node.refs = 1
        node.children = children
        self._nodes[key] = node
        for port, child in enumerate(children):
            child.parents.append((node, port))
        if isinstance(node, _FilterNode):
            self._roots[node.node_id] = node
            assert spec.filter is not None
            self._root_index.add(node.node_id, spec.filter)
        elif isinstance(node, _WindowNode):
            self._windows[key] = node
        self.nodes_created += 1
        return node

    def _reclaim(self, node: _Node) -> None:
        del self._nodes[node.key]
        for child in node.children:
            child.parents = [(parent, port)
                             for parent, port in child.parents
                             if parent is not node]
        if isinstance(node, _FilterNode):
            self._roots.pop(node.node_id, None)
            self._root_index.remove(node.node_id)
        elif isinstance(node, _WindowNode):
            self._windows.pop(node.key, None)

    # -- evaluation -----------------------------------------------------------

    def publish(self, event: ContextEvent) -> int:
        """One incremental evaluation; returns the number of deliveries."""
        batch: List[Tuple[int, ContextEvent]] = []
        now = event.timestamp
        for window in list(self._windows.values()):
            for closed in window.roll(now):
                self._emit(window, closed, batch)
        node_ids, _, _ = self._root_index.candidates(event)
        evals = 0
        for node_id in node_ids:
            root = self._roots.get(node_id)
            if root is None:
                continue
            evals += 1
            if root.spec.filter.matches(event):
                self._emit(root, event, batch)
        self.evals += evals
        if evals and self._evals_counter is not None:
            self._evals_counter.inc(evals, range=self._label)
        batch.sort(key=lambda entry: entry[0])  # stable: classic sub order
        for sub_id, out in batch:
            self._deliver(sub_id, out)
        count = len(batch)
        self.fanout += count
        if count and self._fanout_counter is not None:
            self._fanout_counter.inc(count, range=self._label)
        return count

    def _emit(self, node: _Node, event: ContextEvent,
              batch: List[Tuple[int, ContextEvent]]) -> None:
        """Fan one operator output to its sinks and downstream operators."""
        for sub_id in node.sinks:
            batch.append((sub_id, event))
        for parent, port in node.parents:
            self.evals += 1
            if self._evals_counter is not None:
                self._evals_counter.inc(range=self._label)
            parent.process(event, port,
                           lambda out, parent=parent: self._emit(parent, out,
                                                                 batch))

    # -- migration ------------------------------------------------------------

    def export_state_for(self, sub_id: int) -> Dict[str, Dict[str, Any]]:
        """State blobs of every touched stateful node in one plan."""
        plan = self._plans.get(sub_id)
        if plan is None:
            return {}
        states: Dict[str, Dict[str, Any]] = {}
        for spec in plan.walk():
            node = self._nodes.get(spec.canonical_key())
            if node is not None and node.stateful and node.touched:
                states.setdefault(node.key, node.export_state())
        return states

    def import_state(self, states: Dict[str, Dict[str, Any]]) -> None:
        """First-wins install of migrated state into untouched nodes."""
        for key, state in states.items():
            node = self._nodes.get(key)
            if node is not None and node.stateful and not node.touched:
                node.import_state(state)

    # -- introspection --------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def attached(self) -> int:
        return len(self._plans)

    def reuse_ratio(self) -> float:
        """Fraction of materialisation requests served by an existing node."""
        requested = self.nodes_created + self.reuse_hits
        return self.reuse_hits / requested if requested else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "nodes": len(self._nodes),
            "nodes_created": self.nodes_created,
            "reuse_hits": self.reuse_hits,
            "reuse_ratio": self.reuse_ratio(),
            "evals": self.evals,
            "fanout": self.fanout,
            "attached": len(self._plans),
            "filter_roots": len(self._roots),
            "window_nodes": len(self._windows),
        }

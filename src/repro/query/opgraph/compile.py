"""Compile wire-level query specs into canonical operator plans.

A continuous query travels inside the existing ``subscribe`` payload as a
plain dictionary (no new protocol verb — the query rides next to the
filter spec, exactly like ``one_time`` and ``replay`` ride next to it).
The grammar nests the four operator kinds:

.. code-block:: python

    {"op": "window", "agg": "avg", "width": 30.0, "key": "value",
     "source": {"op": "filter",
                "filter": {"op": "type", "type": "temperature",
                           "representation": None}}}

As a convenience any spec whose ``op`` names a *filter* operator
(``all``/``type``/``subject``/``source``/``attr``/``and``/``or``/``not``)
is auto-wrapped into a ``filter`` leaf, so a bare filter spec is a valid
query. Compilation canonicalises every embedded filter (via
``filter_from_spec`` → ``canonical_key``), which means two queries that
differ only in And/Or construction order compile to spec-identical plans
and share one DAG instance in the engine.

:func:`analyse_opspec` extends the dispatch index's static analysis to
whole plans so the sharded router can place query subscriptions: a plan's
constraints are facts about **every raw event that can feed any of its
leaves** — the intersection across leaves — making shard placement sound
exactly when it is for plain filters.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.events.dispatch_index import FilterConstraints, analyse_filter
from repro.events.filters import filter_from_spec
from repro.query.opgraph.specs import (
    OpSpec,
    OpSpecError,
    filter_op,
    join_op,
    select_op,
    window_op,
)

#: spec ``op`` values that denote an EventFilter rather than a plan node
_FILTER_OPS = frozenset({"all", "type", "subject", "source", "attr",
                         "and", "or", "not"})


def compile_query(spec: Dict[str, Any]) -> OpSpec:
    """Build the canonical plan for a wire-level query spec."""
    try:
        op = spec["op"]
    except (KeyError, TypeError):
        raise OpSpecError(f"malformed query spec: {spec!r}") from None
    if op in _FILTER_OPS:
        return filter_op(filter_from_spec(spec))
    if op == "filter":
        return filter_op(filter_from_spec(spec["filter"]))
    if op == "join":
        return join_op(compile_query(spec["left"]),
                       compile_query(spec["right"]))
    if op == "window":
        return window_op(
            compile_query(spec["source"]),
            agg=spec["agg"],
            width=spec["width"],
            key=spec.get("key", "value"),
            emit_empty=spec.get("emit_empty", False),
        )
    if op == "select":
        where_spec = spec.get("where")
        return select_op(
            compile_query(spec["source"]),
            mode=spec["mode"],
            key=spec["key"],
            where=None if where_spec is None else filter_from_spec(where_spec),
        )
    raise OpSpecError(f"unknown query op: {op!r}")


def _merge(left: FilterConstraints,
           right: FilterConstraints) -> FilterConstraints:
    """Constraints holding for events feeding *either* side of a join."""
    return FilterConstraints(
        type_name=(left.type_name
                   if left.type_name == right.type_name else None),
        has_subject=(left.has_subject and right.has_subject
                     and left.subject == right.subject),
        subject=(left.subject
                 if left.has_subject and right.has_subject
                 and left.subject == right.subject else None),
        source_hex=(left.source_hex
                    if left.source_hex == right.source_hex else None),
    )


def analyse_opspec(plan: OpSpec) -> FilterConstraints:
    """Sound equality constraints on every raw event reaching ``plan``.

    Unary operators (window/select) pass their input's constraints through
    untouched — they consume exactly the events their input produces. A
    join consumes events from both operands, so only constraints the two
    operands agree on survive.
    """
    if plan.op == "filter":
        assert plan.filter is not None
        return analyse_filter(plan.filter)
    if plan.op == "join":
        return _merge(analyse_opspec(plan.inputs[0]),
                      analyse_opspec(plan.inputs[1]))
    return analyse_opspec(plan.inputs[0])


def query_from_payload(payload: Dict[str, Any]) -> Optional[OpSpec]:
    """Compile the optional ``query`` entry of a subscribe payload."""
    spec = payload.get("query")
    if spec is None:
        return None
    return compile_query(spec)

"""Canonical operator specs for the shared continuous-query DAG.

The Solar baseline (:mod:`repro.baselines.solar`, paper §6) demonstrates the
idea this subsystem promotes into the main system: applications describe
context processing as explicit operator graphs, and the platform
instantiates structurally identical subgraphs **once**, fanning results out
to every consumer. Here the graph language is a small algebra of four
incremental operators over the mediator's published event stream:

``filter``
    A leaf: passes exactly the events its
    :class:`~repro.events.filters.EventFilter` matches. Every DAG is rooted
    in filter leaves — they are the only contact point with the raw stream.
``join``
    Join-on-subject: pairs the latest event per subject from two upstream
    operators and emits a combined event whenever either side updates a
    subject the other side has seen.
``window``
    Tumbling sim-time windows of fixed width aligned to the absolute time
    grid (window *k* covers ``[k*width, (k+1)*width)``); emits a
    ``count``/``avg`` aggregate event at each window close.
``select``
    Qualitative selector (the paper's Figure-6 **Which** clause, CAPA's
    "closest free printer with no queue"): keeps the latest event per
    subject, drops subjects whose latest event fails the ``where``
    predicate, and re-emits the ``min``/``max``-by-attribute winner every
    time it changes.

A spec is a value: equality and hashing are **structural**, computed from a
canonical key that normalises the embedded filters through
:meth:`~repro.events.filters.EventFilter.canonical_key`. Two subscriptions
compiled from spec-identical queries — whatever their construction order —
therefore share every node of their DAGs. Join operand order is *not*
normalised (the output labels its sides), and neither is select mode/key:
those differences change semantics, so they hash apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.errors import SCIError
from repro.events.filters import EventFilter, spec_key

#: aggregate functions the window operator supports
WINDOW_AGGS = ("count", "avg")
#: selector modes
SELECT_MODES = ("min", "max")


class OpSpecError(SCIError):
    """An operator spec is malformed."""


@dataclass(frozen=True)
class OpSpec:
    """One node of a continuous-query plan, canonical by construction.

    ``params`` is a sorted tuple of ``(name, canonical-string)`` pairs —
    already normalised by the constructors below — and ``inputs`` are the
    upstream plans. ``filter``/``where`` carry the executable
    :class:`EventFilter` payloads; they are excluded from equality because
    their canonical keys already appear in ``params``.
    """

    op: str
    params: Tuple[Tuple[str, str], ...] = ()
    inputs: Tuple["OpSpec", ...] = ()
    filter: Optional[EventFilter] = field(default=None, compare=False)
    where: Optional[EventFilter] = field(default=None, compare=False)

    def canonical_key(self) -> str:
        """Structural hash key; equal keys mean interchangeable nodes."""
        params = ",".join(f"{name}={value}" for name, value in self.params)
        inputs = ";".join(node.canonical_key() for node in self.inputs)
        return f"{self.op}({params})[{inputs}]"

    def walk(self):
        """Yield this node then every upstream node, depth-first."""
        yield self
        for node in self.inputs:
            yield from node.walk()


def filter_op(event_filter: EventFilter) -> OpSpec:
    """A leaf over the published stream."""
    return OpSpec(
        op="filter",
        params=(("key", event_filter.canonical_key()),),
        filter=event_filter,
    )


def join_op(left: OpSpec, right: OpSpec) -> OpSpec:
    """Join-on-subject of two upstream operators."""
    return OpSpec(op="join", inputs=(left, right))


def window_op(source: OpSpec, agg: str, width: float,
              key: str = "value", emit_empty: bool = False) -> OpSpec:
    """Tumbling windowed aggregate over one upstream operator.

    ``key`` addresses the aggregated quantity exactly like
    :class:`~repro.events.filters.AttributeFilter`: the special key
    ``"value"`` reads ``event.value``, anything else reads
    ``event.attributes[key]``. ``emit_empty`` controls whether windows that
    saw no events still emit a zero-count aggregate.
    """
    if agg not in WINDOW_AGGS:
        raise OpSpecError(f"unknown window aggregate {agg!r}")
    if not width > 0:
        raise OpSpecError(f"window width must be > 0, got {width!r}")
    return OpSpec(
        op="window",
        params=(("agg", agg), ("emit_empty", spec_key(bool(emit_empty))),
                ("key", key), ("width", spec_key(float(width)))),
        inputs=(source,),
    )


def select_op(source: OpSpec, mode: str, key: str,
              where: Optional[EventFilter] = None) -> OpSpec:
    """Qualitative min/max-by-attribute selector over one upstream operator."""
    if mode not in SELECT_MODES:
        raise OpSpecError(f"unknown select mode {mode!r}")
    params = [("key", key), ("mode", mode)]
    if where is not None:
        params.append(("where", where.canonical_key()))
    return OpSpec(
        op="select",
        params=tuple(sorted(params)),
        inputs=(source,),
        where=where,
    )

"""The SCI query model (Section 4.3, Figure 6).

"There are five sections central to the formation of a query": What (entity
type, named entity, or an information pattern), Where (a location constraint
in the intermediate location language), When (the temporal conditions under
which the configuration executes), Which (qualitative selection among
multiple candidates) and the mode (profile request, event subscription,
one-time subscription, advertisement request).

:mod:`repro.query.model` is the object model, :mod:`repro.query.language`
the XML wire format matching Figure 6, :mod:`repro.query.temporal` the When
conditions and :mod:`repro.query.selection` the Which policies.
"""

from repro.query.model import Query, QueryMode, WhatClause, QueryBuilder
from repro.query.temporal import WhenClause
from repro.query.selection import WhichClause, Criterion, Candidate
from repro.query.language import query_to_xml, query_from_xml

__all__ = [
    "Query",
    "QueryMode",
    "WhatClause",
    "QueryBuilder",
    "WhenClause",
    "WhichClause",
    "Criterion",
    "Candidate",
    "query_to_xml",
    "query_from_xml",
]

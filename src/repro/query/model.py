"""The query object model (Section 4.3, Figure 6).

A query has five sections — What, Where, When, Which — plus the mode that
"indicates the intent of the query". Four modes are supported, quoting the
paper:

* **Profile request**: "In order to obtain information about CEs."
* **Event subscription**: "To subscribe to a piece of information and be
  updated with any changes."
* **One-time subscription**: "As above, but the subscription is cancelled
  after the CAA receives an event."
* **Advertisement request**: "The interface to communicate with a service."
"""

from __future__ import annotations

import enum
import itertools
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.errors import QueryError
from repro.core.types import TypeSpec
from repro.location.language import LocationExpr, parse_location
from repro.query.selection import WhichClause
from repro.query.temporal import WhenClause

_query_counter = itertools.count(1)

_PATTERN_RE = re.compile(
    r"^(?P<type>[A-Za-z0-9_.-]+)"
    r"(?:\[(?P<repr>[A-Za-z0-9_.-]+)\])?"
    r"(?:@(?P<subject>.+))?$"
)


class QueryMode(enum.Enum):
    PROFILE = "profile"
    SUBSCRIPTION = "subscribe"
    ONE_TIME = "once"
    ADVERTISEMENT = "advertisement"


@dataclass(frozen=True)
class WhatClause:
    """What the query is looking for.

    Three forms, per the paper: "an entity type (e.g. a printer), a named
    entity (identified by a GUID) or information fitting a pattern (e.g.
    temperature in degrees Celsius)".
    """

    kind: str                       # "entity-type" | "named" | "pattern"
    value: Optional[str] = None     # entity type or entity name/GUID
    pattern: Optional[TypeSpec] = None

    def __post_init__(self):
        if self.kind not in ("entity-type", "named", "pattern"):
            raise QueryError(f"unknown What kind: {self.kind!r}")
        if self.kind == "pattern" and self.pattern is None:
            raise QueryError("What 'pattern' needs a TypeSpec")
        if self.kind in ("entity-type", "named") and not self.value:
            raise QueryError(f"What {self.kind!r} needs a value")

    @classmethod
    def entity_type(cls, type_name: str) -> "WhatClause":
        return cls("entity-type", value=type_name)

    @classmethod
    def named(cls, name: str) -> "WhatClause":
        return cls("named", value=name)

    @classmethod
    def for_pattern(cls, type_name: str, representation: str = "any",
                    subject: Optional[str] = None) -> "WhatClause":
        return cls("pattern", pattern=TypeSpec(type_name, representation, subject))

    def __str__(self) -> str:
        if self.kind == "entity-type":
            return f"type:{self.value}"
        if self.kind == "named":
            return f"named:{self.value}"
        spec = self.pattern
        text = spec.type_name
        if spec.representation != "any":
            text += f"[{spec.representation}]"
        if spec.subject is not None:
            text += f"@{spec.subject}"
        return f"pattern:{text}"

    @classmethod
    def parse(cls, text: str) -> "WhatClause":
        text = text.strip()
        if text.startswith("type:"):
            return cls.entity_type(text[len("type:"):].strip())
        if text.startswith("named:"):
            return cls.named(text[len("named:"):].strip())
        if text.startswith("pattern:"):
            body = text[len("pattern:"):].strip()
            match = _PATTERN_RE.match(body)
            if not match:
                raise QueryError(f"unparseable What pattern: {body!r}")
            return cls.for_pattern(
                match.group("type"),
                match.group("repr") or "any",
                match.group("subject"),
            )
        raise QueryError(f"unparseable What clause: {text!r}")


@dataclass
class Query:
    """One complete SCI query (Figure 6)."""

    owner_id: str
    what: WhatClause
    where: LocationExpr = field(default_factory=LocationExpr.anywhere)
    when: WhenClause = field(default_factory=WhenClause.now)
    which: WhichClause = field(default_factory=WhichClause.any)
    mode: QueryMode = QueryMode.SUBSCRIPTION
    query_id: str = field(default_factory=lambda: f"q-{next(_query_counter)}")

    # -- wire form ----------------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        return {
            "query_id": self.query_id,
            "owner_id": self.owner_id,
            "what": str(self.what),
            "where": str(self.where),
            "when": str(self.when),
            "which": str(self.which),
            "mode": self.mode.value,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "Query":
        try:
            return cls(
                owner_id=data["owner_id"],
                what=WhatClause.parse(data["what"]),
                where=parse_location(data.get("where", "anywhere")),
                when=WhenClause.parse(data.get("when", "now")),
                which=WhichClause.parse(data.get("which", "any")),
                mode=QueryMode(data.get("mode", "subscribe")),
                query_id=data.get("query_id") or f"q-{next(_query_counter)}",
            )
        except KeyError as exc:
            raise QueryError(f"query wire form missing field: {exc}") from None

    def __str__(self) -> str:
        return (f"Query({self.query_id}: {self.mode.value} {self.what} "
                f"where={self.where} when={self.when} which={self.which})")


class QueryBuilder:
    """Fluent construction of queries.

    >>> query = (QueryBuilder("john")
    ...          .advertisement("printer")
    ...          .where("within(room:L10)")
    ...          .which("reachable; available; no-queue; closest-to(me)")
    ...          .build())
    """

    def __init__(self, owner_id: str):
        self._owner_id = owner_id
        self._what: Optional[WhatClause] = None
        self._where = LocationExpr.anywhere()
        self._when = WhenClause.now()
        self._which = WhichClause.any()
        self._mode = QueryMode.SUBSCRIPTION
        self._query_id: Optional[str] = None

    # What + mode shorthands -----------------------------------------------------

    def profile_of(self, name: str) -> "QueryBuilder":
        self._what = WhatClause.named(name)
        self._mode = QueryMode.PROFILE
        return self

    def profiles_of_type(self, entity_type: str) -> "QueryBuilder":
        self._what = WhatClause.entity_type(entity_type)
        self._mode = QueryMode.PROFILE
        return self

    def subscribe(self, type_name: str, representation: str = "any",
                  subject: Optional[str] = None) -> "QueryBuilder":
        self._what = WhatClause.for_pattern(type_name, representation, subject)
        self._mode = QueryMode.SUBSCRIPTION
        return self

    def once(self, type_name: str, representation: str = "any",
             subject: Optional[str] = None) -> "QueryBuilder":
        self._what = WhatClause.for_pattern(type_name, representation, subject)
        self._mode = QueryMode.ONE_TIME
        return self

    def advertisement(self, entity_type: str) -> "QueryBuilder":
        self._what = WhatClause.entity_type(entity_type)
        self._mode = QueryMode.ADVERTISEMENT
        return self

    # Remaining clauses -------------------------------------------------------------

    def where(self, expr: object) -> "QueryBuilder":
        self._where = expr if isinstance(expr, LocationExpr) else parse_location(str(expr))
        return self

    def when(self, clause: object) -> "QueryBuilder":
        self._when = clause if isinstance(clause, WhenClause) else WhenClause.parse(str(clause))
        return self

    def which(self, clause: object) -> "QueryBuilder":
        self._which = clause if isinstance(clause, WhichClause) else WhichClause.parse(str(clause))
        return self

    def with_id(self, query_id: str) -> "QueryBuilder":
        self._query_id = query_id
        return self

    def build(self) -> Query:
        if self._what is None:
            raise QueryError("a query needs a What clause")
        kwargs = {
            "owner_id": self._owner_id,
            "what": self._what,
            "where": self._where,
            "when": self._when,
            "which": self._which,
            "mode": self._mode,
        }
        if self._query_id is not None:
            kwargs["query_id"] = self._query_id
        return Query(**kwargs)

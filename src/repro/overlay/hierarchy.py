"""The hierarchical comparator for the Figure-1 experiment.

The paper's claim: "Routing through an overlay network avoids any
bottlenecks created when using hierarchical infrastructures whilst achieving
comparable performance [9]."

To test that we need the thing it beats: a tree of servers where messages
between leaves climb to the lowest common ancestor and descend — every
cross-subtree message transits interior nodes, concentrating load at the
root. Each node applies a service time per message (a server's processing
capacity), so under load the root's queue — and end-to-end latency — grows.
Overlay nodes in the benchmark are given the same service time for a fair
comparison.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Dict, List, Optional

from repro.core.errors import RoutingError
from repro.core.ids import GUID
from repro.net.message import Message
from repro.net.transport import Network, Process

logger = logging.getLogger(__name__)


class HierarchyNode(Process):
    """One server in the tree."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 label: str, service_time: float = 0.0):
        super().__init__(guid, host_id, network, name=f"tree:{label}")
        self.label = label
        self.service_time = service_time
        self.parent: Optional["HierarchyNode"] = None
        self.children: List["HierarchyNode"] = []
        #: leaf labels reachable through each child (routing state)
        self._leaf_index: Dict[str, "HierarchyNode"] = {}
        self._busy_until = 0.0
        self.handled = 0
        self.max_queue_delay = 0.0
        self.on_delivery: List[Callable[[str, Dict[str, Any], int], None]] = []

    @property
    def role(self) -> str:
        """Position in the tree, for the load-by-role metric series."""
        if self.parent is None:
            return "root" if self.children else "leaf"
        return "interior" if self.children else "leaf"

    # -- tree construction -------------------------------------------------------

    def attach_child(self, child: "HierarchyNode") -> None:
        child.parent = self
        self.children.append(child)

    def index_leaf(self, leaf_label: str, via: "HierarchyNode") -> None:
        self._leaf_index[leaf_label] = via

    # -- routing --------------------------------------------------------------------

    def route(self, target_leaf: str, kind: str,
              body: Optional[Dict[str, Any]] = None) -> None:
        """Originate a message from this node toward a leaf label."""
        self._route_step({
            "target": target_leaf,
            "kind": kind,
            "body": body or {},
            "hops": 0,
        })

    def _route_step(self, payload: Dict[str, Any]) -> None:
        # Model server capacity: each message occupies the node for
        # service_time; concurrent arrivals queue.
        now = self.scheduler.now
        start = max(now, self._busy_until)
        self._busy_until = start + self.service_time
        queue_delay = start - now
        self.max_queue_delay = max(self.max_queue_delay, queue_delay)
        self.handled += 1
        self.network.obs.metrics.counter(
            "hierarchy.node.load", "messages handled per tree server",
            labels=("node", "role")).inc(node=self.label, role=self.role)
        self.network.obs.metrics.histogram(
            "hierarchy.queue.delay",
            "service-time queueing delay at tree servers").observe(queue_delay)
        delay = (start + self.service_time) - now
        if delay > 0:
            self.scheduler.schedule(delay, self._forward, payload)
        else:
            self._forward(payload)

    def _forward(self, payload: Dict[str, Any]) -> None:
        target = payload["target"]
        if target == self.label:
            for callback in self.on_delivery:
                callback(payload["kind"], payload["body"], payload["hops"])
            return
        via = self._leaf_index.get(target)
        next_node = via if via is not None else self.parent
        if next_node is None:
            logger.warning("%s cannot route to %r", self.name, target)
            return
        onward = dict(payload)
        onward["hops"] += 1
        self.send(next_node.guid, "h-route", onward)

    def on_message(self, message: Message) -> None:
        if message.kind == "h-route":
            self._route_step(message.payload)
        else:
            logger.debug("%s ignoring %s", self.name, message)


class HierarchyNetwork:
    """A balanced tree of :class:`HierarchyNode` servers."""

    def __init__(self, network: Network, leaf_count: int,
                 branching: int = 4, service_time: float = 0.0,
                 host_prefix: str = "tree"):
        if leaf_count < 1:
            raise RoutingError(f"need at least one leaf, got {leaf_count}")
        if branching < 2:
            raise RoutingError(f"branching must be >= 2, got {branching}")
        self.network = network
        self.branching = branching
        self._leaves: Dict[str, HierarchyNode] = {}
        self._all: List[HierarchyNode] = []

        def make_node(label: str) -> HierarchyNode:
            host = network.ensure_host(f"{host_prefix}:{label}")
            node = HierarchyNode(network.guids.mint(), host.host_id, network,
                                 label, service_time)
            self._all.append(node)
            return node

        # build leaves, then stack interior levels up to a single root
        level = [make_node(f"leaf-{index}") for index in range(leaf_count)]
        for node in level:
            self._leaves[node.label] = node
        depth = 0
        while len(level) > 1:
            depth += 1
            parents = []
            for start in range(0, len(level), branching):
                group = level[start:start + branching]
                parent = make_node(f"int-{depth}-{start // branching}")
                for child in group:
                    parent.attach_child(child)
                parents.append(parent)
            level = parents
        self.root = level[0]
        self._index_leaves(self.root)

    def _index_leaves(self, node: HierarchyNode) -> List[str]:
        """Populate each interior node's leaf index; returns leaves below."""
        if not node.children:
            return [node.label]
        below: List[str] = []
        for child in node.children:
            leaves = self._index_leaves(child)
            for leaf in leaves:
                node.index_leaf(leaf, via=child)
            below.extend(leaves)
        return below

    # -- API mirroring SCINet for the benchmark harness ------------------------------

    def leaf(self, index: int) -> HierarchyNode:
        return self._leaves[f"leaf-{index}"]

    def leaves(self) -> List[HierarchyNode]:
        return [self._leaves[label] for label in sorted(self._leaves)]

    def all_nodes(self) -> List[HierarchyNode]:
        return list(self._all)

    def size(self) -> int:
        return len(self._all)

    def load_by_node(self) -> Dict[str, int]:
        return {node.label: node.handled for node in self._all}

    def root_load(self) -> int:
        return self.root.handled

"""One SCINET overlay node: Pastry-style prefix routing over GUIDs.

Each range's Context Server attaches one overlay node (usually on its own
host). A node keeps a routing table (rows by shared-prefix length, columns
by next hex digit) and a leaf set of numerically closest nodes. ``route``
forwards a payload toward the node whose GUID is numerically closest to a
key; expected hop count is O(log16 N), which the Figure-1 benchmark
verifies.

Nodes also answer DHT verbs (the range directory's storage), apply
broadcast announcements (directory replication) and count per-node routed
load for the hotspot analysis.

Dissemination has two modes. The default is a deterministic distribution
tree: each forwarder owns a clockwise ring arc and delegates disjoint
sub-arcs to the known nodes inside it, so a full-overlay announce costs
exactly N-1 messages (see DESIGN.md, "Overlay fast paths"). The original
dedup-flood survives behind ``broadcast(..., flood=True)`` as the ablation
and equivalence baseline.
"""

from __future__ import annotations

import bisect
import logging
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.ids import GUID, GUID_DIGITS
from repro.net.message import Message
from repro.net.transport import Network, Process

logger = logging.getLogger(__name__)

#: leaf-set half width (nodes kept on each numeric side)
LEAF_HALF = 4


_RING = 1 << 128


def _ring_offset(origin: GUID, target: GUID) -> int:
    """Clockwise distance from ``origin`` to ``target`` on the GUID ring."""
    return (target.value - origin.value) % _RING


class RoutingTable:
    """Pastry routing state: prefix table + exact ring-order leaf sets.

    The prefix table gives O(log16 N) hops; the leaf sets (``LEAF_HALF``
    immediate ring neighbours on each side) give the final-hop correctness
    guarantee: a key that falls within a node's leaf span is handed straight
    to the numerically closest member. Leaf sets are maintained exactly by
    the management plane (:meth:`repro.overlay.scinet.SCINet.join`), which
    is what a converged Pastry maintenance protocol produces.

    The derived views — :meth:`known_nodes`, :meth:`nodes_clockwise`, the
    membership set behind ``in``/``size`` and the leaf-span extents — are
    memoised and invalidated on mutation, so the per-hop fallback scan,
    broadcast fan-out and span checks never rebuild a sorted set per call.
    ``cache_hits``/``cache_builds`` expose the memo's effectiveness to the
    perf smoke gate.
    """

    def __init__(self, owner: GUID):
        self.owner = owner
        # rows[row][digit] -> node GUID; row = shared prefix length
        self._rows: Dict[int, Dict[int, GUID]] = {}
        self._right: List[GUID] = []   # successors, nearest first
        self._left: List[GUID] = []    # predecessors, nearest first
        # precomputed leaf-span extents: clockwise offset to the furthest
        # right leaf / counterclockwise offset to the furthest left leaf
        self._right_span = 0
        self._left_span = 0
        # memoised views (None = stale, rebuilt on next read)
        self._known_sorted: Optional[List[GUID]] = None
        self._known_set: Optional[Set[GUID]] = None
        self._clockwise: Optional[List[GUID]] = None
        #: cache effectiveness counters (read by scripts/smoke_perf.py)
        self.cache_hits = 0
        self.cache_builds = 0

    # -- maintenance ----------------------------------------------------------

    def add(self, node: GUID) -> None:
        """Add a prefix-table entry (leaf sets are set via set_leaves)."""
        if node == self.owner:
            return
        row = self.owner.shared_prefix_len(node)
        digit = node.digit(row)
        slot = self._rows.setdefault(row, {})
        incumbent = slot.get(digit)
        if incumbent is None or node.distance(self.owner) < incumbent.distance(self.owner):
            slot[digit] = node
            self._invalidate()

    def remove(self, node: GUID) -> None:
        if node == self.owner:
            return
        changed = False
        row = self.owner.shared_prefix_len(node)
        slot = self._rows.get(row, {})
        digit = node.digit(row)
        if slot.get(digit) == node:
            del slot[digit]
            changed = True
        leaves_changed = False
        if node in self._right:
            self._right.remove(node)
            leaves_changed = True
        if node in self._left:
            self._left.remove(node)
            leaves_changed = True
        if leaves_changed:
            self._leaves_changed()
        elif changed:
            self._invalidate()

    def set_leaves(self, members: List[GUID]) -> None:
        """Recompute exact leaf sets from the full membership."""
        others = [node for node in members if node != self.owner]
        by_clockwise = sorted(others, key=lambda node: _ring_offset(self.owner, node))
        self._right = by_clockwise[:LEAF_HALF]
        self._left = list(reversed(by_clockwise))[:LEAF_HALF]
        self._leaves_changed()

    def set_leaf_lists(self, right: List[GUID], left: List[GUID]) -> None:
        """Install exact leaf lists (nearest first) computed by the
        management plane's sorted ring — the incremental counterpart of
        :meth:`set_leaves`."""
        self._right = list(right)
        self._left = list(left)
        self._leaves_changed()

    def _leaves_changed(self) -> None:
        self._right_span = (_ring_offset(self.owner, self._right[-1])
                            if self._right else 0)
        self._left_span = (_ring_offset(self._left[-1], self.owner)
                           if self._left else 0)
        self._invalidate()

    def _invalidate(self) -> None:
        self._known_sorted = None
        self._known_set = None
        self._clockwise = None

    def _rebuild(self) -> None:
        nodes: Set[GUID] = set(self._right)
        nodes.update(self._left)
        for slot in self._rows.values():
            nodes.update(slot.values())
        self._known_set = nodes
        self._known_sorted = sorted(nodes)
        # the owner is never in the table, so bisect yields the rotation
        # point that turns value order into clockwise ring order
        pivot = bisect.bisect_right(self._known_sorted, self.owner)
        self._clockwise = self._known_sorted[pivot:] + self._known_sorted[:pivot]
        self.cache_builds += 1

    # -- lookup ----------------------------------------------------------------

    def next_hop(self, key: GUID) -> Optional[GUID]:
        """The node to forward ``key`` toward; None means deliver here.

        Rule order (Pastry): leaf-span shortcut, then prefix hop, then the
        rare-case fallback requiring strict (prefix, -distance) progress —
        which makes routing loop-free by construction.
        """
        if key == self.owner:
            return None
        covered, closest_leaf = self._leaf_span_lookup(key)
        if covered:
            return None if closest_leaf == self.owner else closest_leaf
        row = self.owner.shared_prefix_len(key)
        entry = self._rows.get(row, {}).get(key.digit(row))
        if entry is not None:
            return entry  # strictly longer shared prefix with the key
        # Fallback: progress in (shared prefix, then numeric distance).
        my_distance = key.distance(self.owner)
        best: Optional[GUID] = None
        best_rank = (row, -my_distance)
        for node in self.known_nodes():
            rank = (node.shared_prefix_len(key), -key.distance(node))
            if rank > best_rank:
                best = node
                best_rank = rank
        return best

    def _leaf_span_lookup(self, key: GUID):
        """(covered?, closest member) for keys inside the leaf span."""
        key_clockwise = _ring_offset(self.owner, key)
        covered = (key_clockwise <= self._right_span
                   or (_RING - key_clockwise) <= self._left_span)
        if not covered:
            return False, None
        closest = self.owner
        closest_rank = (key.distance(self.owner), self.owner.value)
        for node in self._right:
            rank = (key.distance(node), node.value)
            if rank < closest_rank:
                closest = node
                closest_rank = rank
        for node in self._left:
            rank = (key.distance(node), node.value)
            if rank < closest_rank:
                closest = node
                closest_rank = rank
        return True, closest

    def known_nodes(self) -> List[GUID]:
        """Every node in the table, sorted by value (cached; treat as
        read-only — mutating the returned list corrupts the memo)."""
        if self._known_sorted is None:
            self._rebuild()
        else:
            self.cache_hits += 1
        return self._known_sorted

    def nodes_clockwise(self) -> List[GUID]:
        """Known nodes ordered by clockwise ring offset from the owner
        (cached; treat as read-only)."""
        if self._clockwise is None:
            self._rebuild()
        else:
            self.cache_hits += 1
        return self._clockwise

    def leaves(self) -> List[GUID]:
        return list(self._right) + list(self._left)

    def size(self) -> int:
        if self._known_set is None:
            self._rebuild()
        else:
            self.cache_hits += 1
        return len(self._known_set)

    def __contains__(self, node: GUID) -> bool:
        if self._known_set is None:
            self._rebuild()
        else:
            self.cache_hits += 1
        return node in self._known_set


class OverlayNode(Process):
    """One member of the SCINET."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 range_name: str = "", owner_cs_hex: Optional[str] = None):
        super().__init__(guid, host_id, network, name=f"scinet:{range_name or guid}")
        self.range_name = range_name
        self.owner_cs_hex = owner_cs_hex
        self.table = RoutingTable(guid)
        #: replicated range directory: place name -> CS GUID hex
        self.directory: Dict[str, str] = {}
        #: DHT storage this node is responsible for
        self.store: Dict[str, Any] = {}
        self._seen_broadcasts: Set[str] = set()
        self._bcast_seq = 0
        self.routed = 0          # messages this node forwarded or delivered
        self.delivered = 0
        #: callbacks on delivered application payloads: (kind, body, hops)
        self.on_delivery: List[Callable[[str, Dict[str, Any], int], None]] = []
        #: default dissemination mode; the management plane sets this from
        #: SCINet(flood=...) — True re-enables the dedup flood everywhere
        self.flood_broadcasts = False
        # hot-path metric handles, resolved once at attach time instead of
        # by name + label on every routed/delivered message
        metrics = network.obs.metrics
        self._node_label = range_name or guid.hex[:8]
        self._load_counter = metrics.counter(
            "overlay.node.load", "route steps handled per overlay node",
            labels=("node",))
        self._delivered_counter = metrics.counter(
            "overlay.route.delivered",
            "routed payloads that reached their key owner")
        self._hops_histogram = metrics.histogram(
            "overlay.route.hops", "overlay hops per delivered route")
        self._lookup_counter = metrics.counter(
            "overlay.directory.lookups", "replicated range-directory reads",
            labels=("hit",))
        self._bcast_sent = metrics.counter(
            "overlay.bcast.sent", "broadcast messages forwarded, by mode",
            labels=("mode",))
        self._bcast_dup = metrics.counter(
            "overlay.bcast.dup_suppressed",
            "duplicate broadcast arrivals suppressed by the dedup set")
        self._fd_heartbeats = metrics.counter(
            "overlay.fd.heartbeats", "o-hb probes sent to leaf neighbours")
        self._fd_suspicions = metrics.counter(
            "overlay.fd.suspicions",
            "leaf neighbours suspected after fd_timeout of silence")
        # failure-detector state (inert until enable_failure_detector)
        self.fd_interval = 0.0
        self.fd_timeout = 0.0
        #: callback fired as (suspect_guid, reporter_guid) on missed heartbeats
        self.on_suspect: Optional[Callable[[GUID, GUID], None]] = None
        self._fd_timer = None
        self._fd_last: Dict[GUID, float] = {}

    # -- public API ----------------------------------------------------------------

    def route(self, key: GUID, kind: str, body: Optional[Dict[str, Any]] = None,
              origin: Optional[GUID] = None) -> None:
        """Route ``body`` toward the node numerically closest to ``key``."""
        # An explicit route() call is a traced operation in its own right:
        # open a root span here (or a child, if the caller is mid-trace) so
        # every forwarding hop hangs off it via the message context.
        with self.network.obs.tracer.span("overlay.route", node=self.name,
                                          kind=kind, origin=True):
            self._route_step({
                "key": key.hex,
                "kind": kind,
                "body": body or {},
                "origin": (origin or self.guid).hex,
                "hops": 0,
            })

    def broadcast(self, kind: str, body: Dict[str, Any],
                  flood: Optional[bool] = None) -> None:
        """Announce over the overlay: distribution tree by default, or the
        dedup flood when ``flood`` (or the node default) says so."""
        if flood is None:
            flood = self.flood_broadcasts
        # a per-node sequence (not the timestamp) keeps ids unique when one
        # node originates two same-kind broadcasts in the same tick — e.g.
        # a survivor retracting two ranges after a correlated crash
        self._bcast_seq += 1
        bcast_id = f"{self.guid.hex[:12]}:{self._bcast_seq}:{kind}"
        payload = {"bcast_id": bcast_id, "kind": kind, "body": body, "hops": 0}
        self._apply_broadcast(payload)
        if flood:
            self._forward_broadcast(payload)
        else:
            self._forward_tree(payload, self.guid.hex)

    def dht_put(self, name: str, value: Any) -> None:
        self.route(GUID.from_name(name), "dht-put", {"name": name, "value": value})

    def dht_get(self, name: str) -> None:
        """Route a get; the result arrives as a ``dht-result`` delivery."""
        self.route(GUID.from_name(name), "dht-get", {"name": name})

    def lookup_place(self, place: str) -> Optional[str]:
        """Synchronous directory lookup (replicated cache)."""
        with self.network.obs.tracer.span_if_active(
                "overlay.lookup", node=self.name, place=place) as span:
            found = self.directory.get(place)
            if span is not None:
                span.set(found=found is not None)
        self._lookup_counter.inc(hit=str(found is not None).lower())
        return found

    # -- failure detection -------------------------------------------------------------

    def enable_failure_detector(self, interval: float = 5.0,
                                timeout: float = 15.0,
                                on_suspect: Optional[Callable[[GUID, GUID], None]] = None) -> None:
        """Monitor leaf-set neighbours with periodic ``o-hb`` heartbeats.

        Leaf sets are ring-symmetric (my successor's predecessor is me), so
        one-way probes suffice: every neighbour I probe is probing me back,
        and ``timeout`` of silence from a neighbour means it is gone — the
        detector then fires ``on_suspect(suspect, self.guid)``. ``timeout``
        should span several intervals plus network latency so a single lost
        heartbeat never ejects a live node.

        Opt-in because the periodic probe keeps the scheduler busy forever,
        which would hang ``run_until_idle``-style workloads.
        """
        if self._fd_timer is not None:
            return
        self.fd_interval = interval
        self.fd_timeout = timeout
        self.on_suspect = on_suspect
        self._fd_last = {}
        self._fd_timer = self.scheduler.schedule_periodic(interval, self._fd_tick)

    def disable_failure_detector(self) -> None:
        if self._fd_timer is not None:
            self._fd_timer.cancel()
            self._fd_timer = None
        self._fd_last = {}

    def crash(self) -> None:
        """Simulate abrupt node death: stop probing, drop off the network.

        The management plane is *not* told — survivors must notice the
        silence through their own detectors (or an oracle ``fail`` call).
        """
        self.disable_failure_detector()
        self.detach()

    def _fd_tick(self) -> None:
        # a detached (crashed) node must not keep suspecting live peers
        if self.network.process(self.guid) is not self:
            self.disable_failure_detector()
            return
        now = self.scheduler.now
        # dedup in table order, not via set(): probe order decides wire order
        targets = list(dict.fromkeys(self.table.leaves()))
        live = frozenset(targets)
        for stale in [guid for guid in self._fd_last if guid not in live]:
            del self._fd_last[stale]
        for leaf in targets:
            self.send(leaf, "o-hb", {})
        if targets:
            self._fd_heartbeats.inc(len(targets))
        for leaf in targets:
            # first observation gets a full timeout of grace from now
            last = self._fd_last.setdefault(leaf, now)
            if now - last > self.fd_timeout:
                del self._fd_last[leaf]
                self._fd_suspicions.inc()
                logger.info("%s suspects %s (%.1fs of silence)",
                            self.name, leaf, now - last)
                if self.on_suspect is not None:
                    self.on_suspect(leaf, self.guid)

    # -- routing machinery -------------------------------------------------------------

    def _route_step(self, payload: Dict[str, Any]) -> None:
        self.routed += 1
        self._load_counter.inc(node=self._node_label)
        key = GUID.from_hex(payload["key"])
        next_hop = self.table.next_hop(key)
        if next_hop is None:
            self._deliver(payload)
            return
        if payload["hops"] >= GUID_DIGITS * 2:
            logger.warning("%s dropping over-hopped route to %s", self.name, key)
            return
        payload = dict(payload)
        payload["hops"] += 1
        self.send(next_hop, "o-route", payload)

    def _deliver(self, payload: Dict[str, Any]) -> None:
        self.delivered += 1
        self._delivered_counter.inc()
        self._hops_histogram.observe(payload["hops"])
        kind = payload["kind"]
        body = payload["body"]
        hops = payload["hops"]
        origin = GUID.from_hex(payload["origin"])
        if kind == "dht-put":
            self.store[body["name"]] = body["value"]
        elif kind == "dht-get":
            self.send(origin, "o-delivery", {
                "kind": "dht-result",
                "body": {"name": body["name"],
                         "value": self.store.get(body["name"]),
                         "found": body["name"] in self.store},
                "hops": hops,
            })
        for callback in self.on_delivery:
            callback(kind, body, hops)

    # -- broadcast machinery ----------------------------------------------------------------

    def _apply_broadcast(self, payload: Dict[str, Any]) -> None:
        self._seen_broadcasts.add(payload["bcast_id"])
        kind = payload["kind"]
        body = payload["body"]
        if kind == "announce-range":
            for place in body.get("places", []):
                self.directory[place] = body["cs"]
        elif kind == "retract-range":
            doomed = {place for place, cs in self.directory.items()
                      if cs == body["cs"]}
            for place in doomed:
                del self.directory[place]
        for callback in self.on_delivery:
            callback(kind, body, payload["hops"])

    def _forward_broadcast(self, payload: Dict[str, Any]) -> None:
        onward = dict(payload)
        onward["hops"] += 1
        targets = self.table.known_nodes()
        for node in targets:
            self.send(node, "o-bcast", onward)
        if targets:
            self._bcast_sent.inc(len(targets), mode="flood")

    def _forward_tree(self, payload: Dict[str, Any], until_hex: str) -> None:
        """Forward within this node's clockwise arc ``(self, until)``.

        Delegation rule: the known nodes inside the arc, in clockwise
        order, each receive the message once, and delegate ``d[i]`` becomes
        responsible for the sub-arc ``(d[i], d[i+1])`` (the last one
        inherits the original bound). Sub-arcs are disjoint and every
        member falls in exactly one, so a full-overlay announce delivers
        exactly once to every node — N-1 messages, no duplicates. Coverage
        needs only the leaf-set invariant (each node knows its immediate
        ring successor); see DESIGN.md, "Overlay fast paths".
        """
        until = GUID.from_hex(until_hex)
        span = _ring_offset(self.guid, until)
        if span == 0:
            span = _RING  # originator: the whole ring is this node's arc
        delegates: List[GUID] = []
        for node in self.table.nodes_clockwise():
            if _ring_offset(self.guid, node) >= span:
                break  # clockwise order: everything further is outside
            delegates.append(node)
        if not delegates:
            return
        hops = payload["hops"] + 1
        for index, node in enumerate(delegates):
            bound = (delegates[index + 1].hex if index + 1 < len(delegates)
                     else until_hex)
            onward = dict(payload)
            onward["hops"] = hops
            onward["until"] = bound
            self.send(node, "o-bcast", onward)
        self._bcast_sent.inc(len(delegates), mode="tree")

    # -- messages ----------------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == "o-route":
            # one span per forwarding hop, chained under the origin's span
            with self.network.obs.tracer.span_if_active(
                    "overlay.route", node=self.name,
                    hops=message.payload.get("hops", 0)):
                self._route_step(message.payload)
        elif message.kind == "o-bcast":
            if message.payload["bcast_id"] in self._seen_broadcasts:
                self._bcast_dup.inc()
                return
            self._apply_broadcast(message.payload)
            until_hex = message.payload.get("until")
            if until_hex is None:
                self._forward_broadcast(message.payload)
            else:
                self._forward_tree(message.payload, until_hex)
        elif message.kind == "o-delivery":
            with self.network.obs.tracer.span_if_active(
                    "overlay.deliver", node=self.name,
                    kind=message.payload["kind"]):
                for callback in self.on_delivery:
                    callback(message.payload["kind"], message.payload["body"],
                             message.payload["hops"])
        elif message.kind == "o-hb":
            self._fd_last[message.sender] = self.scheduler.now
        else:
            logger.debug("%s ignoring %s", self.name, message)

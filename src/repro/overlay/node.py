"""One SCINET overlay node: Pastry-style prefix routing over GUIDs.

Each range's Context Server attaches one overlay node (usually on its own
host). A node keeps a routing table (rows by shared-prefix length, columns
by next hex digit) and a leaf set of numerically closest nodes. ``route``
forwards a payload toward the node whose GUID is numerically closest to a
key; expected hop count is O(log16 N), which the Figure-1 benchmark
verifies.

Nodes also answer DHT verbs (the range directory's storage), apply
broadcast announcements (directory replication) and count per-node routed
load for the hotspot analysis.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.ids import GUID, GUID_DIGITS
from repro.net.message import Message
from repro.net.transport import Network, Process

logger = logging.getLogger(__name__)

#: leaf-set half width (nodes kept on each numeric side)
LEAF_HALF = 4


_RING = 1 << 128


def _ring_offset(origin: GUID, target: GUID) -> int:
    """Clockwise distance from ``origin`` to ``target`` on the GUID ring."""
    return (target.value - origin.value) % _RING


class RoutingTable:
    """Pastry routing state: prefix table + exact ring-order leaf sets.

    The prefix table gives O(log16 N) hops; the leaf sets (``LEAF_HALF``
    immediate ring neighbours on each side) give the final-hop correctness
    guarantee: a key that falls within a node's leaf span is handed straight
    to the numerically closest member. Leaf sets are maintained exactly by
    the management plane (:meth:`repro.overlay.scinet.SCINet.join`), which
    is what a converged Pastry maintenance protocol produces.
    """

    def __init__(self, owner: GUID):
        self.owner = owner
        # rows[row][digit] -> node GUID; row = shared prefix length
        self._rows: Dict[int, Dict[int, GUID]] = {}
        self._right: List[GUID] = []   # successors, nearest first
        self._left: List[GUID] = []    # predecessors, nearest first

    # -- maintenance ----------------------------------------------------------

    def add(self, node: GUID) -> None:
        """Add a prefix-table entry (leaf sets are set via set_leaves)."""
        if node == self.owner:
            return
        row = self.owner.shared_prefix_len(node)
        digit = node.digit(row)
        slot = self._rows.setdefault(row, {})
        incumbent = slot.get(digit)
        if incumbent is None or node.distance(self.owner) < incumbent.distance(self.owner):
            slot[digit] = node

    def remove(self, node: GUID) -> None:
        if node == self.owner:
            return
        row = self.owner.shared_prefix_len(node)
        slot = self._rows.get(row, {})
        digit = node.digit(row)
        if slot.get(digit) == node:
            del slot[digit]
        if node in self._right:
            self._right.remove(node)
        if node in self._left:
            self._left.remove(node)

    def set_leaves(self, members: List[GUID]) -> None:
        """Recompute exact leaf sets from the full membership."""
        others = [node for node in members if node != self.owner]
        by_clockwise = sorted(others, key=lambda node: _ring_offset(self.owner, node))
        self._right = by_clockwise[:LEAF_HALF]
        self._left = list(reversed(by_clockwise))[:LEAF_HALF]

    # -- lookup ----------------------------------------------------------------

    def next_hop(self, key: GUID) -> Optional[GUID]:
        """The node to forward ``key`` toward; None means deliver here.

        Rule order (Pastry): leaf-span shortcut, then prefix hop, then the
        rare-case fallback requiring strict (prefix, -distance) progress —
        which makes routing loop-free by construction.
        """
        if key == self.owner:
            return None
        covered, closest_leaf = self._leaf_span_lookup(key)
        if covered:
            return None if closest_leaf == self.owner else closest_leaf
        row = self.owner.shared_prefix_len(key)
        entry = self._rows.get(row, {}).get(key.digit(row))
        if entry is not None:
            return entry  # strictly longer shared prefix with the key
        # Fallback: progress in (shared prefix, then numeric distance).
        my_distance = key.distance(self.owner)
        best: Optional[GUID] = None
        best_rank = (row, -my_distance)
        for node in self.known_nodes():
            rank = (node.shared_prefix_len(key), -key.distance(node))
            if rank > best_rank:
                best = node
                best_rank = rank
        return best

    def _leaf_span_lookup(self, key: GUID):
        """(covered?, closest member) for keys inside the leaf span."""
        right_max = _ring_offset(self.owner, self._right[-1]) if self._right else 0
        left_max = _ring_offset(self._left[-1], self.owner) if self._left else 0
        key_clockwise = _ring_offset(self.owner, key)
        covered = (key_clockwise <= right_max
                   or (_RING - key_clockwise) <= left_max)
        if not covered:
            return False, None
        candidates = [self.owner] + self._right + self._left
        closest = min(candidates,
                      key=lambda node: (key.distance(node), node.value))
        return True, closest

    def known_nodes(self) -> List[GUID]:
        nodes: Set[GUID] = set(self._right) | set(self._left)
        for slot in self._rows.values():
            nodes.update(slot.values())
        return sorted(nodes)

    def leaves(self) -> List[GUID]:
        return list(self._right) + list(self._left)

    def size(self) -> int:
        return len(self.known_nodes())

    def __contains__(self, node: GUID) -> bool:
        return node in self.known_nodes()


class OverlayNode(Process):
    """One member of the SCINET."""

    def __init__(self, guid: GUID, host_id: str, network: Network,
                 range_name: str = "", owner_cs_hex: Optional[str] = None):
        super().__init__(guid, host_id, network, name=f"scinet:{range_name or guid}")
        self.range_name = range_name
        self.owner_cs_hex = owner_cs_hex
        self.table = RoutingTable(guid)
        #: replicated range directory: place name -> CS GUID hex
        self.directory: Dict[str, str] = {}
        #: DHT storage this node is responsible for
        self.store: Dict[str, Any] = {}
        self._seen_broadcasts: Set[str] = set()
        self.routed = 0          # messages this node forwarded or delivered
        self.delivered = 0
        #: callbacks on delivered application payloads: (kind, body, hops)
        self.on_delivery: List[Callable[[str, Dict[str, Any], int], None]] = []

    # -- public API ----------------------------------------------------------------

    def route(self, key: GUID, kind: str, body: Optional[Dict[str, Any]] = None,
              origin: Optional[GUID] = None) -> None:
        """Route ``body`` toward the node numerically closest to ``key``."""
        # An explicit route() call is a traced operation in its own right:
        # open a root span here (or a child, if the caller is mid-trace) so
        # every forwarding hop hangs off it via the message context.
        with self.network.obs.tracer.span("overlay.route", node=self.name,
                                          kind=kind, origin=True):
            self._route_step({
                "key": key.hex,
                "kind": kind,
                "body": body or {},
                "origin": (origin or self.guid).hex,
                "hops": 0,
            })

    def broadcast(self, kind: str, body: Dict[str, Any]) -> None:
        """Flood an announcement over the overlay mesh (with dedup)."""
        bcast_id = f"{self.guid.hex[:12]}:{self.network.scheduler.now}:{kind}"
        payload = {"bcast_id": bcast_id, "kind": kind, "body": body, "hops": 0}
        self._apply_broadcast(payload)
        self._forward_broadcast(payload)

    def dht_put(self, name: str, value: Any) -> None:
        self.route(GUID.from_name(name), "dht-put", {"name": name, "value": value})

    def dht_get(self, name: str) -> None:
        """Route a get; the result arrives as a ``dht-result`` delivery."""
        self.route(GUID.from_name(name), "dht-get", {"name": name})

    def lookup_place(self, place: str) -> Optional[str]:
        """Synchronous directory lookup (replicated cache)."""
        with self.network.obs.tracer.span_if_active(
                "overlay.lookup", node=self.name, place=place) as span:
            found = self.directory.get(place)
            if span is not None:
                span.set(found=found is not None)
        self.network.obs.metrics.counter(
            "overlay.directory.lookups", "replicated range-directory reads",
            labels=("hit",)).inc(hit=str(found is not None).lower())
        return found

    # -- routing machinery -------------------------------------------------------------

    def _route_step(self, payload: Dict[str, Any]) -> None:
        self.routed += 1
        self.network.obs.metrics.counter(
            "overlay.node.load", "route steps handled per overlay node",
            labels=("node",)).inc(node=self.range_name or self.guid.hex[:8])
        key = GUID.from_hex(payload["key"])
        next_hop = self.table.next_hop(key)
        if next_hop is None:
            self._deliver(payload)
            return
        if payload["hops"] >= GUID_DIGITS * 2:
            logger.warning("%s dropping over-hopped route to %s", self.name, key)
            return
        payload = dict(payload)
        payload["hops"] += 1
        self.send(next_hop, "o-route", payload)

    def _deliver(self, payload: Dict[str, Any]) -> None:
        self.delivered += 1
        metrics = self.network.obs.metrics
        metrics.counter("overlay.delivered",
                        "routed payloads that reached their key owner").inc()
        metrics.histogram("overlay.route.hops",
                          "overlay hops per delivered route").observe(
                              payload["hops"])
        kind = payload["kind"]
        body = payload["body"]
        hops = payload["hops"]
        origin = GUID.from_hex(payload["origin"])
        if kind == "dht-put":
            self.store[body["name"]] = body["value"]
        elif kind == "dht-get":
            self.send(origin, "o-delivery", {
                "kind": "dht-result",
                "body": {"name": body["name"],
                         "value": self.store.get(body["name"]),
                         "found": body["name"] in self.store},
                "hops": hops,
            })
        for callback in self.on_delivery:
            callback(kind, body, hops)

    # -- broadcast machinery ----------------------------------------------------------------

    def _apply_broadcast(self, payload: Dict[str, Any]) -> None:
        self._seen_broadcasts.add(payload["bcast_id"])
        kind = payload["kind"]
        body = payload["body"]
        if kind == "announce-range":
            for place in body.get("places", []):
                self.directory[place] = body["cs"]
        elif kind == "retract-range":
            doomed = {place for place, cs in self.directory.items()
                      if cs == body["cs"]}
            for place in doomed:
                del self.directory[place]
        for callback in self.on_delivery:
            callback(kind, body, payload["hops"])

    def _forward_broadcast(self, payload: Dict[str, Any]) -> None:
        onward = dict(payload)
        onward["hops"] += 1
        for node in self.table.known_nodes():
            self.send(node, "o-bcast", onward)

    # -- messages ----------------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == "o-route":
            # one span per forwarding hop, chained under the origin's span
            with self.network.obs.tracer.span_if_active(
                    "overlay.route", node=self.name,
                    hops=message.payload.get("hops", 0)):
                self._route_step(message.payload)
        elif message.kind == "o-bcast":
            if message.payload["bcast_id"] in self._seen_broadcasts:
                return
            self._apply_broadcast(message.payload)
            self._forward_broadcast(message.payload)
        elif message.kind == "o-delivery":
            with self.network.obs.tracer.span_if_active(
                    "overlay.deliver", node=self.name,
                    kind=message.payload["kind"]):
                for callback in self.on_delivery:
                    callback(message.payload["kind"], message.payload["body"],
                             message.payload["hops"])
        elif message.kind == "table-add":
            self.table.add(GUID.from_hex(message.payload["node"]))
        elif message.kind == "table-remove":
            self.table.remove(GUID.from_hex(message.payload["node"]))
        else:
            logger.debug("%s ignoring %s", self.name, message)

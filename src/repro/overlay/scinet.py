"""SCINET membership management and the range directory.

Section 3: "The SCINET can be created via Range discovery, requiring little
initialisation. Alternatively it may be desirable to group relevant Ranges
together, such as those operating within an individual building or across a
larger area in order to control access and increase performance."

Membership is a management-plane concern here: :meth:`SCINet.join` seeds the
new node's routing table from the current membership and notifies existing
nodes of the newcomer (what a full Pastry join protocol converges to);
:meth:`SCINet.leave`/:meth:`SCINet.fail` remove a node from all tables. The
data plane — routing, DHT, directory replication — is entirely
message-based through :class:`~repro.overlay.node.OverlayNode`.

Range discovery: when a range joins, its node broadcasts an
``announce-range`` carrying the places it governs; every node replicates the
directory, giving Context Servers the synchronous ``peer_lookup`` they need
when deciding whether to forward a query (Section 5's lobby -> Level 10
hand-over).
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional

from repro.core.errors import RoutingError
from repro.core.ids import GUID
from repro.net.transport import Network
from repro.overlay.node import OverlayNode

logger = logging.getLogger(__name__)


class SCINet:
    """Manager for one overlay (one "group" of ranges)."""

    def __init__(self, network: Network, group_name: str = "scinet"):
        self.network = network
        self.group_name = group_name
        self._nodes: Dict[str, OverlayNode] = {}

    # -- membership -----------------------------------------------------------------

    def join(self, node: OverlayNode,
             places: Optional[List[str]] = None,
             announce: bool = True) -> OverlayNode:
        """Add ``node`` to the overlay and announce its range's places."""
        if node.guid.hex in self._nodes:
            raise RoutingError(f"node already in {self.group_name}: {node.guid}")
        # Seed the newcomer's table with current members and tell members
        # about the newcomer (management plane; see module docstring).
        for member in self._nodes.values():
            node.table.add(member.guid)
            member.table.add(node.guid)
            # Directory state transfer: a newcomer must know the places
            # existing ranges announced before it joined (Section 5's
            # forwarding works regardless of which range booted first).
            for place, cs_hex in member.directory.items():
                node.directory.setdefault(place, cs_hex)
        self._nodes[node.guid.hex] = node
        self._refresh_leaf_sets()
        if announce and places:
            node.broadcast("announce-range", {
                "range": node.range_name,
                "cs": node.owner_cs_hex or node.guid.hex,
                "places": list(places),
            })
            # the broadcaster's own directory is updated in broadcast()
        logger.info("%s: %s joined (%d nodes)", self.group_name,
                    node.range_name or node.guid, len(self._nodes))
        return node

    def create_node(self, host_id: str, range_name: str = "",
                    owner_cs_hex: Optional[str] = None,
                    places: Optional[List[str]] = None) -> OverlayNode:
        """Convenience: mint, attach and join a node in one call."""
        guid = self.network.guids.mint()
        self.network.ensure_host(host_id)
        node = OverlayNode(guid, host_id, self.network, range_name,
                           owner_cs_hex)
        return self.join(node, places=places)

    def leave(self, node_hex: str) -> None:
        """Graceful departure: retract directory entries, update tables."""
        node = self._nodes.pop(node_hex, None)
        if node is None:
            return
        node.broadcast("retract-range", {"cs": node.owner_cs_hex or node.guid.hex})
        for member in self._nodes.values():
            member.table.remove(node.guid)
        self._refresh_leaf_sets()
        node.detach()

    def fail(self, node_hex: str) -> None:
        """Abrupt failure: the node vanishes; members repair their tables.

        (In a full Pastry, repair is lazy on failed forwards; here the
        management plane repairs eagerly, which is equivalent for the
        routing-correctness experiments.)
        """
        node = self._nodes.pop(node_hex, None)
        if node is None:
            return
        for member in self._nodes.values():
            member.table.remove(node.guid)
        self._refresh_leaf_sets()
        node.detach()

    def _refresh_leaf_sets(self) -> None:
        members = [node.guid for node in self._nodes.values()]
        for node in self._nodes.values():
            node.table.set_leaves(members)

    # -- introspection ----------------------------------------------------------------

    def nodes(self) -> List[OverlayNode]:
        return list(self._nodes.values())

    def node(self, node_hex: str) -> Optional[OverlayNode]:
        return self._nodes.get(node_hex)

    def size(self) -> int:
        return len(self._nodes)

    def closest_node(self, key: GUID) -> OverlayNode:
        """Ground truth for tests: who *should* a key route to?"""
        if not self._nodes:
            raise RoutingError(f"{self.group_name} is empty")
        return min(self._nodes.values(),
                   key=lambda node: (key.distance(node.guid), node.guid))

    def total_routed(self) -> int:
        return sum(node.routed for node in self._nodes.values())

    def load_by_node(self) -> Dict[str, int]:
        return {node.name: node.routed for node in self._nodes.values()}

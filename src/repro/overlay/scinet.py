"""SCINET membership management and the range directory.

Section 3: "The SCINET can be created via Range discovery, requiring little
initialisation. Alternatively it may be desirable to group relevant Ranges
together, such as those operating within an individual building or across a
larger area in order to control access and increase performance."

Membership is a management-plane concern here: :meth:`SCINet.join` seeds the
new node's routing table and notifies the nodes that need to learn of the
newcomer (what a full Pastry join protocol converges to);
:meth:`SCINet.leave`/:meth:`SCINet.fail` remove a node from all tables. The
data plane — routing, DHT, directory replication — is entirely
message-based through :class:`~repro.overlay.node.OverlayNode`.

Two membership strategies coexist (``incremental=...``):

* **Incremental** (default): a sorted GUID ring is maintained with bisect;
  a join seeds the newcomer from its two ring flankers' tables, announces
  it to the nodes it learned of, and recomputes exact leaf lists — straight
  from the ring, in O(LEAF_HALF) each — for only the <= 2*LEAF_HALF ring
  neighbours whose leaf sets can change. Departures repair the same
  bounded neighbourhood. Per-membership-change work is O(log N)-ish
  instead of the naive path's O(N log N) *per node*.
* **Naive** (``incremental=False``): the seed behaviour — full-mesh table
  seeding plus :meth:`_refresh_leaf_sets`, which re-sorts the entire
  membership for every node on every change. Kept as the ablation and the
  ground truth the incremental tests cross-check against.

Range discovery: when a range joins, its node broadcasts an
``announce-range`` carrying the places it governs; every node replicates the
directory, giving Context Servers the synchronous ``peer_lookup`` they need
when deciding whether to forward a query (Section 5's lobby -> Level 10
hand-over). ``flood=True`` makes every node broadcast via the dedup flood
instead of the default distribution tree (see
:meth:`repro.overlay.node.OverlayNode.broadcast`).
"""

from __future__ import annotations

import bisect
import logging
from typing import Dict, Iterable, List, Optional

from repro.core.errors import RoutingError
from repro.core.ids import GUID
from repro.net.transport import Network
from repro.overlay.node import LEAF_HALF, OverlayNode

logger = logging.getLogger(__name__)


class SCINet:
    """Manager for one overlay (one "group" of ranges)."""

    def __init__(self, network: Network, group_name: str = "scinet",
                 incremental: bool = True, flood: bool = False,
                 failure_detection: bool = False,
                 fd_interval: float = 5.0, fd_timeout: float = 15.0):
        self.network = network
        self.group_name = group_name
        self.incremental = incremental
        self.flood = flood
        #: heartbeat failure detection on every member (opt-in: the periodic
        #: probes keep the scheduler busy, so idle-driven workloads must not
        #: enable it). With it off, failures are removed only by the oracle
        #: :meth:`fail` call — the ablation baseline.
        self.failure_detection = failure_detection
        self.fd_interval = fd_interval
        self.fd_timeout = fd_timeout
        self._nodes: Dict[str, OverlayNode] = {}
        #: members sorted by GUID value — the ring the incremental path
        #: derives exact leaf sets from (maintained in both modes)
        self._ring: List[GUID] = []
        self.fd_removals = 0
        self._fd_removals_counter = network.obs.metrics.counter(
            "overlay.fd.removals",
            "members ejected by heartbeat suspicion (vs oracle fail calls)")

    # -- membership -----------------------------------------------------------------

    def join(self, node: OverlayNode,
             places: Optional[List[str]] = None,
             announce: bool = True) -> OverlayNode:
        """Add ``node`` to the overlay and announce its range's places."""
        if node.guid.hex in self._nodes:
            raise RoutingError(f"node already in {self.group_name}: {node.guid}")
        node.flood_broadcasts = self.flood
        if self.incremental:
            self._join_incremental(node)
        else:
            # Seed the newcomer's table with current members and tell members
            # about the newcomer (management plane; see module docstring).
            for member in self._nodes.values():
                node.table.add(member.guid)
                member.table.add(node.guid)
                # Directory state transfer: a newcomer must know the places
                # existing ranges announced before it joined (Section 5's
                # forwarding works regardless of which range booted first).
                for place, cs_hex in member.directory.items():
                    node.directory.setdefault(place, cs_hex)
            self._nodes[node.guid.hex] = node
            bisect.insort(self._ring, node.guid)
            self._refresh_leaf_sets()
        if self.failure_detection:
            node.enable_failure_detector(self.fd_interval, self.fd_timeout,
                                         self._node_suspected)
        if announce and places:
            node.broadcast("announce-range", {
                "range": node.range_name,
                "cs": node.owner_cs_hex or node.guid.hex,
                "places": list(places),
            })
            # the broadcaster's own directory is updated in broadcast()
        logger.info("%s: %s joined (%d nodes)", self.group_name,
                    node.range_name or node.guid, len(self._nodes))
        return node

    def _join_incremental(self, node: OverlayNode) -> None:
        """Pastry-style join: seed from the ring flankers, announce to the
        learned set, repair leaf sets only around the insertion point."""
        guid = node.guid
        index = bisect.bisect_left(self._ring, guid)
        members = len(self._ring)
        if members:
            flankers = {self._ring[index % members],
                        self._ring[(index - 1) % members]}
            for flanker in flankers:
                member = self._nodes[flanker.hex]
                node.table.add(flanker)
                # every copied entry self-files under the correct row/digit
                for known in member.table.known_nodes():
                    if known != guid:
                        node.table.add(known)
                # directory transfer from the replicated cache — any single
                # quiesced member carries the full directory
                for place, cs_hex in member.directory.items():
                    node.directory.setdefault(place, cs_hex)
        self._ring.insert(index, guid)
        self._nodes[guid.hex] = node
        # the join's final step: the newcomer introduces itself to every
        # node it learned of, so routes toward its arc start landing on it
        for known in node.table.known_nodes():
            self._nodes[known.hex].table.add(guid)
        # exact leaf sets for the newcomer and the only nodes whose leaf
        # sets can have changed: its <= 2*LEAF_HALF ring neighbours
        self._recompute_leaves(range(index - LEAF_HALF, index + LEAF_HALF + 1))

    def create_node(self, host_id: str, range_name: str = "",
                    owner_cs_hex: Optional[str] = None,
                    places: Optional[List[str]] = None) -> OverlayNode:
        """Convenience: mint, attach and join a node in one call."""
        guid = self.network.guids.mint()
        self.network.ensure_host(host_id)
        node = OverlayNode(guid, host_id, self.network, range_name,
                           owner_cs_hex)
        return self.join(node, places=places)

    def leave(self, node_hex: str) -> None:
        """Graceful departure: retract directory entries, update tables."""
        node = self._nodes.get(node_hex)
        if node is None:
            return
        node.broadcast("retract-range", {"cs": node.owner_cs_hex or node.guid.hex})
        self._remove_member(node)
        node.disable_failure_detector()
        node.detach()

    def fail(self, node_hex: str) -> None:
        """Abrupt failure: the node vanishes; members repair their tables.

        (In a full Pastry, repair is lazy on failed forwards; here the
        management plane repairs eagerly, which is equivalent for the
        routing-correctness experiments.) A survivor retracts the dead
        range's directory entries on its behalf, so queries stop being
        forwarded to a Context Server that can no longer answer — the same
        outcome the heartbeat detector converges to.
        """
        node = self._nodes.get(node_hex)
        if node is None:
            return
        self._remove_member(node)
        node.crash()
        self._retract_on_behalf(node)

    def _node_suspected(self, suspect: GUID, reporter: GUID) -> None:
        """A member's failure detector reported ``suspect`` silent.

        The suspect is ejected exactly as an oracle :meth:`fail` would eject
        it: membership, ring and routing tables are repaired and a survivor
        retracts its directory entries. If the suspicion was false — the
        node is alive but its heartbeats were lost for a whole timeout —
        the eject still stands (shunning): the node is crashed for real so
        a wrongly-ejected-but-live node cannot keep suspecting survivors
        and cascade the ejection around the ring.
        """
        node = self._nodes.get(suspect.hex)
        if node is None:
            return  # already ejected (several neighbours suspect at once)
        logger.info("%s: %s ejected on suspicion by %s", self.group_name,
                    node.range_name or suspect, reporter)
        self.fd_removals += 1
        self._fd_removals_counter.inc()
        self._remove_member(node)
        node.crash()
        self._retract_on_behalf(node)

    def _retract_on_behalf(self, dead: OverlayNode) -> None:
        """Have any survivor broadcast the dead node's directory retraction.

        The survivor must still be attached: under a multi-node crash a
        member can be dead but not yet suspected, and a retraction
        "broadcast" from a detached process silently reaches nobody.
        """
        survivor = next((n for n in self._nodes.values()
                         if self.network.process(n.guid) is n), None)
        if survivor is not None:
            survivor.broadcast("retract-range",
                               {"cs": dead.owner_cs_hex or dead.guid.hex})

    def _remove_member(self, node: OverlayNode) -> None:
        del self._nodes[node.guid.hex]
        index = bisect.bisect_left(self._ring, node.guid)
        self._ring.pop(index)
        for member in self._nodes.values():
            member.table.remove(node.guid)
        if self.incremental:
            # only the departed node's ring neighbourhood can have held it
            # in a leaf set; restore their exact lists from the ring
            self._recompute_leaves(range(index - LEAF_HALF, index + LEAF_HALF))
        else:
            self._refresh_leaf_sets()

    def _recompute_leaves(self, indices: Iterable[int]) -> None:
        """Install exact, ring-derived leaf lists for the given ring
        positions (modulo the ring; duplicates collapse)."""
        ring = self._ring
        members = len(ring)
        if not members:
            return
        count = min(LEAF_HALF, members - 1)
        done = set()
        for raw in indices:
            i = raw % members
            if i in done:
                continue
            done.add(i)
            owner = ring[i]
            right = [ring[(i + 1 + j) % members] for j in range(count)]
            left = [ring[(i - 1 - j) % members] for j in range(count)]
            self._nodes[owner.hex].table.set_leaf_lists(right, left)

    def _refresh_leaf_sets(self) -> None:
        members = [node.guid for node in self._nodes.values()]
        for node in self._nodes.values():
            node.table.set_leaves(members)

    # -- introspection ----------------------------------------------------------------

    def nodes(self) -> List[OverlayNode]:
        return list(self._nodes.values())

    def node(self, node_hex: str) -> Optional[OverlayNode]:
        return self._nodes.get(node_hex)

    def size(self) -> int:
        return len(self._nodes)

    def closest_node(self, key: GUID) -> OverlayNode:
        """Ground truth for tests: who *should* a key route to?"""
        if not self._nodes:
            raise RoutingError(f"{self.group_name} is empty")
        return min(self._nodes.values(),
                   key=lambda node: (key.distance(node.guid), node.guid))

    def total_routed(self) -> int:
        return sum(node.routed for node in self._nodes.values())

    def load_by_node(self) -> Dict[str, int]:
        return {node.name: node.routed for node in self._nodes.values()}

"""The SCINET — "a network overlay of partially connected nodes" (Figure 1).

Section 3: "The network overlay approach provides the infrastructure with
favourable scalability and robustness characteristics that would have not
been possible with a hierarchical arrangement of nodes. Routing through an
overlay network avoids any bottlenecks created when using hierarchical
infrastructures whilst achieving comparable performance [9]. It also
provides the necessary level of abstraction in order for entities to
communicate across many heterogeneous network types using GUIDs rather than
traditional addressing schemes."

:mod:`repro.overlay.node` implements Pastry-style prefix routing over GUIDs;
:mod:`repro.overlay.scinet` manages membership, the replicated range
directory and DHT put/get; :mod:`repro.overlay.hierarchy` is the
tree-of-servers comparator the Figure-1 benchmark measures against.
"""

from repro.overlay.node import OverlayNode, RoutingTable
from repro.overlay.scinet import SCINet
from repro.overlay.hierarchy import HierarchyNetwork, HierarchyNode

__all__ = [
    "OverlayNode",
    "RoutingTable",
    "SCINet",
    "HierarchyNetwork",
    "HierarchyNode",
]

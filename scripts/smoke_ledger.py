#!/usr/bin/env python
"""Ledger smoke gate: replay projection must equal the live books.

One seeded SCI deployment runs a registration storm, a location
subscription, Bob walking the building, and a sensor crash whose lease
then expires (the PR-4 failure-detection path). The gate asserts:

* **replay determinism**: projecting the full ledger reproduces the
  live registrar / profile / retained / subscription books digest-for-
  digest, and the ``as_of(T)`` prefix oracle matches a mid-run live
  checkpoint captured by a scheduler callback;
* **chain integrity**: every per-shard hash chain verifies end-to-end
  and the per-chain totals add up to the merged stream;
* **artefact round-trip**: the exported JSONL validates, reloads, and
  projects to the same digest as the live books;
* **time travel**: historical membership flips across the crash (the
  victim is registered before, gone after) and ``explain`` links an
  executed query's bindings back to ``register`` entries by hash.

Exits non-zero on any failure, so CI can gate on it. Usage::

    PYTHONPATH=src python scripts/smoke_ledger.py
"""

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro import SCI  # noqa: E402
from repro.core.api import SCIConfig  # noqa: E402
from repro.ledger.ledger import load_ledger_jsonl, write_ledger_jsonl  # noqa: E402
from repro.ledger.replay import (ReplayProjector, live_snapshot,  # noqa: E402
                                 projection_snapshot, snapshot_digest)

SEED = 8
CHECKPOINT = 22.25  # fractional: no entry can land at the capture instant
CRASH_AT = 25.0


def check(condition, label):
    status = "ok" if condition else "FAIL"
    print(f"smoke-ledger: {status} — {label}")
    return bool(condition)


def run_scenario():
    sci = SCI(config=SCIConfig(seed=SEED, lease_duration=15.0))
    server = sci.create_range("level10", places=["L10"], hosts=["lab-pc"])
    sci.add_door_sensors("level10")
    sci.add_person("bob", room="corridor")
    app = sci.create_application("pathApp", host="lab-pc")
    sci.run(10)
    app.submit_query(sci.query("bob")
                     .subscribe("location", "topological", subject="bob")
                     .build())

    captured = {}

    def capture():
        captured["live"] = live_snapshot(server)

    sci.scheduler.schedule_at(CHECKPOINT, capture)
    victim = sci.door_sensors["door:corridor--L10.02"]
    sci.scheduler.schedule_at(CRASH_AT, sci.injector.crash, victim)
    sci.walk("bob", "L10.01")
    sci.run_until(55)
    return sci, server, app, captured, victim.guid.hex


def main() -> int:
    ok = True
    print("smoke-ledger: seeded crash scenario with mid-run checkpoint...")
    sci, server, app, captured, victim_hex = run_scenario()
    entries = server.ledger_entries()
    kinds = {entry.kind for entry in entries}
    ok &= check(len(entries) > 0 and {"register", "delivery", "depart",
                                      "lease-renew"} <= kinds,
                f"scenario is non-trivial ({len(entries)} entries, "
                f"{len(kinds)} kinds)")

    live = live_snapshot(server)
    projected = projection_snapshot(server.ledger_projection())
    ok &= check(snapshot_digest(projected) == snapshot_digest(live),
                "full replay projects to the live books")

    replayed = projection_snapshot(server.ledger_projection(upto=CHECKPOINT))
    ok &= check(replayed == captured["live"],
                f"as-of prefix oracle matches the t={CHECKPOINT} checkpoint")

    chains = server.ledgers()
    verified = sum(chain.verify() for chain in chains)
    ok &= check(verified == len(entries),
                f"every chain verifies ({verified} entries across "
                f"{len(chains)} chains)")

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "level10-ledger.jsonl"
        count = write_ledger_jsonl(chains, path)
        recovered = ReplayProjector.from_records(load_ledger_jsonl(path)).state
        ok &= check(count == len(entries)
                    and snapshot_digest(projection_snapshot(recovered))
                    == snapshot_digest(live),
                    f"JSONL artefact round-trips ({count} records)")

    before, after = CHECKPOINT, 54.25
    ok &= check(server.as_of(before).registered(victim_hex)
                and not server.as_of(after).registered(victim_hex),
                "time travel sees the victim before the crash, not after")
    ok &= check(victim_hex in server.as_of(before).providers_of("presence")
                and victim_hex
                not in server.as_of(after).providers_of("presence"),
                "historical provider lookup tracks the crash")

    query = sci.query("bob").profiles_of_type("device").build()
    app.submit_query(query)
    sci.run(5)
    trail = server.explain(query.query_id)
    by_hash = {entry.entry_hash for entry in server.ledger_entries()}
    ok &= check(trail is not None and trail["status"] == "executed"
                and trail["bound"]
                and all(b["register"] is not None
                        and b["register"]["hash"] in by_hash
                        for b in trail["bound"]),
                "explain links every binding to a register entry by hash")

    if not ok:
        print("smoke-ledger: FAIL")
        return 1
    print("smoke-ledger: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

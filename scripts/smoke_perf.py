#!/usr/bin/env python
"""Perf smoke gate: the hot paths must actually hit their indexes.

Runs the dispatch benchmark's workloads at a small scale and asserts the
structural properties a refactor could silently regress:

* the mediator's exact-match buckets serve candidates (``mediator.index.hits``
  non-zero) and the residual-scan fraction stays below a threshold — a change
  that de-indexes selective filters (e.g. by breaking filter analysis) fails
  here long before production-scale latencies would reveal it;
* indexed and naive dispatch deliver the same number of events;
* the resolver's profile index is built once under a stable feed version and
  serves every candidate lookup (``resolver.index.*`` via its counters);
* the registrar sweeps leases through the expiry heap (pops observed, no
  full-scan fallback to reintroduce);
* the overlay disseminates announcements over the distribution tree
  (exactly N-1 ``o-bcast`` messages per full announce, zero duplicates),
  the flood ablation still suppresses the duplicate storm it creates, and
  the routing tables' memoised known-node views serve reads from cache;
* the partitioned substrate still produces the bit-identical canonical
  event log at 2 partitions (serial and threaded) that ``tests/parallel``
  proves at full scale, and sharded route throughput has not fallen off a
  cliff relative to the classic scheduler;
* the operator-graph engine delivers entry-identical logs to the indexed
  path (single and sharded, with continuous queries) and actually shares
  nodes under a look-alike subscription pool (reuse ratio gated) — a
  change that silently broke canonicalisation would instantiate one node
  per subscription and fail here at smoke scale.

Exits non-zero on any failure, so CI can gate on it. Usage::

    PYTHONPATH=src python scripts/smoke_perf.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.bench_perf_dispatch import (  # noqa: E402
    build_resolver,
    measure_publish,
)
from repro.core.ids import GuidFactory  # noqa: E402
from repro.core.types import TypeSpec  # noqa: E402
from repro.net.transport import FixedLatency, Network  # noqa: E402
from repro.server.registrar import Registrar  # noqa: E402

SCALE = 500
PUBLISHES = 200
#: indexed dispatch may scan at most this fraction of the candidates the
#: naive linear scan would visit (publishes x subscriptions). If filter
#: analysis silently breaks, every subscription lands in the residual list
#: and the fraction goes to 1.0 — far above this gate.
MAX_SCAN_FRACTION = 0.25
#: share of subscriptions allowed to fall to the residual list when the
#: workload's filters are 99% exact-match conjunctions
MAX_RESIDUAL_SUBSCRIPTIONS = 0.05
OVERLAY_NODES = 64
#: catastrophic-regression guard, not a speedup gate (the benchmark's is
#: stricter): the best sharded serial config may not fall below this
#: fraction of the classic scheduler's throughput at smoke scale
MIN_SHARDED_THROUGHPUT_RATIO = 0.6
SUBSTRATE_NODES = 400
SUBSTRATE_ROUTES = 200
#: catastrophic-regression guard for the sharded Context Server at smoke
#: scale (the bench_perf_shard gate at 10^6 entities is the strict one):
#: the sharded open-loop run may not fall below this fraction of the
#: classic mediator's wall-clock throughput
MIN_SHARD_WORKLOAD_RATIO = 0.6
SHARD_WORKLOAD_ENTITIES = 5_000
#: look-alike trackers for the opgraph smoke run; with a 64-template pool
#: nearly every materialisation must be served by an existing node
OPGRAPH_TRACKERS = 2_000
MIN_OPGRAPH_REUSE = 0.9
#: the dedup flood must cost at least this many times the tree's N-1
#: messages at smoke scale (it sends per known node, duplicates and all)
MIN_FLOOD_BLOWUP = 10
#: routing-table memo reads served per rebuild, summed over all nodes
MIN_CACHE_HIT_RATIO = 2


def check(condition, label):
    status = "ok" if condition else "FAIL"
    print(f"smoke-perf: {status} — {label}")
    return bool(condition)


def main() -> int:
    ok = True

    print(f"smoke-perf: publish fan-out at {SCALE} subscriptions...")
    naive = measure_publish(SCALE, indexed=False, publishes=PUBLISHES)
    indexed = measure_publish(SCALE, indexed=True, publishes=PUBLISHES)
    hits = indexed["metrics"].counter(
        "mediator.index.hits", labels=("range",)).total()
    residual = indexed["metrics"].counter(
        "mediator.index.residual_scans", labels=("range",)).total()
    naive_scans = PUBLISHES * SCALE  # the linear scan visits every filter
    scan_fraction = (hits + residual) / naive_scans
    ok &= check(indexed["delivered"] == naive["delivered"],
                f"indexed delivers exactly the naive count "
                f"({indexed['delivered']})")
    ok &= check(hits > 0, f"mediator.index.hits non-zero ({hits:.0f})")
    ok &= check(scan_fraction <= MAX_SCAN_FRACTION,
                f"scanned {scan_fraction:.3f} of the naive candidate set "
                f"(<= {MAX_SCAN_FRACTION})")
    stats = indexed["stats"]
    residual_share = stats["residual_subscriptions"] / SCALE
    ok &= check(residual_share <= MAX_RESIDUAL_SUBSCRIPTIONS,
                f"residual subscriptions {residual_share:.3f} of total "
                f"(<= {MAX_RESIDUAL_SUBSCRIPTIONS}; "
                f"{stats['indexed_subscriptions']} indexed, "
                f"{stats['residual_subscriptions']} residual)")

    print(f"smoke-perf: resolver index at {SCALE} profiles...")
    resolver, n_types = build_resolver(SCALE, indexed=True)
    for i in range(10):
        resolver.resolve(TypeSpec(f"sense-{i % n_types}", "raw", f"s{i}"))
    ok &= check(resolver.index_rebuilds == 1,
                f"profile index built once under a stable feed "
                f"({resolver.index_rebuilds} rebuilds)")
    ok &= check(resolver.index_hits >= 10,
                f"candidate lookups served from the index "
                f"({resolver.index_hits} hits)")

    print("smoke-perf: registrar lease sweep...")
    net = Network(latency_model=FixedLatency(0.5), seed=7)
    net.add_host("h")
    guids = GuidFactory(seed=41)
    registrar = Registrar(guids.mint(), "h", net, "smoke",
                          context_server=guids.mint(),
                          event_mediator=guids.mint(),
                          lease_duration=10.0, sweep_interval=2.0)
    from repro.entities.profile import Profile  # noqa: E402
    from repro.server.registrar import RegistrationRecord  # noqa: E402
    for i in range(20):
        profile = Profile(guids.mint(), f"ce-{i}")
        registrar.register_record(RegistrationRecord(
            profile=profile, kind="ce", registered_at=net.scheduler.now,
            lease_expiry=net.scheduler.now + 10.0), notify=False)
    net.scheduler.run_for(30)
    pops = net.obs.metrics.counter(
        "registrar.expiry.pops", labels=("range",)).value(range="smoke")
    ok &= check(pops >= 20, f"expiry heap popped ({pops:.0f} pops)")
    ok &= check(registrar.evictions == 20,
                f"all unrenewed leases evicted ({registrar.evictions})")

    print(f"smoke-perf: overlay dissemination at {OVERLAY_NODES} nodes...")
    from repro.overlay.scinet import SCINet  # noqa: E402
    onet = Network(latency_model=FixedLatency(0.5), seed=11)
    sci = SCINet(onet)
    for i in range(OVERLAY_NODES):
        sci.create_node(f"oh{i % 8}", range_name=f"r{i}",
                        owner_cs_hex=f"cs-{i}", places=[f"room-{i}"])
    onet.run_until_idle()
    sent = onet.obs.metrics.counter("overlay.bcast.sent", labels=("mode",))
    dups = onet.obs.metrics.counter("overlay.bcast.dup_suppressed")
    ok &= check(sent.value(mode="tree") > 0 and sent.value(mode="flood") == 0,
                f"join announces used the distribution tree "
                f"({sent.value(mode='tree'):.0f} msgs)")
    ok &= check(dups.total() == 0,
                "tree dissemination produced zero duplicates")
    # on the quiesced overlay one full announce costs exactly N-1 messages
    tree_before = sent.value(mode="tree")
    sci.nodes()[3].broadcast("announce-range",
                             {"range": "r3", "cs": "cs-3",
                              "places": ["room-3"]})
    onet.run_until_idle()
    tree_delta = sent.value(mode="tree") - tree_before
    ok &= check(tree_delta == OVERLAY_NODES - 1 and dups.total() == 0,
                f"quiesced announce cost exactly N-1 tree messages "
                f"({tree_delta:.0f} == {OVERLAY_NODES - 1})")
    directories = [dict(node.directory) for node in sci.nodes()]
    ok &= check(all(d == directories[0] and len(d) == OVERLAY_NODES
                    for d in directories),
                f"directory fully replicated on all {OVERLAY_NODES} nodes")

    sci.nodes()[0].broadcast("announce-range",
                             {"range": "r0", "cs": "cs-0",
                              "places": ["room-0"]}, flood=True)
    onet.run_until_idle()
    flood_sent = sent.value(mode="flood")
    tree_per_announce = OVERLAY_NODES - 1
    ok &= check(flood_sent >= MIN_FLOOD_BLOWUP * tree_per_announce,
                f"flood ablation costs >= {MIN_FLOOD_BLOWUP}x the tree "
                f"({flood_sent:.0f} vs {tree_per_announce} msgs)")
    ok &= check(dups.total() == flood_sent - tree_per_announce,
                f"dedup suppressed every duplicate flood arrival "
                f"({dups.total():.0f})")  # N-1 first arrivals, rest dups

    hits = sum(node.table.cache_hits for node in sci.nodes())
    builds = sum(node.table.cache_builds for node in sci.nodes())
    ok &= check(builds > 0 and hits >= MIN_CACHE_HIT_RATIO * builds,
                f"known-node views served from the memo "
                f"({hits} hits vs {builds} builds)")

    print("smoke-perf: partitioned substrate equivalence...")
    from tests.parallel.scenarios import run_scenario  # noqa: E402
    reference = run_scenario(partitions=1)
    sharded = run_scenario(partitions=2)
    threaded = run_scenario(partitions=2, parallel=True)
    ok &= check(sharded["digest"] == reference["digest"]
                and sharded["per_host"] == reference["per_host"],
                f"2-partition serial log bit-identical to single-queue "
                f"({reference['entries']} entries, "
                f"digest {reference['digest'][:12]}…)")
    ok &= check(threaded["digest"] == reference["digest"],
                "2-partition threaded log bit-identical to single-queue")
    ok &= check(sharded["delivered"] == reference["delivered"]
                and sharded["by_kind"] == reference["by_kind"],
                f"merged lane stats equal the single-queue totals "
                f"({reference['delivered']} delivered)")

    print("smoke-perf: substrate under the LaneSan race sanitizer...")
    sanitized = run_scenario(partitions=2, parallel=True, sanitize=True)
    ok &= check(sanitized["race_conflicts"] == [],
                "LaneSan found no lane-ownership conflicts "
                "(2 partitions, threaded)")
    ok &= check(sanitized["digest"] == reference["digest"],
                "sanitized run digest identical (observation-only overlay)")

    print(f"smoke-perf: sharded route throughput at {SUBSTRATE_NODES} "
          "nodes...")
    from benchmarks.bench_perf_parallel import measure_route  # noqa: E402
    classic_run = measure_route(None, False, n=SUBSTRATE_NODES,
                                routes=SUBSTRATE_ROUTES)
    sharded_runs = {p: measure_route(p, False, n=SUBSTRATE_NODES,
                                     routes=SUBSTRATE_ROUTES)
                    for p in (2, 4)}
    ok &= check(all(run["steps"] == classic_run["steps"]
                    for run in sharded_runs.values()),
                f"every configuration routed the same "
                f"{classic_run['steps']} steps")
    best_partitions, best = max(sharded_runs.items(),
                                key=lambda item: item[1]["steps_per_s"])
    ratio = best["steps_per_s"] / classic_run["steps_per_s"]
    ok &= check(ratio >= MIN_SHARDED_THROUGHPUT_RATIO,
                f"sharded throughput ratio {ratio:.2f} at "
                f"{best_partitions} partitions "
                f"(>= {MIN_SHARDED_THROUGHPUT_RATIO}; "
                f"{best['steps_per_s']:.0f} vs "
                f"{classic_run['steps_per_s']:.0f} steps/s)")

    print("smoke-perf: sharded mediator delivery equivalence...")
    from tests.shard.scenarios import run_scenario as run_shard_scenario  # noqa: E402
    plain = run_shard_scenario(shards=1)
    shard3 = run_shard_scenario(shards=3)
    ok &= check(shard3["logs"] == plain["logs"],
                f"3-shard per-subscription logs entry-identical to plain "
                f"({plain['delivered']} deliveries over "
                f"{len(plain['logs'])} subscriptions)")
    ok &= check(shard3["acks"] == plain["acks"]
                and shard3["subscription_count"] == plain["subscription_count"],
                f"acks and surviving subscriptions equal "
                f"({plain['acks']} acks, {plain['subscription_count']} subs)")

    print(f"smoke-perf: sharded open-loop throughput at "
          f"{SHARD_WORKLOAD_ENTITIES} entities...")
    from benchmarks.bench_perf_shard import measure as measure_workload  # noqa: E402
    classic_wl = measure_workload(SHARD_WORKLOAD_ENTITIES, 20, 20,
                                  shards=1, partitions=None,
                                  duration=60.0, publish_rate=50.0,
                                  trackers=2_000)
    sharded_wl = measure_workload(SHARD_WORKLOAD_ENTITIES, 20, 20,
                                  shards=4, partitions=4,
                                  duration=60.0, publish_rate=50.0,
                                  trackers=2_000)
    ok &= check(sharded_wl["published"] == classic_wl["published"]
                and sharded_wl["delivered"] == classic_wl["delivered"],
                f"sharded run published/delivered the classic counts "
                f"({classic_wl['published']}/{classic_wl['delivered']})")
    wl_ratio = classic_wl["wall_s"] / sharded_wl["wall_s"]
    ok &= check(wl_ratio >= MIN_SHARD_WORKLOAD_RATIO,
                f"sharded workload throughput ratio {wl_ratio:.2f} "
                f"(>= {MIN_SHARD_WORKLOAD_RATIO}; "
                f"{sharded_wl['wall_s']:.2f}s vs {classic_wl['wall_s']:.2f}s "
                "wall)")

    print("smoke-perf: operator-graph delivery equivalence...")
    from tests.opgraph.scenarios import run_scenario as run_opgraph_scenario  # noqa: E402
    indexed_run = run_opgraph_scenario(engine="indexed")
    opgraph_run = run_opgraph_scenario(engine="opgraph")
    ok &= check(opgraph_run["logs"] == indexed_run["logs"],
                f"opgraph per-subscription logs entry-identical to indexed "
                f"({indexed_run['delivered']} deliveries over "
                f"{len(indexed_run['logs'])} subscriptions)")
    single_opg = run_opgraph_scenario(engine="opgraph", queries=True)
    shard_opg = run_opgraph_scenario(engine="opgraph", shards=3,
                                     queries=True)
    ok &= check(shard_opg["logs"] == single_opg["logs"],
                "3-shard opgraph logs (incl. window/join/select queries) "
                "entry-identical to single graph")

    print(f"smoke-perf: operator-graph reuse at {OPGRAPH_TRACKERS} "
          "look-alike trackers...")
    from benchmarks.bench_perf_opgraph import measure as measure_opgraph  # noqa: E402
    opg_wl = measure_opgraph(OPGRAPH_TRACKERS, "opgraph")
    idx_wl = measure_opgraph(OPGRAPH_TRACKERS, "indexed")
    ok &= check(opg_wl["delivery_digest"] == idx_wl["delivery_digest"],
                f"opgraph workload delivery digest equals indexed "
                f"({opg_wl['delivered']} deliveries, "
                f"digest {opg_wl['delivery_digest'][:12]}…)")
    reuse = opg_wl["opgraph"]["reuse_ratio"]
    ok &= check(reuse > MIN_OPGRAPH_REUSE,
                f"node reuse ratio {reuse:.3f} under the template pool "
                f"(> {MIN_OPGRAPH_REUSE}; "
                f"{opg_wl['opgraph']['nodes']:.0f} live nodes)")

    if not ok:
        print("smoke-perf: FAIL")
        return 1
    print("smoke-perf: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

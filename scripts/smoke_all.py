#!/usr/bin/env python
"""Run every smoke gate in sequence: perf, observability, chaos, analysis.

Each gate is an independent module with a ``main() -> int``; this runner
executes them all (no fail-fast, so one broken gate does not hide another)
and exits non-zero if any failed. Usage::

    PYTHONPATH=src python scripts/smoke_all.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import smoke_analysis  # noqa: E402
import smoke_chaos  # noqa: E402
import smoke_ledger  # noqa: E402
import smoke_obs  # noqa: E402
import smoke_perf  # noqa: E402

GATES = (
    ("smoke-perf", smoke_perf.main),
    ("smoke-obs", smoke_obs.main),
    ("smoke-chaos", smoke_chaos.main),
    ("smoke-ledger", smoke_ledger.main),
    ("smoke-analysis", smoke_analysis.main),
)


def main() -> int:
    failures = []
    for name, gate in GATES:
        print(f"=== {name} ===")
        if gate() != 0:
            failures.append(name)
        print()
    if failures:
        print(f"smoke-all: FAIL ({', '.join(failures)})")
        return 1
    print(f"smoke-all: all {len(GATES)} gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

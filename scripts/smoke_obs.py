#!/usr/bin/env python
"""Observability smoke check: run one instrumented bench, validate its JSON.

Runs a reduced Figure-1 workload (both routing systems, two sizes), writes
the metrics artefact, reads it back through the schema validator and
re-checks the hotspot and log-growth claims offline. Exits non-zero on any
failure, so CI can gate on it. Usage::

    PYTHONPATH=src python scripts/smoke_obs.py [output-dir]
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs.experiments import (  # noqa: E402
    check_hotspot_claim,
    check_log_growth_claim,
    figure1_artifact,
)
from repro.obs.export import (  # noqa: E402
    ArtifactError,
    load_metrics_json,
    write_metrics_document,
)

SIZES = (8, 32)
MESSAGES = 120


def main() -> int:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                           else "benchmarks/results")
    path = out_dir / "smoke_obs.metrics.json"

    print(f"smoke-obs: running fig1 at N={SIZES} with {MESSAGES} messages...")
    artifact = figure1_artifact(sizes=SIZES, messages=MESSAGES,
                                meta={"smoke": True})
    write_metrics_document(artifact, path)
    print(f"smoke-obs: wrote {path} ({path.stat().st_size} bytes)")

    try:
        loaded = load_metrics_json(path)
    except ArtifactError as exc:
        print(f"smoke-obs: FAIL — artefact does not validate: {exc}")
        return 1

    hotspot = check_hotspot_claim(loaded, max(SIZES))
    growth = check_log_growth_claim(loaded, min(SIZES), max(SIZES))
    print(f"smoke-obs: hotspot@{max(SIZES)}: "
          f"root={hotspot['hierarchy_root_load']:.0f} vs "
          f"overlay max={hotspot['overlay_max_load']:.0f} "
          f"-> {'ok' if hotspot['ok'] else 'FAIL'}")
    print(f"smoke-obs: hop growth {min(SIZES)}->{max(SIZES)}: "
          f"{growth['small_hops']:.2f} -> {growth['large_hops']:.2f} "
          f"-> {'ok' if growth['ok'] else 'FAIL'}")

    if not (hotspot["ok"] and growth["ok"]):
        print("smoke-obs: FAIL — claim shape not reproduced")
        return 1
    print("smoke-obs: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

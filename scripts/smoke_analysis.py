#!/usr/bin/env python
"""Static-analysis smoke gate: the tree is invariant-clean and PROTOCOL.md
is fresh.

Runs the full ``repro.analysis`` suite (determinism, protocol-verb and
metrics-catalog families) over ``src/`` and checks the committed
``PROTOCOL.md`` against the regenerated verb table. Exits non-zero on any
unsuppressed finding or drift, so CI can gate on it. Usage::

    PYTHONPATH=src python scripts/smoke_analysis.py
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.__main__ import main as analysis_main  # noqa: E402


def main() -> int:
    src = REPO_ROOT / "src"
    protocol = REPO_ROOT / "PROTOCOL.md"
    print(f"smoke-analysis: linting {src} ...")
    rc = analysis_main([str(src), "--check-protocol", str(protocol)])
    print("smoke-analysis:", "OK" if rc == 0 else "FAIL")
    return rc


if __name__ == "__main__":
    sys.exit(main())

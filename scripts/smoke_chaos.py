#!/usr/bin/env python
"""Chaos smoke gate: reliable delivery must mask a seeded fault schedule.

Two identical deployments run the same seeded scenario — Bob walking the
building while one location provider is crashed mid-walk. The *chaos* run
additionally suffers a 35% message-loss episode spanning the crash. The
gate asserts:

* **exactly-once observable delivery**: after both runs quiesce, every
  subscribed CAA's delivered event log (as a multiset of event contents) is
  identical between the lossless baseline and the chaos run — the ack/retry
  transport plus receiver dedup recovered every lost message and introduced
  zero duplicates;
* **bounded recovery**: each CAA's stream resumes within a bounded gap of
  the provider crash (lease expiry + sweep + repair + next movement);
* the retry machinery actually carried the load (``net.retry.attempts`` > 0
  in the chaos run, with recoveries observed) and no reliable delivery
  exhausted its budget;
* **failure-detector convergence**: a SCINET node crashed silently is
  ejected by its neighbours' heartbeat detectors, leaving the survivors
  with the same membership and replicated directory an oracle ``fail()``
  call produces.

Exits non-zero on any failure, so CI can gate on it. Usage::

    PYTHONPATH=src python scripts/smoke_chaos.py
"""

import pathlib
import sys
from collections import Counter

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro import SCI  # noqa: E402
from repro.core.api import SCIConfig  # noqa: E402
from repro.faults.monitor import StreamProbe  # noqa: E402
from repro.net.transport import FixedLatency, Network  # noqa: E402
from repro.overlay.scinet import SCINet  # noqa: E402
from repro.query.model import QueryBuilder  # noqa: E402

SEED = 8
LOSS_RATE = 0.35
LOSS_DURATION = 40.0
#: recovery bound: lease (10) + sweep (5) + repair + the next walk leg
MAX_RECOVERY = 60.0


def check(condition, label):
    status = "ok" if condition else "FAIL"
    print(f"smoke-chaos: {status} — {label}")
    return bool(condition)


def event_log(app):
    """The app's delivered events as a content multiset.

    Timestamps are delivery-path-dependent (a retransmitted upstream hop
    delays a derived event's publication), so equality is over what was
    delivered, not when: zero silent loss and zero duplicates mean the two
    multisets match exactly.
    """
    def freeze(value):
        if isinstance(value, dict):
            return tuple(sorted((k, freeze(v)) for k, v in value.items()))
        if isinstance(value, list):
            return tuple(freeze(v) for v in value)
        return value

    return Counter((e.type_name, e.representation, str(e.subject),
                    freeze(e.value)) for e in app.events)


def run_scenario(with_loss):
    sci = SCI(config=SCIConfig(seed=SEED, lease_duration=10.0,
                               latency_model=FixedLatency(1.0)))
    sci.create_range("livingstone", places=["livingstone"], hosts=["pc"])
    sensors = sci.add_door_sensors("livingstone")
    sci.add_wlan_detector("livingstone")
    sci.add_person("bob", room="corridor", device_host="bob-dev")
    apps = [sci.create_application(name, host="pc")
            for name in ("monitor", "dashboard")]
    sci.run(5)
    for index, app in enumerate(apps):
        app.submit_query(QueryBuilder(f"owner-{index}")
                         .subscribe("location", "topological", subject="bob")
                         .build())
    sci.run(5)
    probes = [StreamProbe(app, "location") for app in apps]

    sci.walk("bob", "L10.01")
    sci.run(30)
    crash_at = sci.now
    sci.injector.crash(sensors["door:corridor--L10.01"])
    if with_loss:
        sci.injector.loss_episode(LOSS_RATE, duration=LOSS_DURATION)
    sci.run(20)  # lease expiry + sweep + configuration repair
    # the walk to L10.02 exits through the crashed door (unsensed) and
    # enters through a surviving one — the first post-repair delivery
    for room in ("L10.02", "corridor", "L10.02"):
        sci.walk("bob", room)
        sci.run(30)
    # quiesce: the loss episode is long over; let retransmissions drain
    sci.run(120)
    return sci, apps, probes, crash_at


def chaos_vs_baseline():
    ok = True
    print("smoke-chaos: baseline run (crash only)...")
    base_sci, base_apps, _, _ = run_scenario(with_loss=False)
    print(f"smoke-chaos: chaos run (crash + {LOSS_RATE:.0%} loss for "
          f"{LOSS_DURATION:.0f})...")
    sci, apps, probes, crash_at = run_scenario(with_loss=True)

    for base_app, app in zip(base_apps, apps):
        base_log, log = event_log(base_app), event_log(app)
        missing = base_log - log
        extra = log - base_log
        ok &= check(not missing,
                    f"{app.name}: zero silent loss "
                    f"({sum(log.values())} events delivered)")
        ok &= check(not extra, f"{app.name}: zero duplicate deliveries")
        if missing or extra:
            print(f"smoke-chaos:   missing={dict(missing)}")
            print(f"smoke-chaos:   extra={dict(extra)}")

    for app, probe in zip(apps, probes):
        recovery = probe.recovery_time(crash_at)
        ok &= check(recovery is not None and recovery < MAX_RECOVERY,
                    f"{app.name}: stream recovered "
                    f"{'%.1f' % recovery if recovery is not None else 'never'}"
                    f" after the crash (< {MAX_RECOVERY:.0f})")

    metrics = sci.network.obs.metrics
    retries = metrics.counter("net.retry.attempts", labels=("kind",)).total()
    recovered = metrics.counter("net.retry.recovered",
                                labels=("kind",)).total()
    ok &= check(retries > 0, f"retransmissions carried the episode "
                             f"({retries:.0f} net.retry.attempts)")
    ok &= check(recovered > 0, f"retried requests were answered "
                               f"({recovered:.0f} net.retry.recovered)")
    exhausted = sum(sci.range(name).mediator.deliveries_exhausted
                    for name in sci.ranges)
    ok &= check(exhausted == 0,
                "no reliable delivery exhausted its retry budget")
    return ok


def fd_convergence():
    print("smoke-chaos: heartbeat failure detection vs oracle membership...")
    ok = True

    def overlay(failure_detection):
        net = Network(latency_model=FixedLatency(1.0), seed=5)
        sci = SCINet(net, failure_detection=failure_detection,
                     fd_interval=5.0, fd_timeout=15.0)
        nodes = [sci.create_node(f"h{i}", range_name=f"range-{i}",
                                 owner_cs_hex=f"cs-{i}",
                                 places=[f"room-{i}"]) for i in range(6)]
        net.scheduler.run_for(30)
        return net, sci, nodes

    net_fd, sci_fd, nodes_fd = overlay(failure_detection=True)
    nodes_fd[2].crash()  # silent: only the heartbeat silence reveals it
    net_fd.scheduler.run_for(60)

    net_or, sci_or, nodes_or = overlay(failure_detection=False)
    sci_or.fail(nodes_or[2].guid.hex)  # the oracle ablation
    net_or.scheduler.run_for(60)

    ok &= check(sci_fd.fd_removals == 1,
                "the detector ejected exactly the crashed node")
    ok &= check(sci_fd.size() == sci_or.size() == 5,
                f"membership converged ({sci_fd.size()} nodes)")
    fd_dirs = [dict(node.directory) for node in sci_fd.nodes()]
    or_dirs = [dict(node.directory) for node in sci_or.nodes()]
    ok &= check(all(d == or_dirs[0] for d in fd_dirs + or_dirs),
                "replicated directory identical to the oracle outcome")
    ok &= check(all("room-2" not in d for d in fd_dirs),
                "the dead range's places were retracted")
    return ok


def main() -> int:
    ok = chaos_vs_baseline()
    ok &= fd_convergence()
    if not ok:
        print("smoke-chaos: FAIL")
        return 1
    print("smoke-chaos: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

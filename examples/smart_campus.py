#!/usr/bin/env python3
"""A smart-campus dashboard: occupancy and climate from one infrastructure.

Demonstrates that SCI's composition model is not location-specific: the same
query machinery aggregates door-sensor presence into floor occupancy counts
(an OccupancyCE bound to a place) and smooths thermometer streams through a
windowed mean — two very different context types, zero bespoke wiring.

Also exercises a quality-of-context contract (the paper's future-work
item 2): the dashboard's location feed demands accuracy <= 3 m, which keeps
the coarse W-LAN source out of its configuration.

Run:  python examples/smart_campus.py
"""

from repro import SCI
from repro.core.api import SCIConfig
from repro.core.types import TypeSpec
from repro.entities.derived import WindowAggregatorCE
from repro.entities.sensors import TemperatureSensorCE


def main() -> None:
    sci = SCI(config=SCIConfig(seed=21))
    sci.create_range("campus", places=["livingstone"], hosts=["ops-pc"])
    sci.add_door_sensors("campus")
    sci.add_wlan_detector("campus")

    # climate instrumentation: a thermometer per office + a smoothing stage
    cs = sci.range("campus")
    for room in ("L10.01", "L10.02", "L10.03"):
        thermo = TemperatureSensorCE(sci.guids.mint(), "cs-campus",
                                     sci.network, room=room,
                                     baseline=20.0 + hash(room) % 3,
                                     interval=5.0, seed=len(room))
        thermo.start()
    smoother = WindowAggregatorCE(sci.guids.mint(), "cs-campus", sci.network,
                                  TypeSpec("temperature", "celsius"),
                                  operation="mean", window=5)
    smoother.start()

    # people moving about
    for person, room in (("bob", "corridor"), ("john", "corridor"),
                         ("ada", "lobby")):
        sci.add_person(person, room=room)

    dashboard = sci.create_application("dashboard", host="ops-pc")
    sci.run(5)

    # one query per context need — the infrastructure does the wiring.
    # Per-person tracking first (each spawns a bound objLocation CE); the
    # occupancy aggregation then wires onto those live location providers.
    precise_location_query = (sci.query("ops")
                              .subscribe("location", "topological",
                                         subject="bob")
                              .which("quality(accuracy<=3)")
                              .build())
    dashboard.submit_query(precise_location_query)
    for person in ("john", "ada"):
        dashboard.submit_query(
            sci.query("ops").subscribe("location", "topological",
                                       subject=person).build())
    sci.run(5)

    occupancy_query = (sci.query("ops")
                       .subscribe("occupancy", "count", subject="L10")
                       .build())
    climate_query = (sci.query("ops")
                     .subscribe("temperature", "mean-celsius")
                     .build())
    dashboard.submit_query(occupancy_query)
    dashboard.submit_query(climate_query)
    sci.run(5)

    print("== the workday begins ==")
    sci.walk("bob", "L10.01")
    sci.walk("john", "L10.02")
    sci.run(30)
    sci.walk("ada", "L10.03")
    sci.run(60)

    occupancy = [e.value for e in dashboard.events_of_type("occupancy")]
    print(f"L10 occupancy trace: {occupancy}")
    assert occupancy[-1] == 3, "all three people are on Level 10"

    temperatures = [e.value for e in dashboard.events_of_type("temperature")]
    print(f"smoothed temperature readings: {len(temperatures)} "
          f"(latest {temperatures[-1]:.1f} C)")
    assert temperatures, "the climate stream must flow"

    bob_feed = [e.value for e in dashboard.events_of_type("location")
                if e.subject == "bob"]
    print(f"bob location feed (accuracy<=3m contract): {bob_feed}")
    assert bob_feed[-1] == "L10.01"
    bob_config = next(c for c in cs.configurations.configurations()
                      if c.wanted.subject == "bob")
    bob_nodes = {node.profile.name for node in bob_config.plan.nodes.values()}
    assert not any("wlan" in name for name in bob_nodes), \
        "the QoC contract must keep the coarse W-LAN source out of bob's chain"

    print("\n== lunchtime ==")
    sci.walk("bob", "lobby")
    sci.run(60)
    occupancy = [e.value for e in dashboard.events_of_type("occupancy")]
    print(f"L10 occupancy trace: {occupancy}")
    assert occupancy[-1] == 2

    print("\none infrastructure, three context types, zero bespoke wiring")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Adaptivity to component failure (the Section-6 claim, measured).

An application subscribes to Bob's location. The infrastructure composes the
door-sensor chain (native topological representation). We then crash the
objLocation provider's inputs — every door sensor — so the chain cannot be
rebuilt from presence data at all. The infrastructure notices through lease
expiry and *re-composes across representations*: it falls back to the W-LAN
detector (geometric) and splices a geometric->topological converter, exactly
the cross-representation flexibility the paper says iQueue lacks.

Run:  python examples/adaptive_monitoring.py
"""

from repro import SCI
from repro.core.api import SCIConfig
from repro.faults.monitor import StreamProbe


def main() -> None:
    sci = SCI(config=SCIConfig(seed=3, lease_duration=10.0))
    sci.create_range("livingstone", places=["livingstone"], hosts=["lab-pc"])
    sensors = sci.add_door_sensors("livingstone")
    sci.add_wlan_detector("livingstone")

    # Bob carries a W-LAN device, so both location modalities can see him.
    sci.add_person("bob", room="corridor", device_host="bob-pda")

    app = sci.create_application("monitor", host="lab-pc")
    probe = StreamProbe(app, "location")
    sci.run(5)
    query = sci.query("ops").subscribe("location", "topological",
                                       subject="bob").build()
    app.submit_query(query)
    sci.walk("bob", "L10.01")
    sci.run(30)
    before = probe.count()
    print(f"door-sensor chain active: {before} location update(s) delivered")

    # Catastrophe: the whole badge network dies.
    failure_at = sci.now
    for sensor in sensors.values():
        sci.injector.crash(sensor)
    print(f"\ncrashed {len(sensors)} door sensors at t={failure_at:.1f}")

    # Bob keeps moving; the W-LAN keeps observing him.
    sci.walk("bob", "L10.03")
    sci.run(60)
    sci.walk("bob", "open-area")
    sci.run(60)

    recovery = probe.recovery_time(failure_at)
    cs = sci.range("livingstone")
    print(f"repairs performed by the Configuration Manager: "
          f"{cs.configurations.repairs}")
    print(f"stream recovered {recovery:.1f}s after the failure "
          f"(lease detection + re-composition)")
    print(f"updates after failure: {probe.count() - before}")
    last = app.events_of_type("location")[-1]
    print(f"latest fix: bob is in {last.value} "
          f"(via {last.attributes.get('converted_by', 'native chain')})")
    assert cs.configurations.repairs >= 1
    assert probe.count() > before, "the stream must resume after repair"


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""CAPA — the paper's Section-5 scenario, end to end.

Bob queues a print job on the train (offline); his PDA registers when the
lobby base station detects it; the lobby Context Server forwards his query
to Level 10's server, which parks it until Bob badges into room L10.01 and
then selects the closest printer (P1). John then prints while P1 is busy and
P2 is out of paper; the infrastructure selects P4 because P3 sits behind a
locked door (Figure 7).

Run:  python examples/capa_printing.py
"""

from repro.apps.capa import build_capa_scenario


def main() -> None:
    scenario = build_capa_scenario(seed=1)
    sci = scenario.sci

    print("== on the train ==")
    bob_request = scenario.bob_capa.request_print(
        "quarterly-report.pdf", pages=20,
        when="enters(bob, L10.01)",
        which="reachable; available; no-queue; closest-to(me)")
    print(f"Bob queues {bob_request.document!r}; CAPA reports: not in a range "
          f"(registered={scenario.bob_capa.registered})")

    print("\n== Bob reaches the Livingstone Tower lift lobby ==")
    sci.teleport("bob", "lobby")
    sci.run(10)
    print(f"PDA detected and registered in range "
          f"{scenario.bob_capa.range_name!r}")
    print(f"lobby CS forwarded the stored query: "
          f"{scenario.lobby_cs.queries_forwarded} forward(s)")
    print(f"Level 10 CS parked it: "
          f"{len(scenario.level10_cs.parked_queries())} parked quer(ies)")

    print("\n== Bob walks to his office L10.01 ==")
    sci.walk("bob", "L10.01")
    sci.run(60)
    print(f"door sensor fired; configuration executed; "
          f"selected printer: {bob_request.selected_printer}")
    print(f"print outcome: {bob_request.outcome}")
    p1 = scenario.printers["P1"]
    print(f"P1 is now {p1.state.value} with queue length {p1.queue_length}")

    print("\n== John prints before his lecture ==")
    scenario.printers["P2"].set_out_of_paper()
    sci.run(2)
    john_request = scenario.john_capa.request_print(
        "lecture-notes.pdf", pages=3,
        which="reachable; available; no-queue; closest-to(me)")
    sci.run(20)
    print("environment: P1 busy (Bob), P2 out of paper, P3 behind a locked "
          "door John cannot open")
    print(f"selected printer: {john_request.selected_printer}")
    print(f"print outcome: {john_request.outcome}")

    assert bob_request.selected_printer == "P1", "paper says Bob gets P1"
    assert john_request.selected_printer == "P4", "paper says John gets P4"
    print("\nFigure 7 reproduced: Bob -> P1, John -> P4")


if __name__ == "__main__":
    main()

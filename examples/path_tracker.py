#!/usr/bin/env python3
"""The Figure-3 configuration: a live path display between two people.

A floor-map application asks for the path between Bob and John. The Query
Resolver discovers the chain by type matching over CE profiles — door
sensors provide ``presence``, an objLocation template turns presence into
``location`` per person, and a path template turns two locations into
``path`` — then the Context Server wires the event subscription graph. When
John moves, the display updates without anyone re-querying.

Run:  python examples/path_tracker.py
"""

from repro import SCI
from repro.apps.pathfinder import PathDisplayApp


def main() -> None:
    sci = SCI()
    sci.create_range("livingstone", places=["livingstone"], hosts=["pda"])
    sci.add_door_sensors("livingstone")
    sci.add_person("bob", room="corridor")
    sci.add_person("john", room="corridor")

    display = sci.create_application("floorMap", host="pda",
                                     app_class=PathDisplayApp,
                                     from_entity="bob", to_entity="john")
    sci.run(5)
    display.track()
    sci.run(5)
    print(display.render())

    print("\n== both walk to their offices ==")
    sci.walk("bob", "L10.01")
    sci.walk("john", "L10.02")
    sci.run(40)
    print(display.render())

    print("\n== John heads for the open area ==")
    sci.walk("john", "open-area")
    sci.run(60)
    print(display.render())

    print(f"\nconfiguration delivered {display.updates_seen()} live updates;")
    print("the application never re-queried — Figure 3's dynamic "
          "subscription graph did the work.")
    assert display.current_path is not None
    assert display.current_path["rooms"][0] == "L10.01"
    assert display.current_path["rooms"][-1] == "open-area"


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: one range, one sensor network, one live context stream.

Builds the synthetic Livingstone Tower, creates a range for Level 10,
instruments its doors, and subscribes an application to Bob's location. As
Bob walks, door sensors fire, the infrastructure composes the
doorSensor -> objLocation chain automatically, and the app receives typed
location events.

Run:  python examples/quickstart.py
"""

from repro import SCI


def main() -> None:
    sci = SCI()  # default: the synthetic Livingstone Tower, seed 0

    # A range for the whole building, governed by one Context Server, with
    # one lab machine in its jurisdiction (Figure 5's "deploys a Range
    # Service to all the machines").
    sci.create_range("livingstone", places=["livingstone"], hosts=["lab-pc"])
    sci.add_door_sensors("livingstone")

    # A person wearing an ID badge, starting in the corridor.
    sci.add_person("bob", room="corridor")

    # An application on the lab machine; it discovers the range and
    # registers via the Figure-5 handshake when started.
    app = sci.create_application("whereIsBob", host="lab-pc")
    sci.run(5)  # let registration settle
    assert app.registered, "the app should have joined the range"
    print(f"app registered in range {app.range_name!r}")

    # Subscribe to Bob's location. The Query Resolver chains an
    # objLocation CE (spawned from a template) onto every door sensor.
    query = sci.query("bob").subscribe("location", "topological",
                                       subject="bob").build()
    app.submit_query(query)
    sci.run(5)
    print(f"query acknowledged: {app.query_acks[query.query_id]['status']}")

    # Bob walks to his office, then to the print room; each sensed door
    # crossing produces a location event at the app.
    sci.walk("bob", "L10.01")
    sci.run(30)
    sci.walk("bob", "L10.03")
    sci.run(40)

    print("location updates received:")
    for event in app.events_of_type("location"):
        print(f"  t={event.timestamp:7.2f}  bob is in {event.value}")
    assert app.last_event_value() == "L10.03"
    print("final answer:", app.last_event_value())


if __name__ == "__main__":
    main()

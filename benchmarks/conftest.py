"""Shared infrastructure for the benchmark harness.

Every ``test_report_*`` benchmark prints the series/rows it reproduces AND
appends them to ``benchmarks/results/<module>.txt``, so EXPERIMENTS.md can
cite concrete, regenerable numbers. Run with::

    pytest benchmarks/ --benchmark-only            # timing tables
    pytest benchmarks/ -s                          # also show report rows
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(request):
    """A callable that prints a line and records it to the module's result file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    module = request.module.__name__
    path = RESULTS_DIR / f"{module}.txt"
    lines = []

    def emit(line: str = "") -> None:
        print(line)
        lines.append(line)

    yield emit
    if lines:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

"""PERF — sharded Context Server internals under open-loop load at scale.

The :mod:`repro.apps.workload` generator drives a Poisson arrival stream
(100 publishes per sim-time unit for 300 units, Zipf-1.1 subject
popularity over the entity population) into one mediator + resolver pair,
with 20k exact ``(type, subject)`` trackers, a handful of routed type
monitors, and registration/lease + subscription churn and resolver
queries mixed in on the control lane. Each scale row grows the entity
population a decade — 10^4, 10^5, 10^6 — and scales the churn/query op
count with it (more entities, more lease expiries per unit time).

Configurations: ``classic`` is the unchanged single ``EventMediator`` and
unsharded resolver; ``shardK-partK`` splits mediator and resolver into K
consistent-hash shards and runs them on a K-lane partitioned scheduler.
The win is algorithmic, not thread parallelism: exact-key dispatch skips
the router, fire-and-forget internal forwards carry no acks, and the
resolver's per-shard delta protocol patches single-profile churn in place
where the classic path rebuilds its whole provider index (the classic
rebuild count is reported per row).

Every configuration must publish AND deliver the exact same event counts
— the cheap in-benchmark determinism/equivalence check; the entry-level
proof lives in ``tests/shard/`` and ``tests/parallel/``.

Acceptance gate: at the top scale the best sharded configuration clears
``REQUIRED_SPEEDUP`` x the same-run classic wall time. Results land in
``results/bench_perf_shard.txt`` and ``results/BENCH_shard.json``.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_perf_shard.py -q -s``
"""

import json
import pathlib
import time
import zlib

from repro.apps.workload import OpenLoopWorkload, ProviderFeed, WorkloadConfig
from repro.core.ids import GuidFactory
from repro.core.types import TypeRegistry
from repro.events.mediator import EventMediator
from repro.events.sharding import ShardedEventMediator
from repro.net.transport import FixedLatency, Network

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_shard.json"

REQUIRED_SPEEDUP = 2.0

#: (entities, churn_ops, query_ops) — ops scale with the population
SCALES = [
    (10_000, 50, 50),
    (100_000, 100, 100),
    (1_000_000, 200, 200),
]

#: (label, shards, partitions); partitions=None is the classic Scheduler
CONFIGS = [
    ("classic", 1, None),
    ("shard4-part4", 4, 4),
    ("shard8-part8", 8, 8),
]


def hosts_for(partitions):
    """One host name per lane (lane placement is ``crc32(host) % lanes``)."""
    if not partitions:
        return ["wl-host-0"]
    found = {}
    index = 0
    while len(found) < partitions:
        name = f"wl-host-{index}"
        found.setdefault(zlib.crc32(name.encode("utf-8")) % partitions, name)
        index += 1
    return [found[lane] for lane in range(partitions)]


def measure(entities, churn_ops, query_ops, shards, partitions,
            duration=300.0, publish_rate=100.0, trackers=20_000):
    """One full open-loop run; returns the workload report plus internals."""
    config = WorkloadConfig(entities=entities, duration=duration,
                            publish_rate=publish_rate, trackers=trackers,
                            monitors=4, publishers=4, churn_ops=churn_ops,
                            query_ops=query_ops, seed=1)
    if partitions is None:
        net = Network(latency_model=FixedLatency(1.0))
    else:
        net = Network(latency_model=FixedLatency(1.0), partitions=partitions)
    guids = GuidFactory(seed=5)
    hosts = hosts_for(partitions)
    for host in hosts:
        net.ensure_host(host)
    feed = ProviderFeed(TypeRegistry(), config)
    resolver = feed.resolver(shards=shards, metrics=net.obs.metrics)
    if shards > 1:
        mediator = ShardedEventMediator(guids.mint(), hosts[0], net,
                                        range_name="wl", shards=shards,
                                        shard_hosts=hosts,
                                        guid_factory=guids)
    else:
        mediator = EventMediator(guids.mint(), hosts[0], net, range_name="wl")
    workload = OpenLoopWorkload(net, mediator, config, resolver=resolver,
                                feed=feed, hosts=hosts)
    workload.install()
    start = time.perf_counter()
    workload.run()
    wall = time.perf_counter() - start
    row = workload.report(wall)
    row["index_rebuilds"] = resolver.index_rebuilds
    close = getattr(net.scheduler, "close", None)
    if close is not None:
        close()
    return row


class TestReportShardPerf:
    def test_report_open_loop_scale(self, report):
        baseline = _load_baseline()
        report("")
        report("PERF  sharded Context Server, open-loop workload "
               "(300 sim-units @ 100 publishes/unit, 20k trackers, "
               "Zipf-1.1 subjects)")
        report(f"{'entities':>9} {'config':>13} | {'wall s':>7} "
               f"{'pub/s':>7} {'del/s':>7} {'p50':>4} {'p99':>4} "
               f"{'rebuilds':>8} {'vs classic':>10}")
        top_speedups = []
        for entities, churn_ops, query_ops in SCALES:
            rows = {}
            for label, shards, partitions in CONFIGS:
                rows[label] = measure(entities, churn_ops, query_ops,
                                      shards, partitions)
            classic = rows["classic"]
            published = {row["published"] for row in rows.values()}
            assert len(published) == 1, (
                f"configurations disagreed on published counts at "
                f"{entities} entities: {published} — the workload broke "
                "determinism")
            delivered = {row["delivered"] for row in rows.values()}
            assert len(delivered) == 1, (
                f"configurations disagreed on delivered counts at "
                f"{entities} entities: {delivered} — sharding changed "
                "observable delivery; see tests/shard/")
            for label, shards, partitions in CONFIGS:
                row = rows[label]
                speedup = classic["wall_s"] / row["wall_s"]
                if entities == SCALES[-1][0] and shards > 1:
                    top_speedups.append(speedup)
                report(f"{entities:>9} {label:>13} | {row['wall_s']:>7.2f} "
                       f"{row['published_per_s']:>7.0f} "
                       f"{row['delivered_per_s']:>7.0f} "
                       f"{row['latency_p50']:>4.1f} "
                       f"{row['latency_p99']:>4.1f} "
                       f"{row['index_rebuilds']:>8} {speedup:>9.2f}x")
                baseline["open_loop"].append({
                    "config": label,
                    "shards": shards,
                    "partitions": partitions,
                    "entities": entities,
                    "churn_ops": churn_ops,
                    "query_ops": query_ops,
                    "published": row["published"],
                    "delivered": row["delivered"],
                    "queries": row["queries"],
                    "latency_p50": row["latency_p50"],
                    "latency_p99": row["latency_p99"],
                    "index_rebuilds": row["index_rebuilds"],
                    "wall_s": round(row["wall_s"], 3),
                    "published_per_s": round(row["published_per_s"], 1),
                    "delivered_per_s": round(row["delivered_per_s"], 1),
                    "speedup_vs_classic_same_run": round(speedup, 3),
                })
        best = max(top_speedups)
        report(f"  gate: best sharded config {best:.2f}x classic at "
               f"{SCALES[-1][0]} entities; required >= "
               f"{REQUIRED_SPEEDUP:.1f}x")
        assert best >= REQUIRED_SPEEDUP, (
            f"best sharded configuration reached {best:.2f}x the classic "
            f"wall time at {SCALES[-1][0]} entities; the gate is >= "
            f"{REQUIRED_SPEEDUP}x")
        baseline["gate"] = {
            "required_speedup": REQUIRED_SPEEDUP,
            "top_entities": SCALES[-1][0],
            "best_sharded_speedup": round(best, 3),
            "passed": True,
        }
        _save_baseline(baseline)


def _load_baseline():
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH, encoding="utf-8") as handle:
            document = json.load(handle)
        return {"schema": "sci.bench.shard/1",
                "open_loop": [], "gate": None,
                "previous": {"open_loop": document.get("open_loop"),
                             "gate": document.get("gate")}}
    return {"schema": "sci.bench.shard/1", "open_loop": [], "gate": None}


def _save_baseline(document):
    RESULTS_DIR.mkdir(exist_ok=True)
    merged = {"schema": document["schema"]}
    previous = document.pop("previous", {})
    merged["open_loop"] = (document["open_loop"]
                           or previous.get("open_loop") or [])
    merged["gate"] = document["gate"] or previous.get("gate")
    with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")

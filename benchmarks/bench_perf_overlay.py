"""PERF — Overlay fast paths vs the pre-index membership/dissemination.

Three overlay hot paths, each measured before/after:

* **Membership build** — joining N nodes. The naive path re-sorts the full
  membership for every node on every join (O(N^2 log N) per join); the
  incremental path repairs only the newcomer's <= 2*LEAF_HALF ring
  neighbours from a bisect-maintained sorted ring.
* **Announce dissemination** — one full-overlay ``announce-range``. The
  flood forwards to every known node with dedup (most arrivals are
  duplicates); the distribution tree delegates disjoint ring arcs and
  delivers in exactly N-1 messages.
* **Route-step throughput** — routing random keys across the built
  overlay, exercising the cached known-node views and precomputed leaf
  spans on every hop.

Scales run 50 -> 5000 (the naive build stops at 200 — beyond that it takes
minutes, which is the point). Results land in
``results/bench_perf_overlay.txt`` (human-readable) and
``results/BENCH_overlay.json`` (machine baseline alongside
``BENCH_dispatch.json``). Acceptance gates: >= 10x announce message
reduction at N=1000 and near-linear incremental build cost.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_perf_overlay.py -q -s``
"""

import json
import pathlib
import random
import time

from repro.core.ids import GUID
from repro.net.transport import FixedLatency, Network
from repro.overlay.scinet import SCINet

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_overlay.json"

#: the naive build's O(N^2 log N)-per-join cost makes larger scales take
#: minutes; the incremental path runs the full ladder
BUILD_SCALES_NAIVE = (50, 100, 200)
BUILD_SCALES_FAST = (50, 100, 200, 1000, 5000)
ANNOUNCE_SCALES = (100, 1000)
ROUTE_SCALES = (100, 1000)
ROUTES = 400
#: required flood->tree message reduction at the top announce scale
REQUIRED_BCAST_REDUCTION = 10.0
#: incremental per-node build cost may grow at most this much over the
#: 100x scale ladder (near-linear; the naive path triples per doubling)
MAX_FAST_PER_NODE_GROWTH = 6.0


def build_overlay(n, incremental, seed=3):
    net = Network(latency_model=FixedLatency(1.0), seed=seed)
    sci = SCINet(net, incremental=incremental)
    for i in range(n):
        sci.create_node(f"h{i % 64}", range_name=f"r{i}")
    return net, sci


def measure_build(n, incremental):
    net = Network(latency_model=FixedLatency(1.0), seed=3)
    sci = SCINet(net, incremental=incremental)
    start = time.perf_counter()
    for i in range(n):
        sci.create_node(f"h{i % 64}", range_name=f"r{i}")
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "per_node_us": elapsed / n * 1e6}


def measure_announce(n, flood):
    net, sci = build_overlay(n, incremental=True)
    net.run_until_idle()
    nodes = sci.nodes()
    before = net.stats.by_kind.get("o-bcast", 0)
    nodes[0].broadcast("announce-range",
                       {"range": "x", "cs": "cs-x", "places": ["room-1"]},
                       flood=flood)
    net.run_until_idle()
    reached = sum(1 for node in nodes if node.lookup_place("room-1") == "cs-x")
    return {
        "messages": net.stats.by_kind.get("o-bcast", 0) - before,
        "reached": reached,
        "dup_suppressed": int(net.obs.metrics.counter(
            "overlay.bcast.dup_suppressed").total()),
    }


def measure_route(n, routes=ROUTES):
    net, sci = build_overlay(n, incremental=True)
    net.run_until_idle()
    nodes = sci.nodes()
    rng = random.Random(7)
    keys = [GUID(rng.getrandbits(128)) for _ in range(routes)]
    origins = [nodes[rng.randrange(n)] for _ in range(routes)]
    start = time.perf_counter()
    for key, origin in zip(keys, origins):
        origin.route(key, "probe", {})
    net.run_until_idle()
    elapsed = time.perf_counter() - start
    steps = sci.total_routed()
    hops = net.obs.metrics.histogram("overlay.route.hops").series().summary()
    return {
        "routes": routes,
        "steps": steps,
        "steps_per_s": steps / elapsed if elapsed else float("inf"),
        "mean_hops": hops["mean"],
        "max_hops": hops["max"],
    }


# -- the report ----------------------------------------------------------------

class TestReportOverlayPerf:
    def test_report_build(self, report):
        baseline = _load_baseline()
        report("")
        report("PERF  overlay build: incremental ring membership vs "
               "full leaf-set refresh per join")
        report(f"{'nodes':>6} | {'naive/node':>11} {'fast/node':>10} "
               f"{'speedup':>8}")
        fast_per_node = {}
        for scale in BUILD_SCALES_FAST:
            fast = measure_build(scale, incremental=True)
            fast_per_node[scale] = fast["per_node_us"]
            if scale in BUILD_SCALES_NAIVE:
                naive = measure_build(scale, incremental=False)
                speedup = naive["per_node_us"] / fast["per_node_us"]
                report(f"{scale:>6} | {naive['per_node_us']:>9.0f}us "
                       f"{fast['per_node_us']:>8.0f}us {speedup:>7.1f}x")
                naive_row = round(naive["per_node_us"], 1)
            else:
                report(f"{scale:>6} | {'-':>11} "
                       f"{fast['per_node_us']:>8.0f}us {'-':>8}")
                naive_row = None
            baseline["build"].append({
                "nodes": scale,
                "naive_per_node_us": naive_row,
                "fast_per_node_us": round(fast["per_node_us"], 1),
            })
        top_naive = max(BUILD_SCALES_NAIVE)
        naive_top = [row for row in baseline["build"]
                     if row["nodes"] == top_naive][0]
        assert naive_top["naive_per_node_us"] > \
            5.0 * naive_top["fast_per_node_us"], (
                "incremental membership should beat the naive refresh by "
                f">=5x at {top_naive} nodes")
        growth = (fast_per_node[max(BUILD_SCALES_FAST)]
                  / fast_per_node[min(BUILD_SCALES_FAST)])
        report(f"  fast per-node growth {min(BUILD_SCALES_FAST)}->"
               f"{max(BUILD_SCALES_FAST)} nodes: {growth:.2f}x "
               f"(near-linear; <= {MAX_FAST_PER_NODE_GROWTH:.0f}x)")
        assert growth <= MAX_FAST_PER_NODE_GROWTH, (
            f"incremental build cost grew {growth:.1f}x per node over a "
            f"{max(BUILD_SCALES_FAST) // min(BUILD_SCALES_FAST)}x scale "
            "ladder — no longer near-linear")
        _save_baseline(baseline)

    def test_report_announce(self, report):
        baseline = _load_baseline()
        report("")
        report("PERF  announce dissemination: distribution tree vs dedup flood")
        report(f"{'nodes':>6} | {'flood msgs':>11} {'tree msgs':>10} "
               f"{'reduction':>10} | {'dups suppressed':>15}")
        for scale in ANNOUNCE_SCALES:
            flood = measure_announce(scale, flood=True)
            tree = measure_announce(scale, flood=False)
            assert flood["reached"] == tree["reached"] == scale
            assert tree["messages"] == scale - 1  # exactly-once delivery
            assert tree["dup_suppressed"] == 0
            reduction = flood["messages"] / tree["messages"]
            report(f"{scale:>6} | {flood['messages']:>11} "
                   f"{tree['messages']:>10} {reduction:>9.1f}x | "
                   f"{flood['dup_suppressed']:>15}")
            baseline["announce"].append({
                "nodes": scale,
                "flood_messages": flood["messages"],
                "tree_messages": tree["messages"],
                "reduction": round(reduction, 2),
                "flood_dup_suppressed": flood["dup_suppressed"],
            })
            if scale == max(ANNOUNCE_SCALES):
                assert reduction >= REQUIRED_BCAST_REDUCTION, (
                    f"tree broadcast only cut announce traffic "
                    f"{reduction:.1f}x at {scale} nodes "
                    f"(need >= {REQUIRED_BCAST_REDUCTION}x)")
        _save_baseline(baseline)

    def test_report_route_throughput(self, report):
        baseline = _load_baseline()
        report("")
        report("PERF  route-step throughput over the incremental overlay")
        report(f"{'nodes':>6} | {'steps/s':>10} {'mean hops':>10} "
               f"{'max hops':>9}")
        for scale in ROUTE_SCALES:
            run = measure_route(scale)
            report(f"{scale:>6} | {run['steps_per_s']:>10.0f} "
                   f"{run['mean_hops']:>10.2f} {run['max_hops']:>9.0f}")
            baseline["route"].append({
                "nodes": scale,
                "routes": run["routes"],
                "steps_per_s": round(run["steps_per_s"], 1),
                "mean_hops": round(run["mean_hops"], 3),
                "max_hops": run["max_hops"],
            })
            # hops must stay logarithmic on the sparser incremental tables
            assert run["mean_hops"] <= 5.0
            assert run["max_hops"] <= 10
        _save_baseline(baseline)


def _load_baseline():
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH, encoding="utf-8") as handle:
            document = json.load(handle)
        # re-runs replace their own section, keeping the others' last values
        return {"schema": "sci.bench.overlay/1",
                "build": [], "announce": [], "route": [],
                "previous": {k: document.get(k)
                             for k in ("build", "announce", "route")}}
    return {"schema": "sci.bench.overlay/1",
            "build": [], "announce": [], "route": []}


def _save_baseline(document):
    RESULTS_DIR.mkdir(exist_ok=True)
    merged = {"schema": document["schema"]}
    previous = document.pop("previous", {})
    for section in ("build", "announce", "route"):
        merged[section] = document[section] or previous.get(section) or []
    with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")

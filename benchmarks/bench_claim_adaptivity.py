"""C1 — adaptivity to environmental change / component failure.

Claim (Section 6): the infrastructure "will also adjust the composition of
these components dynamically in the case of environment changes, thus
improving service and fault tolerance while minimising user intervention."

Reproduced series: crash a fraction of the door-sensor layer mid-stream and
report repair counts and stream recovery time; escalate to total modality
failure (all sensors) and show cross-representation recovery via the W-LAN
chain. The static-composition comparison (a Toolkit-style app never
recovering) is quantified in bench_claim_baselines.
"""

import pathlib

import pytest

from repro import SCI
from repro.core.api import SCIConfig
from repro.faults.monitor import StreamProbe
from repro.obs.export import (
    load_trace_jsonl,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.query.model import QueryBuilder

LEASE = 10.0
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
TRACE_PATH = RESULTS_DIR / "bench_claim_adaptivity.trace.jsonl"
METRICS_PATH = RESULTS_DIR / "bench_claim_adaptivity.metrics.json"


def deploy(seed=0):
    sci = SCI(config=SCIConfig(seed=seed, lease_duration=LEASE))
    sci.create_range("livingstone", places=["livingstone"], hosts=["pc"])
    sensors = sci.add_door_sensors("livingstone")
    detector = sci.add_wlan_detector("livingstone")
    sci.add_person("bob", room="corridor", device_host="bob-dev")
    app = sci.create_application("monitor", host="pc")
    sci.run(5)
    app.submit_query(QueryBuilder("ops")
                     .subscribe("location", "topological", subject="bob")
                     .build())
    sci.run(5)
    sci.walk("bob", "L10.01")
    sci.run(30)
    return sci, app, sensors, detector


def crash_and_measure(kill_count, seed=0):
    sci, app, sensors, _detector = deploy(seed)
    probe = StreamProbe(app, "location")
    victims = sorted(sensors.values(), key=lambda s: s.name)[:kill_count]
    failure_at = sci.now
    for sensor in victims:
        sci.injector.crash(sensor)
    # keep the subject moving so there is a stream to observe
    sci.walk("bob", "L10.03")
    sci.run(30)
    sci.walk("bob", "open-area")
    sci.run(30)
    cs = sci.range("livingstone")
    recovery = probe.recovery_time(failure_at)
    last = app.events_of_type("location")[-1] if app.events_of_type("location") else None
    return {
        "repairs": cs.configurations.repairs,
        "recovery": recovery,
        "updates_after": probe.count(),
        "via_converter": bool(last and "converted_by" in last.attributes),
    }


class TestReportAdaptivity:
    def test_report_recovery_vs_failure_scale(self, report):
        report("")
        report(f"C1  adaptivity: sensor failures mid-stream (lease={LEASE})")
        report(f"{'sensors killed':>14} | {'repairs':>7} | "
               f"{'recovery (sim s)':>16} | {'updates after':>13} | "
               f"{'via converter':>13}")
        for kill_count in (1, 3, 6):
            result = crash_and_measure(kill_count)
            recovery = (f"{result['recovery']:.1f}"
                        if result["recovery"] is not None else "-")
            report(f"{kill_count:>14} | {result['repairs']:>7} | "
                   f"{recovery:>16} | {result['updates_after']:>13} | "
                   f"{str(result['via_converter']):>13}")
            assert result["repairs"] >= 1
            assert result["updates_after"] > 0, "stream must survive"
        # total failure forces the representation bridge
        total = crash_and_measure(6)
        assert total["via_converter"] is True

    def test_report_recovery_bounded_by_detection(self, report):
        """Repair latency is dominated by failure *detection* (the lease),
        not by re-composition itself."""
        result = crash_and_measure(6)
        assert result["recovery"] is not None
        assert result["recovery"] < LEASE + 10.0
        report(f"total-failure recovery {result['recovery']:.1f}s "
               f"< lease {LEASE:.0f}s + sweep + W-LAN scan slack")

    def test_report_repair_trace_artifacts(self, report):
        """Crash the whole sensor layer and export the observability
        artefacts: the repair latency is then readable from the trace file
        alone (failure time from meta, repair span start from the JSONL)."""
        sci, app, sensors, _detector = deploy()
        failure_at = sci.now
        for sensor in sensors.values():
            sci.injector.crash(sensor)
        sci.walk("bob", "L10.03")
        sci.run(30)

        obs = sci.network.obs
        span_count = write_trace_jsonl(obs.tracer, TRACE_PATH)
        write_metrics_json(obs.metrics, METRICS_PATH,
                           meta={"experiment": "c1-adaptivity",
                                 "lease": LEASE, "failure_at": failure_at},
                           profile=obs.profiler.snapshot())

        records = load_trace_jsonl(TRACE_PATH)
        repairs = [r for r in records if r["name"] == "config.repair"]
        assert repairs, "repair must appear in the exported trace"
        latency = repairs[0]["start"] - failure_at
        assert 0 < latency < LEASE + 10.0
        report("")
        report(f"C1  trace artefact: {TRACE_PATH.name} ({span_count} spans), "
               f"metrics: {METRICS_PATH.name}")
        report(f"    repair span at t={repairs[0]['start']:.1f}, "
               f"failure at t={failure_at:.1f} -> "
               f"detection+repair latency {latency:.1f}s (from JSONL alone)")

    def test_report_no_user_intervention(self, report):
        """The application object is never touched after the failure — the
        'minimising user intervention' half of the claim."""
        sci, app, sensors, _ = deploy(seed=3)
        queries_before = len(app.query_acks)
        for sensor in sensors.values():
            sci.injector.crash(sensor)
        sci.walk("bob", "L10.03")
        sci.run(60)
        assert len(app.query_acks) == queries_before  # no re-query
        assert app.events_of_type("location")
        report("zero application-side actions during recovery "
               f"(still {queries_before} submitted query)")


class TestBenchAdaptivity:
    @pytest.mark.parametrize("kill_count", [1, 6])
    def test_bench_crash_recovery(self, benchmark, kill_count):
        benchmark.pedantic(crash_and_measure, args=(kill_count,),
                           rounds=3, iterations=1)

"""F2 — Figure 2: the structure of a Range under load.

Claim under test (Section 3): "the complexity and timely response required
when providing contextual information justifies the use of a centralised
service" — i.e. the per-range Context Server keeps per-operation cost flat
as the range's population grows.

Reproduced series: for E entities in {10, 50, 200}, measure registration
latency (Figure-5 handshake round trips) and a profile-manager lookup,
against range population.
"""

import pytest

from repro.core.ids import GuidFactory
from repro.core.types import TypeSpec, standard_registry
from repro.entities.entity import ContextEntity
from repro.entities.profile import Profile
from repro.location.building import livingstone_tower
from repro.location.converters import register_location_converters
from repro.net.transport import FixedLatency, Network
from repro.server.context_server import ContextServer
from repro.server.range import RangeDefinition


def build_range(seed=0):
    net = Network(latency_model=FixedLatency(1.0), seed=seed)
    net.add_host("cs-host")
    net.add_host("client-host")
    guids = GuidFactory(seed=seed)
    building = livingstone_tower()
    registry = register_location_converters(standard_registry(), building)
    server = ContextServer(
        guids.mint(), "cs-host", net,
        RangeDefinition("range", places=["livingstone"],
                        hosts=["cs-host", "client-host"]),
        building, registry, guids, lease_duration=1e9)
    return net, guids, server


def populate(net, guids, count):
    """Register ``count`` entities; returns per-registration latencies."""
    latencies = []
    for index in range(count):
        ce = ContextEntity(
            Profile(guids.mint(), f"ce-{index}",
                    outputs=[TypeSpec("temperature", "celsius")]),
            "client-host", net)
        started = net.scheduler.now
        done = []
        ce.on_registered = lambda d=done: d.append(net.scheduler.now)
        ce.start()
        net.scheduler.run_for(10)
        latencies.append(done[0] - started)
    return latencies


class TestReportFigure2:
    def test_report_registration_flat_in_population(self, report):
        report("")
        report("F2  Range management: registration cost vs population")
        report(f"{'population':>10} | {'mean reg latency':>16} | "
               f"{'profile lookups/ms of simtime':>28}")
        means = []
        for count in (10, 50, 200):
            net, guids, server = build_range()
            latencies = populate(net, guids, count)
            mean = sum(latencies) / len(latencies)
            means.append(mean)
            assert server.registrar.population() == count
            report(f"{count:>10} | {mean:>16.2f} | "
                   f"{server.profiles.population():>28}")
        # registration is a fixed handshake: flat in population
        assert max(means) - min(means) < 0.5

    def test_report_departure_cleanup_cost(self, report):
        net, guids, server = build_range()
        populate(net, guids, 50)
        evicted = server.registrar.records()[0]
        server.registrar.remove(evicted.entity_hex, "test")
        net.scheduler.run_for(5)
        assert server.registrar.population() == 49
        assert server.profiles.population() == 49
        report("departure cleanup: registrar+profiles consistent at 49/49")


class TestBenchFigure2:
    @pytest.mark.parametrize("count", [10, 50, 200])
    def test_bench_registration(self, benchmark, count):
        def run():
            net, guids, _server = build_range()
            populate(net, guids, count)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_bench_profile_lookup(self, benchmark):
        net, guids, server = build_range()
        populate(net, guids, 200)
        names = [record.profile.name for record in server.registrar.records()]

        def lookup():
            for name in names[:50]:
                assert server.profiles.by_name(name) is not None

        benchmark(lookup)

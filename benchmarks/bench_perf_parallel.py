"""PERF — partitioned substrate route throughput vs the classic scheduler.

The same 1000-node route workload as ``bench_perf_overlay`` (the recorded
``BENCH_overlay.json`` baseline: 15485.5 route steps/s), replayed on the
partitioned substrate at 1, 2, 4 and 8 lanes, serially and with the thread
executor. The serial sharded configurations are where the speedup lives —
per-lane heaps are smaller (``log n`` shrinks), the delivery fast path
skips Timer/callsite minting, and per-lane staging buffers replace
labelled counter updates on every send/deliver. The thread executor is an
architectural validation of the horizon exchange, not a speedup, and is
reported as such (Python threads share one core's interpreter lock).

Every configuration must route the exact same number of steps — the cheap
in-benchmark determinism check; the real equivalence proof lives in
``tests/parallel/``.

Acceptance gate: best serial configuration with >= 2 partitions beats
``REQUIRED_SPEEDUP`` x the recorded classic baseline. Results land in
``results/bench_perf_parallel.txt`` and ``results/BENCH_parallel.json``.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_perf_parallel.py -q -s``
"""

import json
import pathlib
import random
import time

from repro.core.ids import GUID
from repro.net.transport import FixedLatency, Network
from repro.overlay.scinet import SCINet

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_parallel.json"

NODES = 1000
ROUTES = 400
REPEATS = 2
#: the BENCH_overlay.json route row at 1000 nodes when this bench landed —
#: pinned (not re-read) so re-running the overlay bench on a faster machine
#: cannot silently move this gate
CLASSIC_BASELINE_STEPS_PER_S = 15485.5
REQUIRED_SPEEDUP = 1.5

#: (label, partitions, parallel); partitions=None is the classic Scheduler
CONFIGS = [
    ("classic", None, False),
    ("part-1", 1, False),
    ("part-2", 2, False),
    ("part-4", 4, False),
    ("part-8", 8, False),
    ("part-4-threads", 4, True),
]


def build_overlay(n, partitions=None, parallel=False, seed=3):
    if partitions is None:
        net = Network(latency_model=FixedLatency(1.0), seed=seed)
    else:
        net = Network(latency_model=FixedLatency(1.0), seed=seed,
                      partitions=partitions, parallel=parallel)
    sci = SCINet(net, incremental=True)
    for i in range(n):
        sci.create_node(f"h{i % 64}", range_name=f"r{i}")
    return net, sci


def measure_route(partitions, parallel, n=NODES, routes=ROUTES):
    """Best-of-``REPEATS`` route throughput for one configuration."""
    best = None
    for _ in range(REPEATS):
        net, sci = build_overlay(n, partitions=partitions, parallel=parallel)
        net.run_until_idle()
        nodes = sci.nodes()
        rng = random.Random(7)
        keys = [GUID(rng.getrandbits(128)) for _ in range(routes)]
        origins = [nodes[rng.randrange(n)] for _ in range(routes)]
        start = time.perf_counter()
        for key, origin in zip(keys, origins):
            origin.route(key, "probe", {})
        net.run_until_idle()
        elapsed = time.perf_counter() - start
        close = getattr(net.scheduler, "close", None)
        if close is not None:
            close()
        run = {
            "steps": sci.total_routed(),
            "steps_per_s": sci.total_routed() / elapsed if elapsed else 0.0,
            "delivered": net.stats.delivered,
        }
        if best is None or run["steps_per_s"] > best["steps_per_s"]:
            best = run
    return best


class TestReportParallelPerf:
    def test_report_route_throughput(self, report):
        baseline = _load_baseline()
        report("")
        report(f"PERF  partitioned-substrate route throughput "
               f"({NODES} nodes, {ROUTES} routes, best of {REPEATS})")
        report(f"{'config':>15} | {'steps/s':>10} {'vs recorded':>11} "
               f"{'vs classic':>10}")
        rows = {}
        for label, partitions, parallel in CONFIGS:
            rows[label] = measure_route(partitions, parallel)
        classic = rows["classic"]
        steps = {row["steps"] for row in rows.values()}
        assert len(steps) == 1, (
            f"configurations disagreed on routed steps: {steps} — the "
            "substrate broke determinism; see tests/parallel/")
        delivered = {row["delivered"] for row in rows.values()}
        assert len(delivered) == 1, (
            f"configurations disagreed on deliveries: {delivered}")
        for (label, partitions, parallel) in CONFIGS:
            row = rows[label]
            vs_recorded = row["steps_per_s"] / CLASSIC_BASELINE_STEPS_PER_S
            vs_classic = row["steps_per_s"] / classic["steps_per_s"]
            report(f"{label:>15} | {row['steps_per_s']:>10.0f} "
                   f"{vs_recorded:>10.2f}x {vs_classic:>9.2f}x")
            baseline["route_parallel"].append({
                "config": label,
                "partitions": partitions,
                "parallel": parallel,
                "nodes": NODES,
                "routes": ROUTES,
                "steps": row["steps"],
                "steps_per_s": round(row["steps_per_s"], 1),
                "speedup_vs_recorded_baseline": round(vs_recorded, 3),
                "speedup_vs_classic_same_run": round(vs_classic, 3),
            })
        serial_sharded = [rows[label]["steps_per_s"]
                          for label, partitions, parallel in CONFIGS
                          if partitions is not None and partitions >= 2
                          and not parallel]
        best = max(serial_sharded)
        need = REQUIRED_SPEEDUP * CLASSIC_BASELINE_STEPS_PER_S
        report(f"  gate: best sharded serial {best:.0f} steps/s vs "
               f"{need:.0f} required "
               f"({REQUIRED_SPEEDUP}x the recorded classic baseline "
               f"{CLASSIC_BASELINE_STEPS_PER_S:.1f}/s)")
        assert best >= need, (
            f"partitioned substrate reached {best:.0f} steps/s; the gate is "
            f">= {need:.0f} (={REQUIRED_SPEEDUP}x recorded classic "
            f"baseline {CLASSIC_BASELINE_STEPS_PER_S}/s at {NODES} nodes)")
        baseline["gate"] = {
            "required_speedup": REQUIRED_SPEEDUP,
            "recorded_classic_steps_per_s": CLASSIC_BASELINE_STEPS_PER_S,
            "required_steps_per_s": round(need, 1),
            "best_sharded_serial_steps_per_s": round(best, 1),
            "passed": True,
        }
        _save_baseline(baseline)


def _load_baseline():
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH, encoding="utf-8") as handle:
            document = json.load(handle)
        return {"schema": "sci.bench.parallel/1",
                "route_parallel": [], "gate": None,
                "previous": {"route_parallel": document.get("route_parallel"),
                             "gate": document.get("gate")}}
    return {"schema": "sci.bench.parallel/1",
            "route_parallel": [], "gate": None}


def _save_baseline(document):
    RESULTS_DIR.mkdir(exist_ok=True)
    merged = {"schema": document["schema"]}
    previous = document.pop("previous", {})
    merged["route_parallel"] = (document["route_parallel"]
                                or previous.get("route_parallel") or [])
    merged["gate"] = document["gate"] or previous.get("gate")
    with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
